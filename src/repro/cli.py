"""An interactive EXCESS shell and script runner.

Usage::

    python -m repro                      # interactive REPL
    python -m repro script.excess        # run a script file
    python -m repro --database db.snap   # open (and save on exit) a snapshot

Inside the REPL, statements may span lines; a statement is executed when
it parses completely (end with ``;`` to force a boundary). Meta commands
start with a backslash:

==============  =====================================================
``\\help``       show this help
``\\quit``       exit (saving the snapshot when one was opened)
``\\stats``      engine statistics + per-set optimizer statistics
``\\analyze [SET]``     rebuild optimizer statistics (all sets or one)
``\\save PATH``  snapshot the database to PATH
``\\load PATH``  replace the session database with a snapshot
``\\open DIR``   open a durable database (WAL + crash recovery) in DIR
``\\checkpoint`` snapshot durable state and truncate the WAL
``\\wal``        show write-ahead-log status (durable databases)
``\\storage``    buffer-pool / disk / object-cache counters (paged stores)
``\\vacuum``     compact the paged store (squeeze holes, free dead pages)
``\\connect HOST PORT [USER]``  attach to a network server (own session)
``\\disconnect`` detach from the server, back to the local database
``\\user NAME``  switch the session user (authorization applies)
``\\authz on|off``      toggle authorization enforcement
``\\optimizer on|off``  toggle the query optimizer (for comparisons)
``\\compile on|off``    toggle compiled expression closures (ablation)
``\\exec MODE``  execution mode: ``fused`` | ``batch`` | ``row`` (ablation)
``\\batch N``    rows per batch in batch execution mode
``\\timeout MS`` statement timeout in milliseconds (0 disables)
``\\budget BYTES``      operator memory budget; spill to disk beyond it
``\\timing on|off``     print per-statement wall time + plan-cache hit/miss
``\\schema``     list types and named objects
==============  =====================================================
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import IO, Optional

from repro.core.database import Database
from repro.errors import ExtraError, LexicalError, ParseError
from repro.excess.result import Result

__all__ = ["Shell", "main"]

_PROMPT = "excess> "
_CONTINUATION = "   ...> "


class Shell:
    """The REPL engine, separated from I/O for testability."""

    def __init__(
        self,
        database: Optional[Database] = None,
        out: IO[str] = sys.stdout,
        snapshot_path: Optional[str] = None,
        timing: bool = False,
    ):
        self.db = database if database is not None else Database()
        self.out = out
        self.snapshot_path = snapshot_path
        self.user = self.db.authz.directory.dba
        self.timing = timing
        self.done = False
        #: when connected to a network server, statements route there
        self.remote = None

    # -- output -----------------------------------------------------------------

    def _write(self, text: str) -> None:
        self.out.write(text + "\n")

    def show_result(self, result: Result) -> None:
        """Print a statement result."""
        if result.columns:
            self._write(result.pretty())
            self._write(f"({len(result.rows)} row(s))")
            if result.message:  # explain carries the optimizer summary
                self._write(result.message)
            if result.kind == "explain" and result.plan_tree:
                self._write(result.plan_tree)
        elif result.message:
            self._write(result.message)
        else:
            self._write(f"{result.kind}: {result.count}")

    def _write_set_statistics(self) -> None:
        """The per-set section of ``\\stats``: optimizer statistics."""
        statistics = self.db.catalog.statistics
        names = statistics.analyzed_sets()
        if not names:
            self._write("set statistics: none (run \\analyze)")
            return
        self._write("set statistics:")
        for name in sorted(names):
            stats = statistics.get(name)
            state = "stale" if stats.stale else "fresh"
            self._write(
                f"  {name}: cardinality={stats.analyzed_cardinality} "
                f"analyzed@v{stats.analyzed_version} "
                f"churn={stats.churn}/{stats.churn_limit()} ({state})"
            )

    # -- statement handling ----------------------------------------------------------

    def execute(self, text: str) -> None:
        """Run one complete EXCESS input (may hold several statements)."""
        start = time.perf_counter()
        try:
            if self.remote is not None:
                result = self.remote.query(text)
            else:
                result = self.db.execute(text, user=self.user)
        except ExtraError as exc:
            self._write(f"error: {exc}")
            return
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        self.show_result(result)
        if self.timing:
            cache = (result.metrics or {}).get("cache") or "n/a"
            self._write(f"time: {elapsed_ms:.3f} ms  plan-cache: {cache}")

    def is_complete(self, text: str) -> bool:
        """Heuristic: does ``text`` parse as complete statement(s)?

        Incomplete input (errors at end-of-input) returns False so the
        REPL keeps reading; any other parse error counts as complete —
        executing it will surface the error to the user.
        """
        from repro.excess.lexer import Lexer
        from repro.excess.parser import Parser

        stripped = text.strip()
        if not stripped:
            return False
        if stripped.endswith(";"):
            return True
        try:
            table = self.db.interpreter._operator_table()
            lexer = Lexer(text, extra_symbols=table.punctuation_symbols())
            tokens = lexer.tokens()
            Parser(tokens, table).parse_script()
            return True
        except (ParseError, LexicalError) as exc:
            eof_line = text.count("\n") + 1
            # an error on the last line usually means "keep typing"
            return getattr(exc, "line", 0) < eof_line

    # -- meta commands ------------------------------------------------------------------

    def meta(self, line: str) -> None:
        """Handle a backslash meta command."""
        parts = line[1:].split()
        command = parts[0] if parts else ""
        args = parts[1:]
        if command in ("quit", "q", "exit"):
            if self.remote is not None:
                self.remote.close()
                self.remote = None
            if self.snapshot_path:
                size = self.db.save(self.snapshot_path)
                self._write(f"saved {size} bytes to {self.snapshot_path}")
            self.done = True
        elif command == "help":
            self._write(__doc__ or "")
        elif command == "stats":
            for key, value in self.db.stats().items():
                self._write(f"{key}: {value}")
            self._write_set_statistics()
        elif command == "analyze":
            text = "analyze " + args[0] if args else "analyze"
            self.execute(text)
        elif command == "save" and args:
            size = self.db.save(args[0])
            self._write(f"saved {size} bytes to {args[0]}")
        elif command == "load" and args:
            self.db = Database.load(args[0])
            self._write(f"loaded {args[0]}")
        elif command == "open" and args:
            self.db.close()  # release a previous durable session's WAL
            self.db = Database.open(args[0])
            status = self.db.durability.status()
            self._write(
                f"opened durable database in {args[0]} "
                f"(next LSN {status['next_lsn']})"
            )
        elif command == "checkpoint":
            if self.db.durability is None:
                self._write(
                    "not in durable mode — use \\open DIR to open a "
                    "durable database first"
                )
                return
            try:
                info = self.db.checkpoint()
            except ExtraError as exc:
                self._write(f"error: {exc}")
            else:
                self._write(
                    f"checkpointed {info['bytes']} bytes through "
                    f"LSN {info['wal_lsn']}"
                )
        elif command == "storage":
            info = self.db.storage_stats()
            if not info:
                self._write(
                    "storage: memory object store (no page substrate); "
                    "start with --storage paged for counters"
                )
                return
            self._write(
                f"store: mode={info['store_mode']} pages={info['pages']}"
            )
            buffer = info["buffer"]
            self._write(
                f"buffer: capacity={buffer['capacity']} "
                f"cached={buffer['cached']} hits={buffer['hits']} "
                f"misses={buffer['misses']} "
                f"hit_ratio={buffer['hit_ratio']:.3f} "
                f"evictions={buffer['evictions']} "
                f"dirty_writebacks={buffer['dirty_writebacks']}"
            )
            disk = info["disk"]
            self._write(
                f"disk: reads={disk['reads']} writes={disk['writes']} "
                f"allocations={disk['allocations']} frees={disk['frees']} "
                f"syncs={disk['syncs']}"
            )
            cache = info["object_cache"]
            capacity = cache["capacity"]
            self._write(
                f"object cache: capacity="
                f"{'unbounded' if capacity is None else capacity} "
                f"live={cache['live']} pinned={cache['pinned']} "
                f"dirty={cache['dirty']} hits={cache['hits']} "
                f"faults={cache['faults']} evictions={cache['evictions']} "
                f"writebacks={cache['writebacks']} "
                f"peak_live={cache['peak_live']}"
            )
        elif command == "vacuum":
            dangling = self.db.integrity.vacuum()
            report = self.db.compact()
            if report:
                self._write(
                    f"vacuum: {dangling} dangling ref(s) removed, "
                    f"{report['records_moved']} record(s) migrated, "
                    f"{report['pages_freed']} page(s) freed, "
                    f"{report['slots_trimmed']} slot(s) trimmed"
                )
            else:
                self._write(
                    f"vacuum: {dangling} dangling ref(s) removed "
                    "(memory store — no pages to compact)"
                )
        elif command == "wal":
            if self.db.durability is None:
                self._write(
                    "not in durable mode — use \\open DIR to open a "
                    "durable database first"
                )
            else:
                for key, value in self.db.durability.status().items():
                    self._write(f"{key}: {value}")
        elif command == "connect":
            if not (2 <= len(args) <= 3):
                self._write("usage: \\connect HOST PORT [USER]")
                return
            try:
                port = int(args[1])
            except ValueError:
                self._write(f"error: PORT must be an integer, got {args[1]!r}")
                return
            from repro.server.client import Client

            if self.remote is not None:
                self.remote.close()
                self.remote = None
            user = args[2] if len(args) == 3 else self.user
            try:
                self.remote = Client(args[0], port, user=user)
            except OSError as exc:
                self._write(f"error: cannot connect to {args[0]}:{port}: {exc}")
                return
            self._write(
                f"connected to {args[0]}:{port} as {self.remote.user} "
                f"(session {self.remote.session})"
            )
        elif command == "disconnect":
            if self.remote is None:
                self._write("not connected")
            else:
                self.remote.close()
                self.remote = None
                self._write("disconnected (statements run locally again)")
        elif command == "user" and args:
            self.db.authz.directory.add_user(args[0])
            self.user = args[0]
            self._write(f"now acting as {args[0]}")
        elif command == "authz" and args:
            self.db.authz.enabled = args[0] == "on"
            self._write(f"authorization {'on' if self.db.authz.enabled else 'off'}")
        elif command == "optimizer" and args:
            self.db.interpreter.optimize = args[0] == "on"
            state = "on" if self.db.interpreter.optimize else "off"
            self._write(f"optimizer {state}")
        elif command == "compile":
            if len(args) != 1 or args[0] not in ("on", "off"):
                self._write(
                    "usage: \\compile on|off"
                    + (f" (got {' '.join(args)!r})" if args else "")
                )
                return
            mode = "closure" if args[0] == "on" else "off"
            self.db.interpreter.compile_mode = mode
            self._write(f"expression compilation {mode}")
        elif command == "exec":
            if len(args) != 1 or args[0] not in ("fused", "batch", "row"):
                self._write(
                    "usage: \\exec fused|batch|row"
                    + (f" (got {' '.join(args)!r})" if args else "")
                )
                return
            self.db.interpreter.exec_mode = args[0]
            self._write(f"execution mode {args[0]}")
        elif command == "batch":
            if len(args) != 1:
                self._write("usage: \\batch N (a positive integer)")
                return
            try:
                self.db.interpreter.batch_size = int(args[0])
            except (ValueError, ExtraError):
                self._write(
                    f"error: batch size must be a positive integer, "
                    f"got {args[0]!r}"
                )
                return
            self._write(f"batch size {self.db.interpreter.batch_size}")
        elif command == "timeout":
            if len(args) != 1:
                self._write(
                    "usage: \\timeout MS (milliseconds, 0 disables)"
                )
                return
            try:
                self.db.interpreter.statement_timeout_ms = int(args[0])
            except (ValueError, ExtraError):
                self._write(
                    f"error: statement timeout must be a non-negative "
                    f"integer of milliseconds, got {args[0]!r}"
                )
                return
            ms = self.db.interpreter.statement_timeout_ms
            self._write(
                f"statement timeout {ms} ms" if ms else "statement timeout off"
            )
        elif command == "budget":
            if len(args) != 1:
                self._write("usage: \\budget BYTES (0 disables spilling)")
                return
            try:
                self.db.interpreter.memory_budget = int(args[0])
            except (ValueError, ExtraError):
                self._write(
                    f"error: memory budget must be a non-negative integer "
                    f"of bytes, got {args[0]!r}"
                )
                return
            budget = self.db.interpreter.memory_budget
            self._write(
                f"memory budget {budget} bytes (operators spill beyond it)"
                if budget else "memory budget off"
            )
        elif command == "timing" and args:
            self.timing = args[0] == "on"
            self._write(f"timing {'on' if self.timing else 'off'}")
        elif command == "schema":
            for name in self.db.catalog.type_names():
                self._write(f"type {self.db.type(name).describe_full()}")
            for name in self.db.catalog.named_names():
                named = self.db.named(name)
                self._write(f"object {name}: {named.spec.describe()}")
        else:
            self._write(f"unknown meta command \\{command} (try \\help)")

    # -- loops ---------------------------------------------------------------------------

    def run_script(self, text: str) -> None:
        """Execute a whole script, printing each statement's result."""
        self.execute(text)

    def repl(self, stdin: IO[str] = sys.stdin, interactive: bool = True) -> None:
        """Read-eval-print until EOF or \\quit."""
        buffer: list[str] = []
        while not self.done:
            if interactive:
                prompt = _CONTINUATION if buffer else _PROMPT
                self.out.write(prompt)
                self.out.flush()
            line = stdin.readline()
            if not line:
                break
            if not buffer and line.strip().startswith("\\"):
                self.meta(line.strip())
                continue
            buffer.append(line)
            text = "".join(buffer)
            if self.is_complete(text):
                buffer = []
                self.execute(text.rstrip().rstrip(";"))


def main(argv: Optional[list[str]] = None, stdin: IO[str] = sys.stdin,
         stdout: IO[str] = sys.stdout) -> int:
    """Entry point for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EXTRA/EXCESS interactive shell (EXODUS reproduction)",
    )
    parser.add_argument(
        "script", nargs="?", help="EXCESS script file to execute"
    )
    parser.add_argument(
        "--database", "-d", metavar="PATH",
        help="snapshot to load (created on \\quit if missing)",
    )
    parser.add_argument(
        "--storage", choices=["memory", "paged"], default="memory",
        help="object store for a fresh database",
    )
    parser.add_argument(
        "--time", action="store_true", dest="timing",
        help="print per-statement wall time and plan-cache hit/miss",
    )
    options = parser.parse_args(argv)

    import os

    if options.database and os.path.exists(options.database):
        database = Database.load(options.database)
    else:
        database = Database(storage=options.storage)
    shell = Shell(
        database=database, out=stdout, snapshot_path=options.database,
        timing=options.timing,
    )
    if options.script:
        try:
            with open(options.script) as handle:
                shell.run_script(handle.read())
        except OSError as exc:
            stdout.write(f"error: cannot read {options.script}: {exc}\n")
            return 1
        if options.database:
            database.save(options.database)
        return 0
    stdout.write(
        "EXTRA/EXCESS shell — the EXODUS data model and query language.\n"
        "Type \\help for meta commands, \\quit to exit.\n"
    )
    shell.repl(stdin=stdin, interactive=stdin.isatty())
    return 0
