"""Runtime values for the EXTRA data model.

The value layer mirrors the type layer of :mod:`repro.core.types`:

===================  =======================================
Type                 Runtime representation
===================  =======================================
base types / ADTs    plain Python values (int, float, str, bool, ADT instances)
tuple types          :class:`TupleInstance`
set types            :class:`SetInstance`
array types          :class:`ArrayInstance`
ref / own ref slots  :class:`Ref` (an OID wrapper) or :data:`NULL`
own slots            the component value itself, embedded
null                 :data:`NULL`
===================  =======================================

``own`` components follow *value* semantics: they are copied on
assignment (:func:`copy_value`), compared by recursive value equality
(:func:`value_equal`, the [Banc86] notion), and have no identity.
``ref``/``own ref`` slots hold :class:`Ref` values compared only with the
``is`` / ``isnot`` object-equality operators of EXCESS.

Instances check slot conformance on every write, so a value object can
never hold data that violates its type; identity, ownership, and
referential integrity are enforced one layer up, in
:mod:`repro.core.integrity`.
"""

from __future__ import annotations

import copy as _copy
from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.core.types import (
    ArrayType,
    ComponentSpec,
    Semantics,
    SetType,
    TupleType,
)
from repro.errors import EvaluationError, TypeSystemError

__all__ = [
    "NULL",
    "NullValue",
    "Ref",
    "TupleInstance",
    "SetInstance",
    "ArrayInstance",
    "check_slot",
    "copy_value",
    "value_equal",
    "is_null",
]


class NullValue:
    """The singleton null value.

    Any slot may be null (references, per GEM, become null when their
    target is deleted; scalar attributes may simply be unknown). Nulls
    propagate through expressions and fail all comparisons, QUEL-style.
    """

    _instance: Optional["NullValue"] = None

    def __new__(cls) -> "NullValue":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __bool__(self) -> bool:
        return False

    def __deepcopy__(self, memo: dict) -> "NullValue":
        return self

    def __copy__(self) -> "NullValue":
        return self


#: The one null value.
NULL = NullValue()


def is_null(value: Any) -> bool:
    """True when ``value`` is the EXTRA null."""
    return value is NULL


@dataclass(frozen=True)
class Ref:
    """A reference to a first-class object, identified by OID.

    ``Ref`` values are opaque to EXCESS users: the only comparisons are
    ``is`` / ``isnot`` (object equality), and path traversal dereferences
    them implicitly.
    """

    oid: int

    def __post_init__(self) -> None:
        if self.oid < 1:
            raise TypeSystemError(f"invalid oid {self.oid} in reference")

    def __repr__(self) -> str:
        return f"Ref({self.oid})"


def check_slot(spec: ComponentSpec, value: Any) -> Any:
    """Validate and canonicalize ``value`` for a slot described by ``spec``.

    * Null conforms to every slot.
    * ``own`` slots take the component value itself (never a ``Ref``).
    * ``ref`` / ``own ref`` slots take a :class:`Ref`.

    Returns the canonical stored form; raises :class:`TypeSystemError` on
    any mismatch.
    """
    if value is NULL:
        return NULL
    if spec.semantics is Semantics.OWN:
        if isinstance(value, Ref):
            raise TypeSystemError(
                f"own slot of type {spec.type} cannot hold a reference"
            )
        return spec.type.coerce(value)
    if not isinstance(value, Ref):
        raise TypeSystemError(
            f"{spec.semantics} slot requires a reference, got {value!r}"
        )
    return value


class TupleInstance:
    """An instance of a tuple (or schema) type.

    When the instance is a first-class object, :attr:`oid` is set by the
    object table at registration time; pure ``own`` values keep
    ``oid is None`` — they lack identity.
    """

    __slots__ = ("type", "oid", "_slots")

    def __init__(self, tuple_type: TupleType, values: Optional[dict[str, Any]] = None):
        self.type = tuple_type
        self.oid: Optional[int] = None
        # own collection attributes start as empty collections (a tuple
        # always *has* its kids set, it just may be empty); everything
        # else starts null.
        self._slots: dict[str, Any] = {}
        for name, spec in tuple_type:
            if spec.semantics is Semantics.OWN and isinstance(spec.type, SetType):
                self._slots[name] = SetInstance(spec.type)
            elif spec.semantics is Semantics.OWN and isinstance(spec.type, ArrayType):
                self._slots[name] = ArrayInstance(spec.type)
            else:
                self._slots[name] = NULL
        if values:
            for name, value in values.items():
                self.set(name, value)

    def get(self, name: str) -> Any:
        """Read attribute ``name`` (raises for unknown attributes)."""
        if name not in self._slots:
            raise TypeSystemError(
                f"type {self.type.describe()} has no attribute {name!r}"
            )
        return self._slots[name]

    def set(self, name: str, value: Any) -> None:
        """Write attribute ``name``, enforcing slot conformance.

        Writing an ``own`` slot stores a private copy of the value (value
        semantics); writing a reference slot stores the :class:`Ref` as is.
        """
        spec = self.type.attribute(name)
        canonical = check_slot(spec, value)
        if spec.semantics is Semantics.OWN and canonical is not NULL:
            canonical = copy_value(canonical)
        self._slots[name] = canonical

    def attributes(self) -> dict[str, Any]:
        """A shallow snapshot of attribute name → stored slot value."""
        return dict(self._slots)

    def __repr__(self) -> str:
        ident = f" oid={self.oid}" if self.oid is not None else ""
        body = ", ".join(f"{k}={v!r}" for k, v in self._slots.items())
        return f"<{self.type.tag}{ident} {body}>"


class SetInstance:
    """An instance of a set type.

    Members are stored slot values: embedded values for ``own`` element
    sets, :class:`Ref` values for ``ref`` / ``own ref`` element sets.
    Duplicates are rejected — by OID for reference sets and by recursive
    value equality for value sets. An optional **key** (a tuple of
    attribute names, paper §2.2) may be attached to the instance at
    creation; uniqueness of key values is enforced by the integrity layer,
    which can see through references.
    """

    __slots__ = ("type", "key", "_members", "_oids")

    def __init__(self, set_type: SetType, key: Optional[tuple[str, ...]] = None):
        self.type = set_type
        self.key = tuple(key) if key else None
        self._members: list[Any] = []
        # lazily built OID membership index for reference-element sets;
        # None means "not built" (value sets never build one)
        self._oids: Optional[set[int]] = None

    @property
    def element(self) -> ComponentSpec:
        """The element component spec of this set's type."""
        return self.type.element

    def _oid_index(self) -> Optional[set[int]]:
        """The OID index, building it on first use (None for value
        sets). Code that mutates ``_members`` directly instead of going
        through insert/remove/clear must call :meth:`invalidate_index`.
        """
        if not self.element.semantics.is_object:
            return None
        oids = getattr(self, "_oids", None)
        if oids is None:
            oids = {m.oid for m in self._members if isinstance(m, Ref)}
            self._oids = oids
        return oids

    def invalidate_index(self) -> None:
        """Drop the OID index after direct ``_members`` surgery."""
        self._oids = None

    def insert(self, value: Any) -> bool:
        """Add ``value`` to the set.

        Returns True when the member was added, False when an equal member
        was already present (set semantics). Null members are rejected.
        """
        if value is NULL:
            raise TypeSystemError("sets cannot contain null members")
        canonical = check_slot(self.element, value)
        oids = self._oid_index()
        if oids is not None and isinstance(canonical, Ref):
            if canonical.oid in oids:
                return False
            self._members.append(canonical)
            oids.add(canonical.oid)
            return True
        if self.contains(canonical):
            return False
        if self.element.semantics is Semantics.OWN:
            canonical = copy_value(canonical)
        self._members.append(canonical)
        self._oids = None
        return True

    def remove(self, value: Any) -> bool:
        """Remove the member equal to ``value``; returns True if found."""
        oids = self._oid_index()
        if oids is not None and isinstance(value, Ref) and value.oid not in oids:
            return False
        for index, member in enumerate(self._members):
            if _members_equal(self.element, member, value):
                del self._members[index]
                if oids is not None and isinstance(member, Ref):
                    oids.discard(member.oid)
                return True
        return False

    def contains(self, value: Any) -> bool:
        """Membership test with set-element equality (OID or deep value)."""
        oids = self._oid_index()
        if oids is not None:
            # reference elements compare by OID only; anything that is
            # not a Ref can never equal a stored member
            return isinstance(value, Ref) and value.oid in oids
        return any(_members_equal(self.element, m, value) for m in self._members)

    def members(self) -> list[Any]:
        """A list copy of the stored members (Refs or embedded values)."""
        return list(self._members)

    def clear(self) -> None:
        """Remove all members."""
        self._members.clear()
        self._oids = None

    def __iter__(self) -> Iterator[Any]:
        return iter(list(self._members))

    def __len__(self) -> int:
        return len(self._members)

    def __repr__(self) -> str:
        return f"<set {self.type.describe()} n={len(self._members)}>"


class ArrayInstance:
    """An instance of a fixed- or variable-length array type.

    Indexing is **1-based**, following the paper's ``TopTen [1]``. Fixed
    arrays are created at full length with null slots; variable arrays
    grow with :meth:`append` and support :meth:`insert` / :meth:`remove`.
    """

    __slots__ = ("type", "_slots")

    def __init__(self, array_type: ArrayType):
        self.type = array_type
        if array_type.is_fixed:
            assert array_type.length is not None
            self._slots: list[Any] = [NULL] * array_type.length
        else:
            self._slots = []

    @property
    def element(self) -> ComponentSpec:
        """The element component spec of this array's type."""
        return self.type.element

    def _check_index(self, index: int) -> int:
        if not isinstance(index, int) or isinstance(index, bool):
            raise EvaluationError(f"array index must be an integer, got {index!r}")
        if index < 1 or index > len(self._slots):
            raise EvaluationError(
                f"array index {index} out of bounds 1..{len(self._slots)}"
            )
        return index - 1

    def get(self, index: int) -> Any:
        """Read the 1-based slot ``index``."""
        return self._slots[self._check_index(index)]

    def set(self, index: int, value: Any) -> None:
        """Write the 1-based slot ``index`` with conformance checking."""
        canonical = check_slot(self.element, value)
        if self.element.semantics is Semantics.OWN and canonical is not NULL:
            canonical = copy_value(canonical)
        self._slots[self._check_index(index)] = canonical

    def append(self, value: Any) -> None:
        """Append to a variable-length array (illegal on fixed arrays)."""
        if self.type.is_fixed:
            raise TypeSystemError("cannot append to a fixed-length array")
        canonical = check_slot(self.element, value)
        if self.element.semantics is Semantics.OWN and canonical is not NULL:
            canonical = copy_value(canonical)
        self._slots.append(canonical)

    def insert(self, index: int, value: Any) -> None:
        """Insert before the 1-based slot ``index`` (variable arrays only)."""
        if self.type.is_fixed:
            raise TypeSystemError("cannot insert into a fixed-length array")
        if index < 1 or index > len(self._slots) + 1:
            raise EvaluationError(
                f"array insert index {index} out of bounds 1..{len(self._slots) + 1}"
            )
        canonical = check_slot(self.element, value)
        if self.element.semantics is Semantics.OWN and canonical is not NULL:
            canonical = copy_value(canonical)
        self._slots.insert(index - 1, canonical)

    def remove_at(self, index: int) -> Any:
        """Remove and return the 1-based slot ``index`` (variable arrays)."""
        if self.type.is_fixed:
            raise TypeSystemError("cannot shrink a fixed-length array")
        return self._slots.pop(self._check_index(index))

    def slots(self) -> list[Any]:
        """A list copy of all slots in order."""
        return list(self._slots)

    def __iter__(self) -> Iterator[Any]:
        return iter(list(self._slots))

    def __len__(self) -> int:
        return len(self._slots)

    def __repr__(self) -> str:
        return f"<array {self.type.describe()} n={len(self._slots)}>"


# ---------------------------------------------------------------------------
# Value-semantics helpers.
# ---------------------------------------------------------------------------


def copy_value(value: Any) -> Any:
    """Deep-copy a value for ``own`` (value-semantics) assignment.

    References are *not* followed — copying an own tuple that contains a
    ``ref`` slot copies the reference, not the target object, exactly as
    the paper's structural semantics require. OIDs are never copied: the
    copy of a first-class object is a fresh value with no identity.
    """
    if value is NULL or isinstance(value, Ref):
        return value
    if isinstance(value, TupleInstance):
        clone = TupleInstance(value.type)
        for name, slot in value.attributes().items():
            clone._slots[name] = copy_value(slot)
        return clone
    if isinstance(value, SetInstance):
        clone = SetInstance(value.type, key=value.key)
        for member in value:
            clone._members.append(copy_value(member))
        return clone
    if isinstance(value, ArrayInstance):
        clone = ArrayInstance(value.type)
        clone._slots = [copy_value(slot) for slot in value.slots()]
        return clone
    # scalars and ADT instances
    return _copy.deepcopy(value)


def value_equal(left: Any, right: Any) -> bool:
    """Recursive value equality in the sense of [Banc86].

    Nulls are equal only to nulls here (this is the *structural* equality
    used for set-membership of own values; EXCESS comparison semantics —
    where null = null is unknown — live in the evaluator). References are
    equal only when they denote the same object.
    """
    if left is NULL or right is NULL:
        return left is right
    if isinstance(left, Ref) or isinstance(right, Ref):
        return (
            isinstance(left, Ref)
            and isinstance(right, Ref)
            and left.oid == right.oid
        )
    if isinstance(left, TupleInstance) and isinstance(right, TupleInstance):
        if left.type.attribute_names() != right.type.attribute_names():
            return False
        return all(
            value_equal(left.get(name), right.get(name))
            for name in left.type.attribute_names()
        )
    if isinstance(left, SetInstance) and isinstance(right, SetInstance):
        if len(left) != len(right):
            return False
        return all(right.contains(member) for member in left)
    if isinstance(left, ArrayInstance) and isinstance(right, ArrayInstance):
        if len(left) != len(right):
            return False
        return all(
            value_equal(a, b) for a, b in zip(left.slots(), right.slots())
        )
    if type(left) is bool or type(right) is bool:
        return left is right
    return bool(left == right)


def _members_equal(element: ComponentSpec, left: Any, right: Any) -> bool:
    """Set-member equality: OID equality for reference elements, recursive
    value equality for own elements."""
    if element.semantics.is_object:
        return (
            isinstance(left, Ref) and isinstance(right, Ref) and left.oid == right.oid
        )
    return value_equal(left, right)
