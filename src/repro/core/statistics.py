"""Catalog statistics for cost-based query optimization.

The EXODUS optimizer is rule-generated but *cost-driven*: access-method
and join-order decisions are made from tabular cost information
(paper §4.1.3).  This module supplies that table for named sets:

- per-set: member count at analyze time, the ``data_version`` the
  statistics were built at, and a churn counter;
- per-attribute: distinct-value count, null fraction, exact min/max,
  and a small equi-depth histogram over numeric attributes.

Statistics are built by an explicit ``analyze`` scan
(:meth:`StatisticsManager.rebuild`) and kept *approximately* fresh by
cheap incremental upkeep hooks on insert/remove/update: cardinality (in
the catalog) and min/max stay exact, while distinct counts and
histograms drift until the churn since the last analyze exceeds
``STALE_CHURN_FRACTION`` of the analyzed cardinality — at which point
the set is marked stale and the ``on_stale`` callback (wired to the
catalog epoch bump) invalidates any plan optimized under the old
numbers.

Selectivity estimation follows System R: equality defaults to
``1/10``, ranges to ``1/3``, refined to ``1/n_distinct`` and histogram
interpolation respectively when statistics exist.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.values import NULL

__all__ = [
    "AttributeStats",
    "SetStats",
    "StatisticsManager",
    "DEFAULT_EQ_SELECTIVITY",
    "DEFAULT_RANGE_SELECTIVITY",
    "DEFAULT_NEQ_SELECTIVITY",
    "HISTOGRAM_BUCKETS",
    "STALE_CHURN_FRACTION",
    "STALE_CHURN_MIN",
    "PARALLEL_MIN_PARTITION_ROWS",
    "PARALLEL_BROADCAST_MAX_ROWS",
]

#: System R magic numbers: the fallbacks when no statistics exist.
DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_NEQ_SELECTIVITY = 0.9

#: Number of equi-depth histogram buckets built per numeric attribute.
HISTOGRAM_BUCKETS = 8

#: A set's histograms are considered stale once churn since analyze
#: exceeds this fraction of the analyzed cardinality ...
STALE_CHURN_FRACTION = 0.2
#: ... but never before this many mutations (tiny sets churn fast).
STALE_CHURN_MIN = 8

#: Estimates never go below this selectivity (zero estimates would make
#: every downstream cost identical).
_FLOOR = 1e-4

#: Parallel execution: one scan partition per this many estimated input
#: rows (degree-of-parallelism = est // this, capped at the worker
#: count).  Below 2× this a plan stays serial — process dispatch plus
#: result pickling costs more than the scan itself on small inputs.
PARALLEL_MIN_PARTITION_ROWS = 2048

#: A hash join's build side is replicated to every worker (broadcast)
#: up to this many estimated rows; past it the optimizer hash-partitions
#: both sides on the join key so each worker builds only its bucket.
PARALLEL_BROADCAST_MAX_ROWS = 4096


def _is_numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


@dataclass
class AttributeStats:
    """Statistics for one attribute of one named set."""

    n_distinct: int = 0
    null_fraction: float = 0.0
    minimum: Any = None
    maximum: Any = None
    #: equi-depth bucket boundaries over numeric non-null values:
    #: ``boundaries[0]`` is the minimum, ``boundaries[-1]`` the maximum,
    #: and each of the ``len(boundaries) - 1`` buckets holds an equal
    #: share of the rows.  Empty for non-numeric attributes.
    boundaries: list = field(default_factory=list)

    def fraction_below(self, value: float) -> Optional[float]:
        """Estimated fraction of non-null rows strictly below ``value``
        via linear interpolation inside the equi-depth histogram;
        ``None`` when no histogram exists."""
        if len(self.boundaries) < 2:
            return None
        bounds = self.boundaries
        if value <= bounds[0]:
            return 0.0
        if value >= bounds[-1]:
            return 1.0
        buckets = len(bounds) - 1
        index = bisect_left(bounds, value) - 1
        index = max(0, min(index, buckets - 1))
        low, high = bounds[index], bounds[index + 1]
        within = 0.5 if high == low else (value - low) / (high - low)
        return (index + within) / buckets


@dataclass
class SetStats:
    """Statistics for one named set, as of the last ``analyze``."""

    set_name: str
    #: member count at analyze time (live count lives in the catalog)
    analyzed_cardinality: int = 0
    #: ``Database.data_version`` when the analyze scan ran
    analyzed_version: int = 0
    #: mutations observed since the analyze scan
    churn: int = 0
    #: histograms/distinct counts no longer trustworthy (churn exceeded
    #: the threshold); min/max stay exact regardless
    stale: bool = False
    attributes: dict[str, AttributeStats] = field(default_factory=dict)

    def churn_limit(self) -> int:
        return max(
            STALE_CHURN_MIN,
            int(self.analyzed_cardinality * STALE_CHURN_FRACTION),
        )


class StatisticsManager:
    """Holds :class:`SetStats` per analyzed named set.

    Lives on the catalog so transaction snapshots roll statistics back
    together with the data they describe.  ``on_stale`` (wired to
    ``Catalog.bump_epoch``) fires when a set crosses the churn threshold
    so the plan cache drops plans costed under the old histograms.
    """

    #: the executing transaction's undo log, attached and detached by
    #: the :class:`~repro.core.session.TransactionManager` as sessions'
    #: workspaces are parked and resumed; class attribute so snapshots
    #: from before this field existed load
    undo = None

    def __init__(self, on_stale: Optional[Callable[[], None]] = None):
        self._stats: dict[str, SetStats] = {}
        self.on_stale = on_stale

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("undo", None)  # undo logs never survive pickling
        return state

    def _note(self, set_name: str) -> None:
        """Before-image hook: snapshot a set's stats on first touch of an
        open transaction (the same sites that feed incremental upkeep)."""
        if self.undo is not None:
            self.undo.save_stats(self, set_name)

    # -- access ------------------------------------------------------------------

    def get(self, set_name: str) -> Optional[SetStats]:
        """The stats of a set, or ``None`` when never analyzed."""
        return self._stats.get(set_name)

    def analyzed_sets(self) -> list[str]:
        return sorted(self._stats)

    def forget(self, set_name: str) -> None:
        self._note(set_name)
        self._stats.pop(set_name, None)

    def clear(self) -> None:
        for set_name in list(self._stats):
            self._note(set_name)
        self._stats.clear()

    # -- analyze -----------------------------------------------------------------

    def rebuild(
        self, set_name: str, rows: list[dict], data_version: int
    ) -> SetStats:
        """Build fresh statistics from a full scan (``analyze``).

        ``rows`` are attribute-name → value dictionaries (one per
        member); non-scalar values were already filtered out by the
        caller except that nulls arrive as :data:`NULL`.
        """
        self._note(set_name)
        stats = SetStats(
            set_name=set_name,
            analyzed_cardinality=len(rows),
            analyzed_version=data_version,
        )
        columns: dict[str, list] = {}
        nulls: dict[str, int] = {}
        for row in rows:
            for attribute, value in row.items():
                if value is NULL or value is None:
                    nulls[attribute] = nulls.get(attribute, 0) + 1
                    columns.setdefault(attribute, [])
                else:
                    columns.setdefault(attribute, []).append(value)
        total = len(rows)
        for attribute, values in columns.items():
            stats.attributes[attribute] = self._build_attribute(
                values, nulls.get(attribute, 0), total
            )
        self._stats[set_name] = stats
        return stats

    def _build_attribute(
        self, values: list, null_count: int, total: int
    ) -> AttributeStats:
        attr = AttributeStats(
            null_fraction=(null_count / total) if total else 0.0
        )
        try:
            attr.n_distinct = len(set(values))
        except TypeError:  # unhashable member values
            attr.n_distinct = len(values)
        numeric = [v for v in values if _is_numeric(v)]
        comparable = numeric if numeric else values
        if comparable and len(numeric) == len(values):
            attr.minimum = min(comparable)
            attr.maximum = max(comparable)
        elif values and all(isinstance(v, str) for v in values):
            attr.minimum = min(values)
            attr.maximum = max(values)
        if len(numeric) >= 2:
            attr.boundaries = self._equi_depth(sorted(numeric))
        return attr

    @staticmethod
    def _equi_depth(ordered: list, buckets: int = HISTOGRAM_BUCKETS) -> list:
        """Equi-depth bucket boundaries over pre-sorted numeric values."""
        count = len(ordered)
        buckets = min(buckets, count - 1) or 1
        bounds = [ordered[0]]
        for i in range(1, buckets):
            bounds.append(ordered[(i * (count - 1)) // buckets])
        bounds.append(ordered[-1])
        # collapse duplicate boundaries (heavily skewed data)
        out = [bounds[0]]
        for b in bounds[1:]:
            if b != out[-1]:
                out.append(b)
        return out if len(out) >= 2 else []

    # -- incremental upkeep ------------------------------------------------------

    def observe_insert(self, set_name: str, row: Optional[dict]) -> None:
        """Cheap upkeep after one member was inserted: widen min/max
        (stays exact) and count churn."""
        stats = self._stats.get(set_name)
        if stats is None:
            return
        self._note(set_name)
        if row:
            for attribute, value in row.items():
                attr = stats.attributes.get(attribute)
                if attr is None or value is NULL or value is None:
                    continue
                try:
                    if attr.minimum is None or value < attr.minimum:
                        attr.minimum = value
                    if attr.maximum is None or value > attr.maximum:
                        attr.maximum = value
                except TypeError:
                    pass
        self._bump_churn(stats)

    def observe_remove(
        self,
        set_name: str,
        row: Optional[dict],
        rescan: Optional[Callable[[str], Optional[tuple]]] = None,
    ) -> None:
        """Upkeep after one member was removed: when an extremal value
        left, re-derive exact min/max via ``rescan(attribute)`` (a
        single-attribute scan provided by the database)."""
        stats = self._stats.get(set_name)
        if stats is None:
            return
        self._note(set_name)
        if row:
            for attribute, value in row.items():
                attr = stats.attributes.get(attribute)
                if attr is None or value is NULL or value is None:
                    continue
                if value == attr.minimum or value == attr.maximum:
                    fresh = rescan(attribute) if rescan is not None else None
                    if fresh is None:
                        attr.minimum = None
                        attr.maximum = None
                    else:
                        attr.minimum, attr.maximum = fresh
        self._bump_churn(stats)

    def observe_update(
        self,
        set_name: str,
        old_row: Optional[dict],
        new_row: Optional[dict],
        rescan: Optional[Callable[[str], Optional[tuple]]] = None,
    ) -> None:
        """Upkeep after an in-place member update: treat it as a remove
        of the old values plus an insert of the new ones (one churn)."""
        stats = self._stats.get(set_name)
        if stats is None:
            return
        self._note(set_name)
        if old_row:
            changed = {
                k: v
                for k, v in old_row.items()
                if new_row is None or k in new_row
            }
            self._minmax_shrink(stats, changed, rescan)
        if new_row:
            for attribute, value in new_row.items():
                attr = stats.attributes.get(attribute)
                if attr is None or value is NULL or value is None:
                    continue
                try:
                    if attr.minimum is None or value < attr.minimum:
                        attr.minimum = value
                    if attr.maximum is None or value > attr.maximum:
                        attr.maximum = value
                except TypeError:
                    pass
        self._bump_churn(stats)

    def _minmax_shrink(
        self,
        stats: SetStats,
        row: dict,
        rescan: Optional[Callable[[str], Optional[tuple]]],
    ) -> None:
        for attribute, value in row.items():
            attr = stats.attributes.get(attribute)
            if attr is None or value is NULL or value is None:
                continue
            if value == attr.minimum or value == attr.maximum:
                fresh = rescan(attribute) if rescan is not None else None
                if fresh is None:
                    attr.minimum = None
                    attr.maximum = None
                else:
                    attr.minimum, attr.maximum = fresh

    def _bump_churn(self, stats: SetStats) -> None:
        stats.churn += 1
        if not stats.stale and stats.churn > stats.churn_limit():
            stats.stale = True
            if self.on_stale is not None:
                self.on_stale()

    # -- selectivity estimation --------------------------------------------------

    def eq_selectivity(self, set_name: str, attribute: str, value: Any) -> float:
        """Estimated fraction of rows with ``attribute = value``."""
        attr = self._fresh_attribute(set_name, attribute)
        if attr is None:
            return DEFAULT_EQ_SELECTIVITY
        if (
            _is_numeric(value)
            and attr.minimum is not None
            and attr.maximum is not None
            and _is_numeric(attr.minimum)
            and (value < attr.minimum or value > attr.maximum)
        ):
            return _FLOOR
        if attr.n_distinct > 0:
            return max(_FLOOR, (1.0 - attr.null_fraction) / attr.n_distinct)
        return DEFAULT_EQ_SELECTIVITY

    def range_selectivity(
        self, set_name: str, attribute: str, op: str, value: Any
    ) -> float:
        """Estimated fraction of rows satisfying ``attribute <op> value``
        for ``<`` ``<=`` ``>`` ``>=``, via histogram interpolation when a
        fresh histogram exists, min/max interpolation otherwise."""
        if op == "=":
            return self.eq_selectivity(set_name, attribute, value)
        if op == "!=":
            return DEFAULT_NEQ_SELECTIVITY
        attr = self._fresh_attribute(set_name, attribute)
        if attr is None or not _is_numeric(value):
            return DEFAULT_RANGE_SELECTIVITY
        below = attr.fraction_below(value)
        if below is None:
            below = self._linear_below(attr, value)
        if below is None:
            return DEFAULT_RANGE_SELECTIVITY
        not_null = 1.0 - attr.null_fraction
        if op in ("<", "<="):
            fraction = below
        else:
            fraction = 1.0 - below
        return min(1.0, max(_FLOOR, fraction * not_null))

    @staticmethod
    def _linear_below(attr: AttributeStats, value: float) -> Optional[float]:
        low, high = attr.minimum, attr.maximum
        if not (_is_numeric(low) and _is_numeric(high)):
            return None
        if value <= low:
            return 0.0
        if value >= high:
            return 1.0
        if high == low:
            return 0.5
        return (value - low) / (high - low)

    def distinct(self, set_name: str, attribute: str) -> Optional[int]:
        """Distinct-value count of an attribute, or ``None`` when
        unknown (never analyzed, or stale)."""
        attr = self._fresh_attribute(set_name, attribute)
        if attr is None or attr.n_distinct <= 0:
            return None
        return attr.n_distinct

    def _fresh_attribute(
        self, set_name: str, attribute: str
    ) -> Optional[AttributeStats]:
        stats = self._stats.get(set_name)
        if stats is None or stats.stale:
            return None
        return stats.attributes.get(attribute)
