"""Integrity enforcement: referential integrity, ownership, cascades, keys.

This module owns the semantic rules of paper §2.2:

* **ref**: the target must be a live object of an assignable type (or the
  reference is null). Deleting a target leaves dangling references that
  *read as null* (GEM-style); :meth:`IntegrityManager.vacuum` scrubs them
  eagerly when desired.
* **own**: pure embedded values — no identity, no rules beyond type
  conformance (enforced by the value layer).
* **own ref**: component objects are first-class but exclusively owned;
  inserting an already-owned object into a second owned slot raises
  :class:`~repro.errors.OwnershipError`, and deleting an owner cascades
  to everything it owns ("if an employee is deleted, so are his or her
  kids").
* **keys** on set instances: uniqueness of a declared attribute tuple
  across the set's members.

Object creation accepts a convenient raw form — plain scalars for base
types, dicts for nested tuple values, lists for sets/arrays, and
:class:`~repro.core.values.Ref` for references — and recursively builds,
registers, and claims ownership of component objects.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.core.catalog import Catalog, NamedObject
from repro.core.identity import ObjectTable, Oid
from repro.core.schema import SchemaType
from repro.core.types import (
    ArrayType,
    ComponentSpec,
    Semantics,
    SetType,
    TupleType,
    Type,
)
from repro.core.values import (
    NULL,
    ArrayInstance,
    Ref,
    SetInstance,
    TupleInstance,
)
from repro.errors import IntegrityError, TypeSystemError

__all__ = ["IntegrityManager"]


class IntegrityManager:
    """Implements creation, deletion, and mutation with EXTRA semantics."""

    def __init__(self, objects: ObjectTable, catalog: Catalog):
        self._objects = objects
        self._catalog = catalog

    @property
    def _undo(self):
        """The open transaction's undo log (lives on the object table)."""
        return self._objects.undo

    # -- creation -----------------------------------------------------------------

    def create_object(
        self,
        schema_type: SchemaType,
        values: Optional[dict[str, Any]] = None,
        owner: Optional[Oid] = None,
        owner_name: Optional[str] = None,
    ) -> Ref:
        """Create a first-class object of ``schema_type`` and return a
        reference to it.

        ``values`` maps attribute names to raw values (see module doc for
        the accepted forms). ``owner`` / ``owner_name`` establish an
        ``own ref`` ownership claim at birth.
        """
        instance = TupleInstance(schema_type)
        oid = self._objects.register(instance, owner=owner, owner_name=owner_name)
        try:
            for name, raw in (values or {}).items():
                spec = schema_type.attribute(name)
                instance._slots[name] = self._build_slot(spec, raw, holder=oid)
            self._objects.mark_dirty(oid)
        except Exception:
            # Creation failed part-way: roll the object (and anything it
            # already owns) back out so no half-object leaks.
            self.delete_object(oid)
            raise
        return Ref(oid)

    def _build_slot(self, spec: ComponentSpec, raw: Any, holder: Oid) -> Any:
        """Convert a raw value into the canonical stored slot form,
        creating and claiming component objects as needed."""
        if raw is NULL or raw is None:
            return NULL
        if spec.semantics is Semantics.OWN:
            return self._build_own_value(spec.type, raw, holder=holder)
        # ref / own ref slots
        assert isinstance(spec.type, TupleType)
        if isinstance(raw, Ref):
            self.check_ref_target(spec, raw)
            if spec.semantics is Semantics.OWN_REF:
                self._objects.claim(raw.oid, owner=holder)
            return raw
        if isinstance(raw, dict):
            if spec.semantics is Semantics.REF:
                raise IntegrityError(
                    "a ref slot requires a reference to an existing object; "
                    "inline construction is only allowed for own ref slots"
                )
            if not isinstance(spec.type, SchemaType):
                raise TypeSystemError(
                    "inline construction requires a schema type target"
                )
            return self.create_object(spec.type, raw, owner=holder)
        raise TypeSystemError(
            f"cannot store {raw!r} in a {spec.semantics} slot of type {spec.type}"
        )

    def _build_own_value(
        self, declared: Type, raw: Any, holder: Optional[Oid] = None
    ) -> Any:
        """Build an embedded (own) value from a raw Python value.

        ``holder`` is the OID of the enclosing first-class object, used to
        claim ownership of ``own ref`` components created or referenced
        inside nested collections (e.g. the members of ``kids``).
        """
        if isinstance(declared, TupleType) and isinstance(raw, dict):
            instance = TupleInstance(declared)
            for name, value in raw.items():
                spec = declared.attribute(name)
                if spec.semantics is Semantics.OWN:
                    instance._slots[name] = self._build_own_value(
                        spec.type, value, holder=holder
                    )
                elif value is None or value is NULL:
                    instance._slots[name] = NULL
                else:
                    instance._slots[name] = self._element_value(spec, value, holder)
            return instance
        if isinstance(declared, SetType) and isinstance(raw, (list, tuple, set)):
            out = SetInstance(declared)
            for member in raw:
                out.insert(
                    self._build_own_value(declared.element.type, member, holder)
                    if declared.element.semantics is Semantics.OWN
                    else self._element_value(declared.element, member, holder)
                )
            return out
        if isinstance(declared, ArrayType) and isinstance(raw, (list, tuple)):
            out = ArrayInstance(declared)
            values = [
                self._build_own_value(declared.element.type, member, holder)
                if declared.element.semantics is Semantics.OWN
                else self._element_value(declared.element, member, holder)
                for member in raw
            ]
            if declared.is_fixed:
                if len(values) > len(out):
                    raise TypeSystemError(
                        f"too many initializers for fixed array of {len(out)}"
                    )
                for index, value in enumerate(values, start=1):
                    out.set(index, value)
            else:
                for value in values:
                    out.append(value)
            return out
        return declared.coerce(raw)

    def _element_value(
        self, spec: ComponentSpec, value: Any, holder: Optional[Oid]
    ) -> Ref:
        """Build a reference element: validate an existing :class:`Ref`
        (claiming ownership for ``own ref``) or create an owned object
        from an inline dict."""
        if isinstance(value, dict):
            if spec.semantics is Semantics.REF:
                raise IntegrityError(
                    "ref elements must reference existing objects; inline "
                    "construction is only allowed for own ref elements"
                )
            if not isinstance(spec.type, SchemaType):
                raise TypeSystemError(
                    "inline construction requires a schema type target"
                )
            return self.create_object(spec.type, value, owner=holder)
        if not isinstance(value, Ref):
            raise IntegrityError(
                f"{spec.semantics} elements must be references, got {value!r}"
            )
        self.check_ref_target(spec, value)
        if spec.semantics is Semantics.OWN_REF and holder is not None:
            self._objects.claim(value.oid, owner=holder)
        return value

    # -- reference checking ---------------------------------------------------------

    def check_ref_target(self, spec: ComponentSpec, reference: Ref) -> None:
        """Validate that ``reference`` denotes a live object whose type is
        assignable to the slot's declared type (referential integrity at
        write time)."""
        target = self._objects.deref(reference.oid)
        if target is None:
            raise IntegrityError(
                f"reference to dead or unknown object {reference.oid}"
            )
        if not spec.type.is_assignable_from(target.type):
            raise IntegrityError(
                f"object {reference.oid} has type {target.type.describe()}, "
                f"not assignable to slot of type {spec.type.describe()}"
            )

    # -- deletion -----------------------------------------------------------------------

    def delete_object(self, oid: Oid) -> int:
        """Delete the object ``oid``, cascading to everything it owns.

        Returns the number of objects deleted (including cascades). The
        deleted object's reference is also removed from its owner's slots
        when it was an owned component, and references *to* it elsewhere
        become dangling (they read as null until vacuumed).
        """
        record = self._objects.record(oid)
        deleted = 0
        # Cascade: delete own-ref components reachable from this object's
        # slots before removing the object itself.
        for slot_value, spec in _reference_slots(record.value):
            if spec.semantics is Semantics.OWN_REF and isinstance(slot_value, Ref):
                if self._objects.is_live(slot_value.oid):
                    deleted += self.delete_object(slot_value.oid)
        owner_oid = record.owner
        self._objects.delete(oid)
        deleted += 1
        if owner_oid is not None and self._objects.is_live(owner_oid):
            self._remove_ref_from_holder(self._objects.fetch(owner_oid), oid)
            self._objects.mark_dirty(owner_oid)
        return deleted

    def _remove_ref_from_holder(self, holder: TupleInstance, oid: Oid) -> None:
        """Scrub ``Ref(oid)`` out of one tuple instance's slots."""
        undo = self._undo
        for name, value in holder.attributes().items():
            if isinstance(value, Ref) and value.oid == oid:
                if undo is not None:
                    undo.save_tuple(holder)
                holder._slots[name] = NULL
            elif isinstance(value, SetInstance):
                if undo is not None and value.contains(Ref(oid)):
                    undo.save_set(value)
                value.remove(Ref(oid))
            elif isinstance(value, ArrayInstance):
                for index in range(1, len(value) + 1):
                    slot = value.get(index)
                    if isinstance(slot, Ref) and slot.oid == oid:
                        if undo is not None:
                            undo.save_array(value)
                        value._slots[index - 1] = NULL

    # -- set membership ---------------------------------------------------------------

    def insert_member(
        self,
        named: NamedObject,
        collection: SetInstance,
        value: Any,
    ) -> bool:
        """Insert ``value`` into a named set with full semantics.

        For ``own ref`` element sets, an existing object is claimed (the
        exclusivity check fires here) and a dict creates a fresh owned
        object. For ``ref`` sets the target is validated. For ``own``
        sets the value is embedded. Key constraints are checked first.
        Returns False when the member was already present.
        """
        element = collection.element
        if element.semantics is Semantics.OWN:
            member = self._build_own_value(element.type, value)
        elif isinstance(value, dict):
            if element.semantics is Semantics.REF:
                raise IntegrityError(
                    f"set {named.name!r} holds references to existing objects; "
                    "inline construction is only allowed for own ref sets"
                )
            if not isinstance(element.type, SchemaType):
                raise TypeSystemError("inline construction requires a schema type")
            member = self.create_object(
                element.type, value, owner_name=named.name
            )
        elif isinstance(value, Ref):
            self.check_ref_target(element, value)
            member = value
        else:
            raise TypeSystemError(
                f"cannot insert {value!r} into set {named.name!r}"
            )
        self.check_key(named, collection, member)
        if isinstance(member, Ref) and element.semantics is Semantics.OWN_REF:
            if isinstance(value, Ref):
                # claiming an existing object: exclusivity check
                self._objects.claim(member.oid, owner_name=named.name)
        if self._undo is not None:
            self._undo.save_set(collection)
        added = collection.insert(member)
        if not added and isinstance(value, Ref) and element.semantics is Semantics.OWN_REF:
            self._objects.release(member.oid)
        return added

    def remove_member(
        self, named: NamedObject, collection: SetInstance, member: Any,
        delete_owned: bool = True,
    ) -> bool:
        """Remove ``member`` from a named set.

        When the set owns its members (``own ref``), removal deletes the
        member object too (it cannot outlive its owner) unless
        ``delete_owned`` is False, in which case ownership is released.
        """
        if self._undo is not None and collection.contains(member):
            self._undo.save_set(collection)
        removed = collection.remove(member)
        if not removed:
            return False
        if isinstance(member, Ref) and collection.element.semantics is Semantics.OWN_REF:
            if self._objects.is_live(member.oid):
                if delete_owned:
                    self.delete_object(member.oid)
                else:
                    self._objects.release(member.oid)
        return True

    # -- keys --------------------------------------------------------------------------

    def check_key(
        self, named: NamedObject, collection: SetInstance, candidate: Any
    ) -> None:
        """Enforce the set instance's key constraint against ``candidate``."""
        if not collection.key:
            return
        candidate_key = self._key_of(collection, candidate)
        if candidate_key is None:
            return  # null in key: cannot collide (QUEL-style null semantics)
        for member in collection:
            if self._key_of(collection, member) == candidate_key:
                raise IntegrityError(
                    f"key violation on {named.name!r}: duplicate key "
                    f"{candidate_key!r} for attributes {collection.key}"
                )

    def _key_of(self, collection: SetInstance, member: Any) -> Optional[tuple]:
        assert collection.key is not None
        instance = self.resolve_member(collection, member)
        if instance is None:
            return None
        values = []
        for attribute in collection.key:
            value = instance.get(attribute)
            if value is NULL:
                return None
            values.append(value)
        return tuple(values)

    # -- member resolution ----------------------------------------------------------------

    def resolve_member(
        self, collection: SetInstance, member: Any
    ) -> Optional[TupleInstance]:
        """Resolve a set member to its tuple instance.

        Dereferences ``Ref`` members (None for dangling ones — callers
        skip those, implementing null-on-dangle iteration); own members
        are returned as stored when they are tuple instances.
        """
        if isinstance(member, Ref):
            return self._objects.deref(member.oid)
        if isinstance(member, TupleInstance):
            return member
        return None

    def live_members(self, collection: SetInstance) -> Iterable[Any]:
        """Iterate the set's members, skipping dangling references."""
        for member in collection:
            if isinstance(member, Ref) and not self._objects.is_live(member.oid):
                continue
            yield member

    # -- vacuum ------------------------------------------------------------------------------

    def vacuum(self) -> int:
        """Eagerly scrub dangling references database-wide.

        Dangling refs in object slots become null; dangling members of
        named ref sets/arrays are removed/nulled. Returns the number of
        references scrubbed.
        """
        scrubbed = 0
        for oid in list(self._objects.oids()):
            instance = self._objects.fetch(oid)
            scrubbed += self._vacuum_tuple(instance)
            self._objects.mark_dirty(oid)
        for name in self._catalog.named_names():
            named = self._catalog.named(name)
            scrubbed += self._vacuum_value(named.value)
        return scrubbed

    def _vacuum_tuple(self, instance: TupleInstance) -> int:
        scrubbed = 0
        for name, value in instance.attributes().items():
            if isinstance(value, Ref) and not self._objects.is_live(value.oid):
                if self._undo is not None:
                    self._undo.save_tuple(instance)
                instance._slots[name] = NULL
                scrubbed += 1
            else:
                scrubbed += self._vacuum_value(value)
        return scrubbed

    def _vacuum_value(self, value: Any) -> int:
        scrubbed = 0
        if isinstance(value, SetInstance):
            for member in value.members():
                if isinstance(member, Ref) and not self._objects.is_live(member.oid):
                    if self._undo is not None:
                        self._undo.save_set(value)
                    value.remove(member)
                    scrubbed += 1
                elif isinstance(member, TupleInstance):
                    scrubbed += self._vacuum_tuple(member)
        elif isinstance(value, ArrayInstance):
            for index in range(1, len(value) + 1):
                slot = value.get(index)
                if isinstance(slot, Ref) and not self._objects.is_live(slot.oid):
                    if self._undo is not None:
                        self._undo.save_array(value)
                    value._slots[index - 1] = NULL
                    scrubbed += 1
                elif isinstance(slot, TupleInstance):
                    scrubbed += self._vacuum_tuple(slot)
        elif isinstance(value, TupleInstance):
            scrubbed += self._vacuum_tuple(value)
        return scrubbed


def _reference_slots(
    instance: TupleInstance,
) -> Iterable[tuple[Any, ComponentSpec]]:
    """Yield ``(slot_value, effective_spec)`` for every reference-bearing
    position in ``instance`` (attributes, set members, array slots)."""
    for name, value in instance.attributes().items():
        spec = instance.type.attribute(name)
        if spec.semantics.is_object:
            yield value, spec
        elif isinstance(value, (SetInstance, ArrayInstance)):
            element = value.element
            if element.semantics.is_object:
                for member in value:
                    yield member, element
            else:
                for member in value:
                    if isinstance(member, TupleInstance):
                        yield from _reference_slots(member)
        elif isinstance(value, TupleInstance):
            yield from _reference_slots(value)
