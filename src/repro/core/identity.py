"""Object identity for EXTRA.

EXTRA distinguishes *values* (``own`` components, which lack identity in
the sense of [Khos86]) from *first-class objects* (instances that are
``ref``-erable). First-class objects carry an **OID** allocated by the
:class:`ObjectTable`, which also records ownership for ``own ref``
components (ORION composite-object semantics) and keeps tombstones for
deleted OIDs so dangling references read as null (GEM-style referential
integrity) rather than erroring.

The table delegates raw storage to an object-store implementing the small
:class:`ObjectStore` protocol; :class:`MemoryObjectStore` is the default,
and :class:`repro.storage.object_store.PagedObjectStore` provides the
EXODUS-storage-manager-like paged implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional, Protocol

from repro.errors import OwnershipError, StorageError, UnknownObjectError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.values import TupleInstance

__all__ = ["Oid", "ObjectStore", "MemoryObjectStore", "StoredObject", "ObjectTable"]

#: OIDs are plain integers; 0 is never allocated.
Oid = int


@dataclass
class StoredObject:
    """The object table's record for one live first-class object."""

    oid: Oid
    value: "TupleInstance"
    #: OID of the owner when this object is an ``own ref`` component of
    #: another object or of a named owned collection; ``None`` when the
    #: object is independent.
    owner: Optional[Oid] = None
    #: Name of the named collection that owns this object directly, when
    #: ownership is at the database-name level (e.g. an element of the
    #: ``Employees`` set created as ``{own ref Employee}``).
    owner_name: Optional[str] = None


class ObjectStore(Protocol):
    """Minimal storage interface the object table requires."""

    def insert(self, oid: Oid, record: StoredObject) -> None:
        """Store a new record under ``oid``; ``oid`` must be fresh."""
        ...

    def fetch(self, oid: Oid) -> StoredObject:
        """Return the record for ``oid``; raise ``KeyError`` if absent."""
        ...

    def update(self, oid: Oid, record: StoredObject) -> None:
        """Replace the record stored under ``oid``."""
        ...

    def delete(self, oid: Oid) -> None:
        """Remove the record stored under ``oid``."""
        ...

    def __contains__(self, oid: Oid) -> bool: ...

    def oids(self) -> Iterator[Oid]:
        """Iterate over the OIDs of all stored records."""
        ...


class MemoryObjectStore:
    """Dictionary-backed object store (the default substrate)."""

    def __init__(self) -> None:
        self._records: dict[Oid, StoredObject] = {}

    def insert(self, oid: Oid, record: StoredObject) -> None:
        """Store ``record`` under a fresh ``oid``."""
        if oid in self._records:
            raise StorageError(f"oid {oid} already present")
        self._records[oid] = record

    def fetch(self, oid: Oid) -> StoredObject:
        """Return the record for ``oid`` (KeyError when absent)."""
        return self._records[oid]

    def update(self, oid: Oid, record: StoredObject) -> None:
        """Replace the record under ``oid``."""
        if oid not in self._records:
            raise StorageError(f"cannot update unknown oid {oid}")
        self._records[oid] = record

    def delete(self, oid: Oid) -> None:
        """Drop the record under ``oid``."""
        self._records.pop(oid, None)

    def __contains__(self, oid: Oid) -> bool:
        return oid in self._records

    def oids(self) -> Iterator[Oid]:
        """All live OIDs."""
        return iter(list(self._records))

    def __len__(self) -> int:
        return len(self._records)


class ObjectTable:
    """Allocates OIDs and tracks every live first-class object.

    Responsibilities:

    * OID allocation (monotonically increasing, never reused, so that a
      tombstoned OID can always be distinguished from a never-allocated
      one);
    * ownership bookkeeping for ``own ref`` components, enforcing the
      exclusivity rule of paper §2.2 (an object cannot acquire a second
      owner);
    * tombstones: after deletion, :meth:`is_live` is False but
      :meth:`was_allocated` remains True, letting references dangle to
      null without ambiguity.
    """

    #: the open transaction's undo log (attached by ``Database.begin``);
    #: class attribute so snapshots from before this field existed load
    undo = None

    def __init__(self, store: Optional[ObjectStore] = None):
        self._store: ObjectStore = store if store is not None else MemoryObjectStore()
        self._next_oid: Oid = 1
        self._tombstones: set[Oid] = set()

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("undo", None)  # undo logs never survive pickling
        return state

    # -- allocation ---------------------------------------------------------

    def register(
        self,
        value: "TupleInstance",
        owner: Optional[Oid] = None,
        owner_name: Optional[str] = None,
    ) -> Oid:
        """Give ``value`` identity: allocate an OID and store the object.

        ``owner``/``owner_name`` record an ``own ref`` owner at creation
        time (at most one of the two may be given).
        """
        if owner is not None and owner_name is not None:
            raise OwnershipError("an object cannot have two owners")
        oid = self._next_oid
        self._next_oid += 1
        record = StoredObject(oid=oid, value=value, owner=owner, owner_name=owner_name)
        self._store.insert(oid, record)
        value.oid = oid
        if self.undo is not None:
            self.undo.note_object_registered(self, oid)
        return oid

    # -- lookup -------------------------------------------------------------

    def fetch(self, oid: Oid) -> "TupleInstance":
        """Return the live object with ``oid``.

        Raises :class:`UnknownObjectError` for dead or unallocated OIDs;
        callers implementing GEM-style null-on-dangle semantics should use
        :meth:`deref` instead.
        """
        try:
            return self._store.fetch(oid).value
        except KeyError:
            raise UnknownObjectError(oid) from None

    def deref(self, oid: Oid) -> Optional["TupleInstance"]:
        """Return the object for ``oid`` or ``None`` when it is dead.

        This is the referential-integrity-friendly lookup: a reference to
        a deleted object reads as null (paper §2.2 / GEM semantics).
        """
        try:
            return self._store.fetch(oid).value
        except KeyError:
            return None

    def record(self, oid: Oid) -> StoredObject:
        """Return the full stored record (value + ownership) for ``oid``."""
        try:
            return self._store.fetch(oid)
        except KeyError:
            raise UnknownObjectError(oid) from None

    def is_live(self, oid: Oid) -> bool:
        """True when ``oid`` denotes a live (undeleted) object."""
        return oid in self._store

    def was_allocated(self, oid: Oid) -> bool:
        """True when ``oid`` was ever handed out (live or tombstoned)."""
        return 0 < oid < self._next_oid

    def oids(self) -> Iterator[Oid]:
        """Iterate over all live OIDs."""
        return self._store.oids()

    def __len__(self) -> int:
        return sum(1 for _ in self._store.oids())

    # -- residency (paged stores) --------------------------------------------

    def pin(self, oid: Oid) -> None:
        """Exempt ``oid`` from live-cache eviction while a transaction's
        undo log or a parked workspace references it (no-op for stores
        without an evicting cache)."""
        pin = getattr(self._store, "pin", None)
        if pin is not None:
            pin(oid)

    def unpin(self, oid: Oid) -> None:
        """Release one residency pin on ``oid``."""
        unpin = getattr(self._store, "unpin", None)
        if unpin is not None:
            unpin(oid)

    # -- mutation -----------------------------------------------------------

    def mark_dirty(self, oid: Oid) -> None:
        """Write the (mutated in place) object back to the store."""
        record = self.record(oid)
        self._store.update(oid, record)

    def delete(self, oid: Oid) -> None:
        """Remove the object with ``oid``, leaving a tombstone.

        Cascade deletion of owned components is the responsibility of
        :mod:`repro.core.integrity`, which calls this per object.
        """
        if oid not in self._store:
            raise UnknownObjectError(oid)
        if self.undo is not None:
            self.undo.note_object_deleted(self, self._store.fetch(oid))
        self._store.delete(oid)
        self._tombstones.add(oid)

    def is_tombstoned(self, oid: Oid) -> bool:
        """True when ``oid`` was deleted (dangling refs to it are null)."""
        return oid in self._tombstones

    # -- ownership ----------------------------------------------------------

    def owner_of(self, oid: Oid) -> tuple[Optional[Oid], Optional[str]]:
        """Return ``(owner_oid, owner_name)`` for the object ``oid``."""
        record = self.record(oid)
        return record.owner, record.owner_name

    def is_owned(self, oid: Oid) -> bool:
        """True when the object already has an ``own ref`` owner."""
        record = self.record(oid)
        return record.owner is not None or record.owner_name is not None

    def claim(
        self,
        oid: Oid,
        owner: Optional[Oid] = None,
        owner_name: Optional[str] = None,
    ) -> None:
        """Make ``owner`` (or the named collection ``owner_name``) the
        exclusive owner of ``oid``.

        Raises :class:`OwnershipError` when the object is already owned —
        the paper's composite-object exclusivity rule: "a Person instance
        in the kids set of one Employee instance cannot be in the kids set
        of another Employee instance simultaneously".
        """
        if (owner is None) == (owner_name is None):
            raise OwnershipError("exactly one of owner / owner_name is required")
        record = self.record(oid)
        if record.owner is not None or record.owner_name is not None:
            current = (
                f"object {record.owner}" if record.owner is not None
                else f"collection {record.owner_name!r}"
            )
            raise OwnershipError(
                f"object {oid} is already owned by {current}; own ref components "
                "are exclusive"
            )
        if self.undo is not None:
            self.undo.note_ownership(self, oid, record.owner, record.owner_name)
        record.owner = owner
        record.owner_name = owner_name
        self._store.update(oid, record)

    def release(self, oid: Oid) -> None:
        """Drop the ownership claim on ``oid`` (e.g. when it is removed
        from an owned collection without being deleted)."""
        record = self.record(oid)
        if self.undo is not None:
            self.undo.note_ownership(self, oid, record.owner, record.owner_name)
        record.owner = None
        record.owner_name = None
        self._store.update(oid, record)

    def owned_by(self, owner: Oid) -> list[Oid]:
        """OIDs of all live objects directly owned by the object ``owner``."""
        return [
            oid for oid in self._store.oids() if self._store.fetch(oid).owner == owner
        ]

    def owned_by_name(self, owner_name: str) -> list[Oid]:
        """OIDs of all live objects owned directly by a named collection."""
        return [
            oid
            for oid in self._store.oids()
            if self._store.fetch(oid).owner_name == owner_name
        ]
