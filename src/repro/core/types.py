"""The EXTRA type system.

EXTRA (paper §2) provides:

* predefined **base types**: integers of several sizes, single and double
  precision floats, booleans, fixed-length character strings, variable
  length text, and enumerations;
* **abstract data types** (ADTs) added through a registration facility
  (paper §4.1; here the ADT implementation language is Python standing in
  for E);
* **type constructors**: tuple, set, fixed-length array, variable-length
  array, and references;
* three kinds of **attribute value semantics**: ``own`` (an embedded value
  with no identity, in the sense of [Khos86]), ``ref`` (a reference to an
  independently existing first-class object, as in GEM), and ``own ref``
  (an owned component that is nevertheless a first-class object, like
  ORION composite objects / E-R weak entities).

Types are immutable descriptions; runtime data lives in
:mod:`repro.core.values`. Named tuple types created with ``define type``
(schema types, which participate in the inheritance lattice) are built in
:mod:`repro.core.schema` on top of :class:`TupleType`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional, Sequence

from repro.errors import TypeSystemError

__all__ = [
    "Semantics",
    "Type",
    "BaseType",
    "IntegerType",
    "FloatType",
    "BooleanType",
    "CharType",
    "TextType",
    "EnumType",
    "AdtType",
    "ComponentSpec",
    "TupleType",
    "SetType",
    "ArrayType",
    "INT1",
    "INT2",
    "INT4",
    "FLOAT4",
    "FLOAT8",
    "BOOLEAN",
    "TEXT",
    "char",
    "enumeration",
    "own",
    "ref",
    "own_ref",
    "is_numeric",
    "common_numeric_type",
]


class Semantics(enum.Enum):
    """The three attribute value semantics of EXTRA (paper §2.2).

    ``OWN``
        The component is a pure value embedded in its parent. It lacks
        identity, is copied on assignment, cannot be referenced from
        elsewhere, and dies with its parent.
    ``REF``
        The component is a reference to a first-class object that exists
        independently elsewhere in the database (or is null). Deleting the
        target leaves dangling references that read as null (GEM-style
        referential integrity).
    ``OWN_REF``
        The component is a first-class object (it has identity and may be
        the target of ``ref`` attributes elsewhere) but is exclusively
        owned: it can have only one owner and is deleted when its owner is
        deleted (ORION composite-object semantics).
    """

    OWN = "own"
    REF = "ref"
    OWN_REF = "own ref"

    @property
    def is_owned(self) -> bool:
        """True when the parent's deletion destroys the component."""
        return self is not Semantics.REF

    @property
    def is_object(self) -> bool:
        """True when the component is a first-class object with identity."""
        return self is not Semantics.OWN

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Type:
    """Abstract base for all EXTRA types.

    Concrete types implement :meth:`accepts` (does a raw Python value
    conform?) and :meth:`is_assignable_from` (static compatibility between
    types, used by the EXCESS binder).
    """

    #: short structural tag, e.g. "int4" or "tuple"; set by subclasses
    tag: str = "type"

    def accepts(self, value: Any) -> bool:
        """Return True when the raw Python ``value`` conforms to this type."""
        raise NotImplementedError

    def is_assignable_from(self, other: "Type") -> bool:
        """Return True when a value of type ``other`` may be stored in a
        slot of this type (used for static checking of appends/replaces)."""
        return self == other

    def coerce(self, value: Any) -> Any:
        """Normalize a conforming raw value into canonical stored form.

        Raises :class:`TypeSystemError` when the value does not conform.
        """
        if not self.accepts(value):
            raise TypeSystemError(f"value {value!r} does not conform to {self}")
        return value

    def describe(self) -> str:
        """Human-readable rendering used in error messages and catalogs."""
        return self.tag

    def __str__(self) -> str:
        return self.describe()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.describe()}>"


class BaseType(Type):
    """Marker superclass for the predefined scalar base types."""


@dataclass(frozen=True)
class IntegerType(BaseType):
    """A signed integer of ``size`` bytes (paper: int1, int2, int4)."""

    size: int = 4

    def __post_init__(self) -> None:
        if self.size not in (1, 2, 4, 8):
            raise TypeSystemError(f"unsupported integer size {self.size}")

    @property
    def tag(self) -> str:  # type: ignore[override]
        return f"int{self.size}"

    @property
    def min_value(self) -> int:
        """Smallest representable value."""
        return -(1 << (8 * self.size - 1))

    @property
    def max_value(self) -> int:
        """Largest representable value."""
        return (1 << (8 * self.size - 1)) - 1

    def accepts(self, value: Any) -> bool:
        return (
            isinstance(value, int)
            and not isinstance(value, bool)
            and self.min_value <= value <= self.max_value
        )

    def is_assignable_from(self, other: Type) -> bool:
        return isinstance(other, IntegerType) and other.size <= self.size


@dataclass(frozen=True)
class FloatType(BaseType):
    """An IEEE float of ``size`` bytes (paper: single/double precision)."""

    size: int = 8

    def __post_init__(self) -> None:
        if self.size not in (4, 8):
            raise TypeSystemError(f"unsupported float size {self.size}")

    @property
    def tag(self) -> str:  # type: ignore[override]
        return f"float{self.size}"

    def accepts(self, value: Any) -> bool:
        return isinstance(value, (int, float)) and not isinstance(value, bool)

    def coerce(self, value: Any) -> Any:
        if not self.accepts(value):
            raise TypeSystemError(f"value {value!r} does not conform to {self}")
        return float(value)

    def is_assignable_from(self, other: Type) -> bool:
        if isinstance(other, FloatType):
            return other.size <= self.size
        return isinstance(other, IntegerType)


@dataclass(frozen=True)
class BooleanType(BaseType):
    """The boolean base type."""

    tag = "boolean"

    def accepts(self, value: Any) -> bool:
        return isinstance(value, bool)


@dataclass(frozen=True)
class CharType(BaseType):
    """A fixed-capacity character string, ``char(n)``.

    Stored values are plain Python strings of length at most ``length``
    (we do not blank-pad; capacity is enforced, matching the intent of the
    paper's ``char[20]`` attributes without imposing padding artifacts).
    """

    length: int = 1

    def __post_init__(self) -> None:
        if self.length < 1:
            raise TypeSystemError(f"char length must be positive, got {self.length}")

    @property
    def tag(self) -> str:  # type: ignore[override]
        return f"char({self.length})"

    def accepts(self, value: Any) -> bool:
        return isinstance(value, str) and len(value) <= self.length

    def is_assignable_from(self, other: Type) -> bool:
        if isinstance(other, CharType):
            return other.length <= self.length
        return False


@dataclass(frozen=True)
class TextType(BaseType):
    """An unbounded character string (variable-length text)."""

    tag = "text"

    def accepts(self, value: Any) -> bool:
        return isinstance(value, str)

    def is_assignable_from(self, other: Type) -> bool:
        return isinstance(other, (TextType, CharType))


@dataclass(frozen=True)
class EnumType(BaseType):
    """An enumeration over a fixed set of string labels.

    The paper lists enumerations among EXTRA's predefined base types;
    values are the labels themselves and compare by declaration order.
    """

    labels: tuple[str, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        if not self.labels:
            raise TypeSystemError("enumeration requires at least one label")
        if len(set(self.labels)) != len(self.labels):
            raise TypeSystemError("enumeration labels must be distinct")

    @property
    def tag(self) -> str:  # type: ignore[override]
        if self.name:
            return f"enum {self.name}"
        return "enum(" + ", ".join(self.labels) + ")"

    def accepts(self, value: Any) -> bool:
        return isinstance(value, str) and value in self.labels

    def ordinal(self, label: str) -> int:
        """Position of ``label`` in declaration order (for comparisons)."""
        try:
            return self.labels.index(label)
        except ValueError:
            raise TypeSystemError(f"{label!r} is not a label of {self}") from None


@dataclass(frozen=True)
class AdtType(Type):
    """An abstract data type added through the ADT facility (paper §4.1).

    In EXODUS, ADTs are written in the E language; here the implementation
    language is Python. ``py_class`` is the class whose instances carry the
    ADT's representation; conformance is an ``isinstance`` check plus an
    optional extra ``validator``. The ADT's functions and operators are
    held by the :class:`repro.adt.registry.AdtRegistry`, not by the type
    object, mirroring the paper's separation between a type and the
    tabular optimizer/function information about it.
    """

    name: str
    py_class: type
    validator: Optional[Callable[[Any], bool]] = field(default=None, compare=False)

    @property
    def tag(self) -> str:  # type: ignore[override]
        return self.name

    def accepts(self, value: Any) -> bool:
        if not isinstance(value, self.py_class):
            return False
        if self.validator is not None:
            return bool(self.validator(value))
        return True

    def is_assignable_from(self, other: Type) -> bool:
        return isinstance(other, AdtType) and other.name == self.name


@dataclass(frozen=True)
class ComponentSpec:
    """A component declaration: value semantics plus a component type.

    Used uniformly for tuple attributes, set elements, and array elements,
    e.g. ``own ref Person`` in ``kids: { own ref Person }``. ``REF`` and
    ``OWN_REF`` semantics require the component type to be an identity-
    bearing tuple type (only first-class objects can be referenced).
    """

    semantics: Semantics
    type: Type

    def __post_init__(self) -> None:
        if self.semantics.is_object and not isinstance(self.type, TupleType):
            raise TypeSystemError(
                f"{self.semantics} components must have a tuple (schema) type, "
                f"got {self.type}"
            )

    def describe(self) -> str:
        """Render as it would appear in a ``define type`` statement."""
        if self.semantics is Semantics.OWN:
            return self.type.describe()
        return f"{self.semantics} {self.type.describe()}"

    def __str__(self) -> str:
        return self.describe()


class TupleType(Type):
    """The tuple type constructor.

    An ordered mapping from attribute names to :class:`ComponentSpec`.
    Anonymous tuple types are legal anywhere a type may appear; *named*
    tuple types (schema types, created with ``define type``) are modelled
    by :class:`repro.core.schema.SchemaType`, a subclass that adds the
    inheritance lattice.
    """

    tag = "tuple"

    def __init__(self, attributes: Sequence[tuple[str, ComponentSpec]]):
        names = [name for name, _ in attributes]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise TypeSystemError(f"duplicate attribute names: {', '.join(dupes)}")
        self._attributes: dict[str, ComponentSpec] = dict(attributes)

    @property
    def attributes(self) -> dict[str, ComponentSpec]:
        """Attribute name → component spec, in declaration order."""
        return dict(self._attributes)

    def attribute(self, name: str) -> ComponentSpec:
        """Look up one attribute; raises :class:`TypeSystemError` if absent."""
        try:
            return self._attributes[name]
        except KeyError:
            raise TypeSystemError(
                f"type {self.describe()} has no attribute {name!r}"
            ) from None

    def has_attribute(self, name: str) -> bool:
        """True when ``name`` is an attribute of this tuple type."""
        return name in self._attributes

    def attribute_names(self) -> list[str]:
        """Attribute names in declaration order."""
        return list(self._attributes)

    def __iter__(self) -> Iterator[tuple[str, ComponentSpec]]:
        return iter(self._attributes.items())

    def accepts(self, value: Any) -> bool:
        # Raw conformance is handled by values.TupleInstance construction;
        # a bare dict with exactly the right keys also conforms.
        from repro.core.values import TupleInstance

        if isinstance(value, TupleInstance):
            return value.type is self or self.is_assignable_from(value.type)
        if isinstance(value, dict):
            return set(value) <= set(self._attributes)
        return False

    def is_assignable_from(self, other: Type) -> bool:
        if other is self:
            return True
        if not isinstance(other, TupleType):
            return False
        # Structural compatibility for anonymous tuples; schema types
        # override this with lattice-based (nominal) subtyping.
        if set(self._attributes) != set(other._attributes):
            return False
        return all(
            spec.semantics == other._attributes[name].semantics
            and spec.type.is_assignable_from(other._attributes[name].type)
            for name, spec in self._attributes.items()
        )

    def describe(self) -> str:
        inner = ", ".join(
            f"{name}: {spec.describe()}" for name, spec in self._attributes.items()
        )
        return f"({inner})"

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if type(other) is not TupleType:
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(tuple(self._attributes.items()))


class SetType(Type):
    """The set type constructor, ``{ <component-spec> }``.

    Sets are the collections queried by EXCESS. A set instance may carry a
    **key** (paper §2.2: "we also intend to support keys, the
    specification of which will be associated with set instances"); the
    key lives on the instance, not the type, so it is declared at
    ``create`` time — see :class:`repro.core.values.SetInstance`.
    """

    tag = "set"

    def __init__(self, element: ComponentSpec):
        self.element = element

    def accepts(self, value: Any) -> bool:
        from repro.core.values import SetInstance

        return isinstance(value, SetInstance) and self.is_assignable_from(value.type)

    def is_assignable_from(self, other: Type) -> bool:
        if not isinstance(other, SetType):
            return False
        return (
            self.element.semantics == other.element.semantics
            and self.element.type.is_assignable_from(other.element.type)
        )

    def describe(self) -> str:
        return "{" + self.element.describe() + "}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SetType):
            return NotImplemented
        return self.element == other.element

    def __hash__(self) -> int:
        return hash(("set", self.element))


class ArrayType(Type):
    """The array type constructors.

    ``length`` is an ``int`` for fixed-length arrays (``[10] ref Employee``)
    and ``None`` for variable-length arrays (``[] own Quantity``). Array
    indexing in EXCESS is 1-based, following the paper's ``TopTen [1]``.
    """

    def __init__(self, element: ComponentSpec, length: Optional[int] = None):
        if length is not None and length < 1:
            raise TypeSystemError(f"array length must be positive, got {length}")
        self.element = element
        self.length = length

    @property
    def tag(self) -> str:  # type: ignore[override]
        return "array" if self.length is None else f"array[{self.length}]"

    @property
    def is_fixed(self) -> bool:
        """True for fixed-length arrays."""
        return self.length is not None

    def accepts(self, value: Any) -> bool:
        from repro.core.values import ArrayInstance

        return isinstance(value, ArrayInstance) and self.is_assignable_from(value.type)

    def is_assignable_from(self, other: Type) -> bool:
        if not isinstance(other, ArrayType):
            return False
        if self.length is not None and other.length != self.length:
            return False
        return (
            self.element.semantics == other.element.semantics
            and self.element.type.is_assignable_from(other.element.type)
        )

    def describe(self) -> str:
        bracket = "[]" if self.length is None else f"[{self.length}]"
        return f"{bracket} {self.element.describe()}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArrayType):
            return NotImplemented
        return self.element == other.element and self.length == other.length

    def __hash__(self) -> int:
        return hash(("array", self.element, self.length))


# ---------------------------------------------------------------------------
# Singleton instances of the predefined base types, and small constructors.
# ---------------------------------------------------------------------------

INT1 = IntegerType(1)
INT2 = IntegerType(2)
INT4 = IntegerType(4)
FLOAT4 = FloatType(4)
FLOAT8 = FloatType(8)
BOOLEAN = BooleanType()
TEXT = TextType()


def char(length: int) -> CharType:
    """Construct a ``char(length)`` type."""
    return CharType(length)


def enumeration(*labels: str, name: str = "") -> EnumType:
    """Construct an enumeration base type over ``labels``."""
    return EnumType(tuple(labels), name=name)


def own(component_type: Type) -> ComponentSpec:
    """Shorthand for an ``own`` component spec."""
    return ComponentSpec(Semantics.OWN, component_type)


def ref(component_type: Type) -> ComponentSpec:
    """Shorthand for a ``ref`` component spec."""
    return ComponentSpec(Semantics.REF, component_type)


def own_ref(component_type: Type) -> ComponentSpec:
    """Shorthand for an ``own ref`` component spec."""
    return ComponentSpec(Semantics.OWN_REF, component_type)


def is_numeric(t: Type) -> bool:
    """True for integer and float base types."""
    return isinstance(t, (IntegerType, FloatType))


def common_numeric_type(left: Type, right: Type) -> Type:
    """The result type of an arithmetic operation over two numeric types.

    Integer op integer widens to the larger integer; any float operand
    promotes the result to the wider float involved (mirroring QUEL).
    """
    if not (is_numeric(left) and is_numeric(right)):
        raise TypeSystemError(
            f"arithmetic requires numeric operands, got {left} and {right}"
        )
    if isinstance(left, FloatType) or isinstance(right, FloatType):
        size = max(
            left.size if isinstance(left, FloatType) else 4,
            right.size if isinstance(right, FloatType) else 4,
        )
        return FloatType(size)
    assert isinstance(left, IntegerType) and isinstance(right, IntegerType)
    return IntegerType(max(left.size, right.size))
