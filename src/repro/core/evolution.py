"""Schema evolution: altering types in place.

The paper's §6 defers this: "we will face type evolution issues at two
levels[:] for ADTs, and for EXTRA schema types". This module implements
the schema-type level as the paper's model implies it must work:

* adding an attribute to a type adds it to **every subtype** (the lattice
  stays consistent) and to every existing instance (new slots start null;
  own collections start empty);
* dropping an attribute removes it from the type, its subtypes, every
  instance, and any indexes over it;
* an addition that would collide with an attribute a subtype already has
  (locally or from another parent) is an inheritance conflict and aborts
  the whole alteration — nothing is partially applied.

Because :class:`~repro.core.schema.SchemaType` objects are shared (every
instance and component spec points at the same type object), evolution
re-runs type resolution *in place* on the existing objects, so all
references see the new shape atomically.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.schema import SchemaType
from repro.core.types import (
    ArrayType,
    ComponentSpec,
    Semantics,
    SetType,
)
from repro.core.values import (
    NULL,
    ArrayInstance,
    SetInstance,
    TupleInstance,
)
from repro.errors import SchemaError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.database import Database

__all__ = ["alter_type"]


def alter_type(
    database: "Database",
    name: str,
    adds: list[tuple[str, ComponentSpec]],
    drops: list[str],
) -> str:
    """Add and/or drop attributes of schema type ``name``.

    Returns a human-readable summary. Raises (leaving everything
    unchanged) when a drop names a non-local or unknown attribute, when a
    keyed set depends on a dropped attribute, or when an addition
    conflicts anywhere in the lattice.
    """
    catalog = database.catalog
    target = catalog.schema_type(name)
    local_names = set(target.local_attribute_names())
    for attribute in drops:
        if attribute not in local_names:
            raise SchemaError(
                f"cannot drop {name}.{attribute}: not a locally declared "
                "attribute (inherited attributes are dropped at their origin)"
            )
    _check_key_dependencies(database, target, drops)

    affected = [target] + catalog.subtypes_of(name)
    affected.sort(key=lambda t: len(t.ancestors()))  # parents first
    snapshots = [(t, dict(t.__dict__)) for t in affected]
    undo = database.objects.undo
    if undo is not None:
        # the snapshots taken for conflict rollback double as the
        # transaction's before-images of the shared type objects
        for schema_type, _state in snapshots:
            undo.save_object_dict(schema_type)
    try:
        for schema_type in affected:
            locals_list = _local_attributes(schema_type)
            if schema_type is target:
                locals_list = [
                    (a, s) for a, s in locals_list if a not in set(drops)
                ]
                locals_list += list(adds)
            SchemaType.__init__(
                schema_type,
                schema_type.name,
                locals_list,
                parents=schema_type.parents,
                renames=schema_type.renames,
            )
    except Exception:
        for schema_type, state in snapshots:
            schema_type.__dict__.clear()
            schema_type.__dict__.update(state)
        raise

    affected_names = {t.name for t in affected}
    patched = _patch_instances(database, affected_names, adds, drops)
    dropped_indexes = _drop_stale_indexes(database, affected_names, drops)
    added = ", ".join(a for a, _s in adds) or "-"
    removed = ", ".join(drops) or "-"
    return (
        f"altered type {name}: added [{added}], dropped [{removed}]; "
        f"{patched} instance(s) patched"
        + (f"; {dropped_indexes} index(es) dropped" if dropped_indexes else "")
    )


def _local_attributes(schema_type: SchemaType) -> list[tuple[str, ComponentSpec]]:
    """The locally declared attributes (name, spec) of a schema type."""
    return [
        (attribute, schema_type.attribute_origin(attribute).spec)
        for attribute in schema_type.local_attribute_names()
    ]


def _check_key_dependencies(
    database: "Database", target: SchemaType, drops: list[str]
) -> None:
    if not drops:
        return
    dropped = set(drops)
    for named_name in database.catalog.named_names():
        named = database.catalog.named(named_name)
        value = named.value
        if not isinstance(value, SetInstance) or not value.key:
            continue
        element = value.element.type
        if not isinstance(element, SchemaType):
            continue
        if element.name == target.name or element.is_subtype_of(target):
            overlap = dropped & set(value.key)
            if overlap:
                raise SchemaError(
                    f"cannot drop {', '.join(sorted(overlap))}: the key of "
                    f"set {named_name!r} depends on it"
                )


def _default_slot(spec: ComponentSpec) -> Any:
    """Initial slot value for a newly added attribute."""
    if spec.semantics is Semantics.OWN and isinstance(spec.type, SetType):
        return SetInstance(spec.type)
    if spec.semantics is Semantics.OWN and isinstance(spec.type, ArrayType):
        return ArrayInstance(spec.type)
    return NULL


def _patch_instances(
    database: "Database",
    affected_names: set[str],
    adds: list[tuple[str, ComponentSpec]],
    drops: list[str],
) -> int:
    """Bring every reachable instance of an affected type up to shape."""
    patched = 0
    seen: set[int] = set()
    undo = database.objects.undo

    def patch_tuple(instance: TupleInstance) -> None:
        nonlocal patched
        if id(instance) in seen:
            return
        seen.add(id(instance))
        if (
            isinstance(instance.type, SchemaType)
            and instance.type.name in affected_names
        ):
            if undo is not None and (adds or drops):
                undo.save_tuple(instance)
            changed = False
            for attribute, spec in adds:
                if attribute not in instance._slots:
                    instance._slots[attribute] = _default_slot(spec)
                    changed = True
            for attribute in drops:
                if instance._slots.pop(attribute, None) is not None:
                    changed = True
            if changed:
                patched += 1
        for value in list(instance._slots.values()):
            patch_value(value)

    def patch_value(value: Any) -> None:
        if isinstance(value, TupleInstance):
            patch_tuple(value)
        elif isinstance(value, (SetInstance, ArrayInstance)):
            for member in value:
                if isinstance(member, TupleInstance):
                    patch_tuple(member)

    for oid in list(database.objects.oids()):
        patch_tuple(database.objects.fetch(oid))
        database.objects.mark_dirty(oid)
    for named_name in database.catalog.named_names():
        patch_value(database.catalog.named(named_name).value)
    return patched


def _drop_stale_indexes(
    database: "Database", affected_names: set[str], drops: list[str]
) -> int:
    if not drops:
        return 0
    dropped = 0
    for descriptor in list(database.catalog.indexes.all_indexes()):
        if descriptor.attribute not in drops:
            continue
        named = database.catalog.named(descriptor.set_name)
        element = named.value.element.type if isinstance(
            named.value, (SetInstance, ArrayInstance)
        ) else None
        if isinstance(element, SchemaType) and element.name in affected_names:
            database.catalog.indexes.drop(
                descriptor.set_name, descriptor.attribute, descriptor.kind
            )
            dropped += 1
    return dropped
