"""Per-session transaction contexts and MVCC snapshot isolation.

The seed engine held all mutable per-session state — the open
transaction, ``session_ranges``, the current user — directly on
:class:`~repro.core.database.Database` and the interpreter, so only one
logical session could exist. This module factors that state into
:class:`SessionContext` objects and builds multi-session **snapshot
isolation** on top, using the bidirectional swap records of
:mod:`repro.core.undo`:

Workspace parking
    Statements execute one at a time (the server serializes them), and
    at most one open transaction's uncommitted writes are applied to
    the live database: the executing session's. When another session
    runs a statement, the manager **parks** the previous transaction's
    workspace (applies its swap records once, reversed — live state
    returns to begin-time) and **resumes** it later (applies them
    forward once). Each swap is O(state touched by that transaction).

Version log
    When a transaction commits while other transactions remain open,
    its swap records — stamped with a commit timestamp — are retained
    as one :class:`_VersionEntry`. A reader whose snapshot predates the
    entry *rewinds* it (swap out, newest first) around each of its
    statements, reconstructing the database exactly as of its
    snapshot, then rolls it forward (oldest first) afterwards.

Conflict detection (first-committer-wins)
    Writes are validated at two points. Eagerly: the undo log's
    ``on_first_touch`` hook fires before a container is first mutated;
    if a committed version newer than the transaction's snapshot
    already touched that container, the write raises
    :class:`~repro.errors.SerializationError` before mutating anything
    (this also guarantees a transaction's workspace never overlaps the
    version entries it rewinds, which is what makes rewinding sound).
    At commit: the write set is validated against versions committed
    after the snapshot, and every *other* open transaction whose write
    set intersects the committing one is marked **doomed** — it can
    only abort, never resume (its parked before-images are stale).

Ablation
    ``Database.isolation_mode = "none"`` disables parking, versioning
    and conflict detection: sessions share one global transaction slot
    exactly like the seed (last-writer-wins chaos, kept measurable).
    ``transaction_mode = "pickle"`` keeps the seed's snapshot
    transactions; those cannot be parked, so only one session may hold
    one open.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator, Optional

from repro.errors import IntegrityError, SerializationError
from repro.util import faultinject

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.database import Database
    from repro.core.undo import UndoLog

__all__ = ["SessionContext", "Transaction", "TransactionManager"]

# Commit-path crash points (see util.faultinject): between write-set
# validation and the WAL append there are three distinct windows a
# process kill must leave recoverable.
faultinject.register("txn.commit.before_validate")
faultinject.register("txn.commit.after_validate")
faultinject.register("txn.commit.publish")


class Transaction:
    """One open transaction: a snapshot timestamp plus a workspace."""

    __slots__ = ("txn_id", "snapshot_ts", "mode", "undo", "payload",
                 "explicit", "doomed")

    def __init__(
        self,
        txn_id: int,
        snapshot_ts: int,
        mode: str,
        undo: Optional["UndoLog"] = None,
        payload: Optional[bytes] = None,
        explicit: bool = True,
    ):
        self.txn_id = txn_id
        #: commit-clock value at begin; this transaction sees exactly
        #: the versions with ``commit_ts <= snapshot_ts`` plus its own
        self.snapshot_ts = snapshot_ts
        self.mode = mode  # "undo" | "pickle"
        self.undo = undo
        self.payload = payload  # pickle-mode whole-state snapshot
        self.explicit = explicit
        #: non-None once this transaction lost a conflict; it may only
        #: abort (its parked workspace is stale against newer commits)
        self.doomed: Optional[str] = None


class SessionContext:
    """All mutable per-session state: user, range declarations, flag
    overrides, and the open transaction."""

    def __init__(self, database: "Database", user: str, session_id: int,
                 name: Optional[str] = None, is_default: bool = False):
        self.db = database
        self.user = user
        self.id = session_id
        self.name = name or f"s{session_id}"
        #: the default session backs the single-session Python API
        #: (``db.execute``, ``db.begin``); its range declarations are
        #: shared engine-wide exactly like the seed's, so its plan-cache
        #: token stays empty outside transactions (full back-compat)
        self.is_default = is_default
        #: per-session EXCESS range declarations (``range of e is ...``)
        self.ranges: dict[str, Any] = {}
        #: bumped whenever a range is (re)declared; part of the plan
        #: cache key so re-declaring a range can never serve stale plans
        self.ranges_epoch = 0
        #: per-session ablation/flag overrides (``optimize``,
        #: ``compile_mode``, ``exec_mode``, ``batch_size``, ...);
        #: unset keys inherit the interpreter's global attribute
        self.overrides: dict[str, Any] = {}
        self.txn: Optional[Transaction] = None
        self.closed = False

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        txn = f" txn={self.txn.txn_id}" if self.txn else ""
        return f"<SessionContext {self.name} user={self.user!r}{txn}>"

    # -- flags -------------------------------------------------------------

    def flag(self, attribute: str) -> Any:
        """Resolve a session flag: the override if set, else the
        interpreter's global attribute."""
        if attribute in self.overrides:
            return self.overrides[attribute]
        return getattr(self.db.interpreter, attribute)

    # -- statement execution ----------------------------------------------

    def execute(self, text: str) -> Any:
        """Run EXCESS statements in this session (as this user, against
        this session's snapshot)."""
        return self.db.interpreter.execute(text, user=self.user, session=self)

    # -- transaction control ----------------------------------------------

    def begin(self) -> None:
        """Open a transaction in this session."""
        self.db.transactions.begin(self)

    def commit(self) -> None:
        """Commit this session's transaction (first-committer-wins)."""
        self.db.transactions.commit(self)

    def abort(self) -> None:
        """Abort this session's transaction."""
        self.db.transactions.abort(self)

    @property
    def in_transaction(self) -> bool:
        """True while this session has an open transaction."""
        return self.txn is not None

    def close(self) -> None:
        """End the session, aborting any open transaction."""
        if self.closed:
            return
        if self.txn is not None:
            try:
                self.db.transactions.abort(self)
            except IntegrityError:  # pragma: no cover - defensive
                pass
        self.closed = True
        self.db.transactions.forget(self)

    # -- plan-cache identity ----------------------------------------------

    def plan_token(self) -> tuple:
        """The part of the plan-cache key contributed by session state.

        Sessions with no private range declarations, no open
        transaction, and no flag overrides share the same (empty) token
        and therefore cache entries. An open transaction always splits
        the key: plans bound against a transaction's uncommitted
        catalog must never be served to other sessions (nor survive
        it). The default session's ranges are engine-shared and
        invalidate via the global catalog epoch, so they contribute
        nothing — keeping its keys identical to the seed's.
        """
        ranges = (
            None if (self.is_default or not self.ranges)
            else (self.id, self.ranges_epoch)
        )
        txn_id = self.txn.txn_id if self.txn is not None else None
        overrides = tuple(sorted(self.overrides.items())) if self.overrides else None
        if ranges is None and txn_id is None and overrides is None:
            return ()
        return (ranges, txn_id, overrides)


class _VersionEntry:
    """One committed transaction retained for snapshot readers."""

    __slots__ = ("commit_ts", "txn_id", "keys", "undo")

    def __init__(self, commit_ts: int, txn_id: int, keys: frozenset,
                 undo: "UndoLog"):
        self.commit_ts = commit_ts
        self.txn_id = txn_id
        self.keys = keys
        self.undo = undo

    def rewind(self) -> None:
        """Swap this commit *out* of the live database."""
        self.undo.park()

    def roll_forward(self) -> None:
        """Swap this commit back *in*."""
        self.undo.resume()


class TransactionManager:
    """Owns the commit clock, the version log, and workspace parking.

    One per :class:`Database`; never pickled (undo workspaces do not
    survive snapshots, so a loaded database starts a fresh manager).
    """

    def __init__(self, database: "Database"):
        self.db = database
        #: monotonically increasing commit timestamp; snapshots are
        #: clock values, versions are stamped with post-increment reads
        self.clock = 0
        self._next_txn = 1
        self._next_session = 1
        #: live sessions by id (the default session included)
        self.sessions: dict[int, SessionContext] = {}
        #: the transaction whose workspace is applied to live state
        #: (None when every open transaction is parked)
        self.applied: Optional[Transaction] = None
        #: committed versions retained for open snapshot readers,
        #: oldest first
        self.versions: list[_VersionEntry] = []
        #: statement-wrapper reentrancy depth (nested execute calls —
        #: procedure bodies, recovery replay — run inside the outer
        #: statement's snapshot window)
        self._depth = 0

    # -- sessions ----------------------------------------------------------

    def create_session(
        self, user: str, name: Optional[str] = None, is_default: bool = False
    ) -> SessionContext:
        """Register a new session."""
        session = SessionContext(
            self.db, user, self._next_session, name, is_default=is_default
        )
        self._next_session += 1
        self.sessions[session.id] = session
        return session

    def forget(self, session: SessionContext) -> None:
        """Drop a closed session from the registry."""
        self.sessions.pop(session.id, None)
        self._gc_versions()

    def _others_with_open_txn(self, session: SessionContext) -> list[Transaction]:
        return [
            s.txn
            for s in self.sessions.values()
            if s is not session and s.txn is not None
        ]

    @property
    def mvcc(self) -> bool:
        """True when snapshot isolation is active (the ablation flag
        ``Database.isolation_mode`` can turn it off)."""
        return self.db.isolation_mode == "mvcc"

    # -- parking -----------------------------------------------------------

    def activate(self, session: SessionContext) -> None:
        """Make ``session``'s workspace (if any) the applied one,
        parking whichever other transaction currently holds live state."""
        if not self.mvcc:
            return
        txn = session.txn
        if self.applied is txn and (txn is None or not txn.undo.parked):
            return
        if self.applied is not None and self.applied is not txn:
            parked = self.applied
            self.applied = None
            self.db._detach_undo()
            parked.undo.park()
        if txn is not None and txn.mode == "undo" and txn.doomed is None:
            txn.undo.resume()
            self.db._attach_undo(txn.undo)
            self.applied = txn

    # -- the per-statement snapshot window ---------------------------------

    @contextmanager
    def statement(self, session: SessionContext,
                  kind: str = "write") -> Iterator[None]:
        """Run one statement under ``session``'s snapshot.

        Parks any other session's workspace, resumes this session's,
        rewinds committed versions newer than the snapshot, and — when
        another transaction is open elsewhere — wraps a bare mutating
        statement in an implicit transaction so its effects become a
        version entry that open snapshot readers can rewind. With no
        concurrent transactions this is a handful of attribute checks.

        ``kind`` is the interpreter's statement classification:
        ``"control"`` (begin/commit/abort — manage transactions
        themselves, so no implicit transaction and no rewinding),
        ``"read"`` (needs the snapshot but never an implicit
        transaction), or ``"write"`` (the full treatment).
        """
        if not self.mvcc or self._depth > 0:
            self._depth += 1
            try:
                yield
            finally:
                self._depth -= 1
            return
        if kind == "control":
            # begin/commit/abort do their own workspace management
            self._depth += 1
            try:
                yield
            finally:
                self._depth -= 1
            return
        self._depth += 1
        implicit = False
        rewound: list[_VersionEntry] = []
        try:
            self.activate(session)
            txn = session.txn
            if txn is None and kind == "write" and self._needs_versioning(session):
                self.begin(session, explicit=False)
                implicit = True
                txn = session.txn
            if txn is not None and txn.mode == "undo" and self.versions:
                snapshot = txn.snapshot_ts
                for entry in reversed(self.versions):
                    if entry.commit_ts > snapshot:
                        entry.rewind()
                        rewound.append(entry)  # newest first
            try:
                yield
            finally:
                for entry in reversed(rewound):  # oldest first
                    entry.roll_forward()
                rewound = []
            if implicit:
                self.commit(session)
                implicit = False
        finally:
            self._depth -= 1
            if implicit and session.txn is not None:
                # the statement (or its commit) failed: discard the
                # implicit transaction so the failure leaves no residue
                try:
                    self.abort(session)
                except IntegrityError:  # pragma: no cover - defensive
                    pass

    def _needs_versioning(self, session: SessionContext) -> bool:
        """True when another session holds an open undo-mode
        transaction, so this session's writes must be versioned for it."""
        return any(
            t.mode == "undo" and t.doomed is None
            for t in self._others_with_open_txn(session)
        )

    # -- begin / commit / abort --------------------------------------------

    def begin(self, session: SessionContext, explicit: bool = True) -> None:
        """Open a transaction in ``session``."""
        if session.txn is not None:
            raise IntegrityError("a transaction is already open")
        if self.db.transaction_mode == "pickle":
            if self._others_with_open_txn(session):
                raise IntegrityError(
                    "pickle transaction_mode supports one open transaction; "
                    "use the default undo mode for multi-session work"
                )
            if getattr(self.db.store, "store_mode", None) == "file":
                # pickle-mode abort restores an old extent table whose
                # shadow blocks may since have been rewritten in place
                raise IntegrityError(
                    "pickle transaction_mode is incompatible with the "
                    "file-backed page store; use the default undo mode"
                )
            import pickle

            session.txn = Transaction(
                self._next_txn,
                self.clock,
                "pickle",
                payload=pickle.dumps(self.db, protocol=pickle.HIGHEST_PROTOCOL),
                explicit=explicit,
            )
            self._next_txn += 1
            return
        from repro.core.undo import UndoLog

        if self.mvcc:
            self.activate(session)  # park any other applied workspace
        undo = UndoLog(self.db)
        txn = Transaction(
            self._next_txn, self.clock, "undo", undo=undo, explicit=explicit
        )
        self._next_txn += 1
        if self.mvcc:
            undo.on_first_touch = self._first_touch_check(txn)
        session.txn = txn
        self.db._attach_undo(undo)
        self.applied = txn

    def _first_touch_check(self, txn: Transaction):
        """The eager first-updater-wins hook installed on a
        transaction's undo log: raises before the first mutation of any
        container a newer committed version already touched."""

        def check(key: tuple) -> None:
            for entry in self.versions:
                if entry.commit_ts > txn.snapshot_ts and key in entry.keys:
                    txn.doomed = (
                        f"write-write conflict on {key!r}: transaction "
                        f"{entry.txn_id} committed after this snapshot"
                    )
                    raise SerializationError(
                        f"transaction {txn.txn_id} aborted: {txn.doomed}"
                    )

        return check

    def commit(self, session: SessionContext) -> None:
        """Commit ``session``'s transaction.

        Order of operations: validate the write set against versions
        committed after the snapshot (first-committer-wins), doom
        overlapping open transactions, stamp and retain the version
        entry, then append the durable commit record. Crash points mark
        each window.
        """
        txn = session.txn
        if txn is None:
            raise IntegrityError("no transaction is open")
        if txn.mode == "pickle":
            session.txn = None
            txn.payload = None
            if self.db.durability is not None:
                self.db.durability.on_commit(session, txn_id=txn.txn_id)
            return
        if txn.doomed is not None:
            reason = txn.doomed
            self.abort(session)
            raise SerializationError(f"transaction {txn.txn_id} aborted: {reason}")
        if self.mvcc:
            self.activate(session)  # ensure the workspace is applied
        undo = txn.undo
        faultinject.crash_point("txn.commit.before_validate")
        write_set = undo.write_set()
        if self.mvcc:
            for entry in self.versions:
                if entry.commit_ts > txn.snapshot_ts and entry.keys & write_set:
                    overlap = sorted(map(repr, entry.keys & write_set))[0]
                    self.abort(session)
                    raise SerializationError(
                        f"transaction {txn.txn_id} aborted: write-write "
                        f"conflict on {overlap} with transaction "
                        f"{entry.txn_id} (first committer wins)"
                    )
        faultinject.crash_point("txn.commit.after_validate")
        undo.on_first_touch = None
        self.db._detach_undo()
        if self.applied is txn:
            self.applied = None
        session.txn = None
        self.clock += 1
        commit_ts = self.clock
        if self.mvcc and write_set:
            # first-committer-wins: every other open transaction that
            # wrote an intersecting container can no longer commit (and
            # its parked before-images are stale, so it may not resume)
            for other in self._others_with_open_txn(session):
                if (
                    other.mode == "undo"
                    and other.doomed is None
                    and other.undo.write_set() & write_set
                ):
                    other.doomed = (
                        f"write-write conflict: transaction {txn.txn_id} "
                        "committed an overlapping write set first"
                    )
        readers = [
            t for t in self._others_with_open_txn(session)
            if t.mode == "undo" and t.doomed is None
        ]
        retained = False
        if readers and undo.records:
            if undo.resumable:
                self.versions.append(
                    _VersionEntry(commit_ts, txn.txn_id, frozenset(write_set), undo)
                )
                retained = True
            else:  # pragma: no cover - every mutation site records a redo
                for other in readers:
                    other.doomed = (
                        "a non-resumable commit could not be versioned"
                    )
        if not retained:
            # the log dies here; an evicting object cache may release
            # the residency pins its closures held
            undo.release_pins()
        faultinject.crash_point("txn.commit.publish")
        # Other sessions' caches (plans, memoized hash builds) may hold
        # state computed against the pre-commit database: move the data
        # version (always, for write transactions) and the catalog epoch
        # (when the catalog changed) so they can never be served stale.
        if undo.records:
            self.db.data_version += 1
        if undo.catalog_touched:
            self.db.catalog.bump_epoch()
        if self.db.durability is not None:
            self.db.durability.on_commit(session, txn_id=txn.txn_id)
        self._gc_versions()

    def abort(self, session: SessionContext) -> None:
        """Abort ``session``'s transaction, discarding its workspace."""
        txn = session.txn
        if txn is None:
            raise IntegrityError("no transaction is open")
        seen_epoch = self.db.catalog.epoch
        seen_version = self.db.data_version
        session.txn = None
        if txn.mode == "pickle":
            import pickle

            restored = pickle.loads(txn.payload)
            interpreter = self.db._interpreter  # keep session state
            manager = self.db.__dict__.get("_transactions")
            self.db.__dict__.update(restored.__dict__)
            self.db._interpreter = interpreter
            if manager is not None:
                self.db.__dict__["_transactions"] = manager
        elif self.applied is txn:
            self.applied = None
            self.db._detach_undo()
            txn.undo.rollback()
        elif txn.undo.parked or txn.doomed is not None:
            # the workspace is swapped out of live state (or stale):
            # discarding the log *is* the abort
            txn.undo.release_pins()
        else:
            # isolation_mode "none": the log may be attached without
            # parking bookkeeping
            self.db._detach_undo()
            txn.undo.rollback()
        # Force the catalog epoch and data version past every value
        # observed during the transaction: plans and memoized builds
        # cached against rolled-back state must never be served again.
        self.db.catalog._epoch = max(self.db.catalog.epoch, seen_epoch) + 1
        self.db.data_version = max(self.db.data_version, seen_version) + 1
        if self.db.durability is not None:
            self.db.durability.on_abort(session)
        self._gc_versions()

    # -- diagnostics -------------------------------------------------------

    def introspect(self) -> dict:
        """A leak-detection snapshot for tests and chaos harnesses:
        session/transaction/version counts plus whether any workspace
        is applied or parked. A quiesced engine (no open transactions)
        must show zero open transactions, zero parked workspaces, an
        empty version log, and no applied workspace."""
        open_txns = [
            s.txn for s in self.sessions.values() if s.txn is not None
        ]
        return {
            "sessions": len(self.sessions),
            "open_transactions": len(open_txns),
            "doomed_transactions": sum(
                1 for t in open_txns if t.doomed is not None
            ),
            "parked_workspaces": sum(
                1 for t in open_txns
                if t.mode == "undo" and t.undo is not None and t.undo.parked
            ),
            "version_entries": len(self.versions),
            "applied": self.applied is not None,
        }

    # -- version-log garbage collection ------------------------------------

    def _gc_versions(self) -> None:
        """Drop version entries no open snapshot can still rewind."""
        if not self.versions:
            return
        snapshots = [
            s.txn.snapshot_ts
            for s in self.sessions.values()
            if s.txn is not None and s.txn.mode == "undo" and s.txn.doomed is None
        ]
        if not snapshots:
            for entry in self.versions:
                entry.undo.release_pins()
            self.versions.clear()
            return
        horizon = min(snapshots)
        if self.versions and self.versions[0].commit_ts <= horizon:
            kept = []
            for entry in self.versions:
                if entry.commit_ts > horizon:
                    kept.append(entry)
                else:
                    entry.undo.release_pins()
            self.versions = kept
