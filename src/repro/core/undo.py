"""Incremental undo logging and version workspaces for transactions.

Replaces the seed's whole-database pickle with per-mutation **swap
records**: ``Database.begin()`` opens an :class:`UndoLog` and attaches
it to every manager that can mutate durable state (object table,
catalog, statistics, indexes, authorization); each mutation site records
either

* a **before-image** — a copy-on-first-touch snapshot of the container
  it is about to change (a tuple's slot dict, a set's member list, an
  array's slot list, one set's :class:`SetStats`, a named object's
  value binding, one cardinality counter), deduplicated per container
  so a transaction touching one object a thousand times saves it once;
  or
* a **structural toggle** — an inverse/redo closure pair undoing (and
  re-doing) a structural change (object registered → unregister it,
  object deleted → re-insert its record, ownership claimed → restore
  prior owner, index entry added → remove it, grant added → discard
  it, …).

Every record is **bidirectional**: applying it exchanges the live state
of its container with the stored image, so applying it twice is the
identity. That single property is what multi-session MVCC
(:mod:`repro.core.session`) builds on:

* ``rollback()`` applies every record newest-first once — abort, exactly
  as before, at O(state touched) cost;
* ``park()`` / ``resume()`` swap a transaction's *entire uncommitted
  workspace* out of and back into the live database, so sessions with
  open transactions can interleave statements without ever seeing each
  other's uncommitted writes;
* after commit the same records, stamped with a commit timestamp,
  become one link of the **version chain** a snapshot reader rewinds
  through to reconstruct the database as of its snapshot.

Each data-bearing record also carries a **write-set key** (container
identity), giving commit-time first-committer-wins conflict detection
its write sets for free. Statistics and cardinality records are
bookkeeping, not data, and are excluded from the write set.

The pickle path survives behind ``Database.transaction_mode = "pickle"``
as an ablation/equivalence baseline.
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.core.values import ArrayInstance, SetInstance, TupleInstance

__all__ = ["UndoLog"]

#: sentinel distinguishing "key was absent" from "key held None"
_ABSENT = object()


class _SwapRecord:
    """One bidirectional undo record.

    ``swap`` exchanges the live state of the record's container with the
    stored image (calling it twice is the identity). ``key`` is the
    container's write-set identity for conflict detection, or ``None``
    for bookkeeping records (statistics, cardinalities, index entries
    already covered by their set's member-list key).
    """

    __slots__ = ("swap", "key")

    def __init__(self, swap: Callable[[], None], key: Optional[tuple]):
        self.swap = swap
        self.key = key


class UndoLog:
    """The swap-record log of one open transaction."""

    def __init__(self, database: Any):
        self.db = database
        #: swap records in recording order; rollback applies them reversed
        self._records: list[_SwapRecord] = []
        #: dedup keys of containers whose before-image is already saved
        self._seen: set = set()
        #: strong refs keeping id()-keyed containers alive for the txn
        #: (and for the committed version entry grown from this log)
        self._keepalive: list = []
        #: OIDs whose live instances were touched (re-serialized on every
        #: workspace swap so paged stores pick the restored slots up)
        self._dirty_oids: set[int] = set()
        #: OIDs pinned against live-cache eviction while this log (or the
        #: version entry grown from it) references their instances
        self._pinned: set[int] = set()
        #: total records, for diagnostics
        self.records = 0
        #: False once a record without a redo closure is added; such a
        #: log can still roll back but can never be parked or resumed
        self.resumable = True
        #: True once a catalog registry (types, named objects, functions,
        #: procedures, indexes, owners) was touched — commit then bumps
        #: the catalog epoch so other sessions' cached plans re-bind
        self.catalog_touched = False
        #: True while the workspace is swapped out of the live database
        self.parked = False
        #: optional hook called with each data write-set key on first
        #: touch (the MVCC manager uses it for eager first-updater-wins
        #: conflict checks); raising from it prevents the mutation
        self.on_first_touch: Optional[Callable[[tuple], None]] = None

    # -- recording ---------------------------------------------------------

    def _add(self, swap: Callable[[], None], key: Optional[tuple]) -> None:
        self._records.append(_SwapRecord(swap, key))
        self.records += 1

    def op(
        self,
        inverse: Callable[[], None],
        redo: Optional[Callable[[], None]] = None,
        key: Optional[tuple] = None,
    ) -> None:
        """Record one structural change as an inverse/redo toggle.

        ``inverse`` must undo the change the caller is about to make (or
        just made); ``redo`` must re-apply it. Without a redo the log
        stays rollback-only (``resumable`` turns False), which is enough
        for single-session transactions but blocks MVCC parking.
        """
        if key is not None and self.on_first_touch is not None:
            self.on_first_touch(key)
        if redo is None:
            self.resumable = False

            def swap() -> None:
                inverse()

        else:
            applied = [True]

            def swap() -> None:
                if applied[0]:
                    inverse()
                    applied[0] = False
                else:
                    redo()  # type: ignore[misc]
                    applied[0] = True

        self._add(swap, key)

    def _pin(self, oid: Optional[int]) -> None:
        """Pin ``oid``'s live instance for the lifetime of this log: undo
        closures mutate the instance in place, so an evicting object
        cache must not let it fall out from under them."""
        if oid is None or oid in self._pinned:
            return
        self._pinned.add(oid)
        self.db.objects.pin(oid)

    def release_pins(self) -> None:
        """Release every residency pin (the log is being discarded)."""
        if not self._pinned:
            return
        objects = self.db.objects
        for oid in self._pinned:
            objects.unpin(oid)
        self._pinned.clear()

    def _first_touch(self, key: tuple, container: Any, data: bool = True) -> bool:
        if key in self._seen:
            return False
        if data and self.on_first_touch is not None:
            self.on_first_touch(key)  # may raise before anything mutates
        self._seen.add(key)
        self._keepalive.append(container)
        return True

    # before-images --------------------------------------------------------

    def save_tuple(self, instance: "TupleInstance") -> None:
        """Snapshot a tuple instance's slots before the first mutation."""
        key = ("slots", id(instance))
        if not self._first_touch(key, instance):
            return
        stored = [dict(instance._slots)]
        if instance.oid is not None:
            self._dirty_oids.add(instance.oid)
            self._pin(instance.oid)

        def swap() -> None:
            current = dict(instance._slots)
            instance._slots.clear()
            instance._slots.update(stored[0])
            stored[0] = current

        self._add(swap, key)

    def save_set(self, collection: "SetInstance") -> None:
        """Snapshot a set instance's member list before mutation."""
        key = ("members", id(collection))
        if not self._first_touch(key, collection):
            return
        stored = [list(collection._members)]

        def swap() -> None:
            current = list(collection._members)
            collection._members[:] = stored[0]
            collection.invalidate_index()
            stored[0] = current

        self._add(swap, key)

    def save_array(self, array: "ArrayInstance") -> None:
        """Snapshot an array instance's slots before mutation."""
        key = ("array", id(array))
        if not self._first_touch(key, array):
            return
        stored = [list(array._slots)]

        def swap() -> None:
            current = list(array._slots)
            array._slots[:] = stored[0]
            stored[0] = current

        self._add(swap, key)

    def save_value(self, value: Any) -> None:
        """Snapshot whichever mutable container ``value`` is (no-op for
        scalars and references, which are immutable)."""
        from repro.core.values import ArrayInstance, SetInstance, TupleInstance

        if isinstance(value, TupleInstance):
            self.save_tuple(value)
        elif isinstance(value, SetInstance):
            self.save_set(value)
        elif isinstance(value, ArrayInstance):
            self.save_array(value)

    def note_dirty(self, oid: Optional[int]) -> None:
        """Mark a stored object as touched so workspace swaps re-serialize
        it (used when the mutation happens inside an embedded collection
        whose owner lives in a paged store)."""
        if oid is not None:
            self._dirty_oids.add(oid)
            self._pin(oid)

    def save_named_binding(self, named: Any) -> None:
        """Snapshot a named object's ``value`` binding (``set Name = …``
        rebinds the slot itself rather than mutating the container)."""
        key = ("binding", id(named))
        if not self._first_touch(key, named):
            return
        stored = [named.value]

        def swap() -> None:
            current = named.value
            named.value = stored[0]
            stored[0] = current

        self._add(swap, key)

    def save_object_dict(self, obj: Any) -> None:
        """Snapshot an object's entire ``__dict__`` (schema evolution
        rewrites shared :class:`SchemaType` objects in place)."""
        key = ("dict", id(obj))
        if not self._first_touch(key, obj):
            return
        self.catalog_touched = True
        stored = [dict(obj.__dict__)]

        def swap() -> None:
            current = dict(obj.__dict__)
            obj.__dict__.clear()
            obj.__dict__.update(stored[0])
            stored[0] = current

        self._add(swap, key)

    def save_stats(self, manager: Any, set_name: str) -> None:
        """Snapshot one set's optimizer statistics (deep — the upkeep
        hooks mutate :class:`AttributeStats` fields in place).
        Bookkeeping, not data: excluded from the write set."""
        if not self._first_touch(("stats", set_name), manager, data=False):
            return
        stored = [copy.deepcopy(manager._stats.get(set_name))]

        def swap() -> None:
            current = manager._stats.get(set_name)
            if stored[0] is None:
                manager._stats.pop(set_name, None)
            else:
                manager._stats[set_name] = stored[0]
            stored[0] = current

        self._add(swap, None)

    def save_cardinality(self, catalog: Any, set_name: str) -> None:
        """Snapshot one tracked set cardinality counter (bookkeeping)."""
        if not self._first_touch(("card", set_name), catalog, data=False):
            return
        stored = [catalog._cardinalities.get(set_name, _ABSENT)]

        def swap() -> None:
            current = catalog._cardinalities.get(set_name, _ABSENT)
            if stored[0] is _ABSENT:
                catalog._cardinalities.pop(set_name, None)
            else:
                catalog._cardinalities[set_name] = stored[0]
            stored[0] = current

        self._add(swap, None)

    # structural toggles ---------------------------------------------------

    def note_object_registered(self, table: Any, oid: int) -> None:
        """A fresh object got identity: toggle its store presence.

        The record captures the stored record lazily on first swap-out,
        so a later mutation + before-image interplay stays consistent
        (before-images restore slots; this toggles existence).
        """
        key = ("oid", oid)
        if self.on_first_touch is not None:
            self.on_first_touch(key)
        self._pin(oid)
        stashed: list = [None]

        def swap() -> None:
            if oid in table._store:
                stashed[0] = table._store.fetch(oid)
                table._store.delete(oid)
            elif stashed[0] is not None:
                table._store.insert(oid, stashed[0])
            table._tombstones.discard(oid)

        self._add(swap, key)

    def note_object_deleted(self, table: Any, record: Any) -> None:
        """An object died: toggle its stored record back in on rollback.

        ``record`` is captured at delete time; if the transaction also
        mutated the instance earlier, its (earlier-recorded, hence
        later-applied) before-image restores the begin-time slots after
        resurrection.
        """
        self._dirty_oids.add(record.oid)
        self._pin(record.oid)
        stashed = [record]

        def swap() -> None:
            if stashed[0] is not None and record.oid not in table._store:
                table._store.insert(record.oid, stashed[0])
                stashed[0] = None
                table._tombstones.discard(record.oid)
            elif record.oid in table._store:
                stashed[0] = table._store.fetch(record.oid)
                table._store.delete(record.oid)
                table._tombstones.add(record.oid)

        self._add(swap, ("oid", record.oid))

    def note_ownership(
        self, table: Any, oid: int, owner: Optional[int], owner_name: Optional[str]
    ) -> None:
        """Ownership is about to change: swap the prior owner back in."""
        self._dirty_oids.add(oid)
        self._pin(oid)
        stored = [(owner, owner_name)]

        def swap() -> None:
            if oid in table._store:
                record = table._store.fetch(oid)
                current = (record.owner, record.owner_name)
                record.owner, record.owner_name = stored[0]
                table._store.update(oid, record)
                stored[0] = current

        self._add(swap, ("own", oid))

    def note_map_set(self, mapping: dict, key: Any) -> None:
        """A dict entry is about to be set/replaced/popped: swap it.

        Generic record for catalog registries (types, named objects,
        functions, procedures, indexes) and authorization owner records.
        """
        self.catalog_touched = True
        record_key = ("map", id(mapping), key)
        if self.on_first_touch is not None:
            self.on_first_touch(record_key)
        self._keepalive.append(mapping)
        stored = [mapping.get(key, _ABSENT)]

        def swap() -> None:
            current = mapping.get(key, _ABSENT)
            if stored[0] is _ABSENT:
                mapping.pop(key, None)
            else:
                mapping[key] = stored[0]
            stored[0] = current

        self._add(swap, record_key)

    # -- write set ---------------------------------------------------------

    def write_set(self) -> set:
        """Container identities this transaction wrote (conflict keys)."""
        return {r.key for r in self._records if r.key is not None}

    # -- applying ----------------------------------------------------------

    def _mark_dirty(self) -> None:
        """Re-serialize every touched live object into the store (paged
        stores pickle on write, so swapped slots must be re-pickled)."""
        objects = self.db.objects
        for oid in self._dirty_oids:
            if objects.is_live(oid):
                objects.mark_dirty(oid)

    def rollback(self) -> None:
        """Apply every record newest-first: live state returns to what it
        was at ``begin()``. The log is dead afterwards."""
        for record in reversed(self._records):
            record.swap()
        self._mark_dirty()
        self.release_pins()

    def park(self) -> None:
        """Swap this transaction's uncommitted workspace *out* of the
        live database (records then hold the transaction's after-images;
        live state shows begin-time state). Idempotent via ``parked``."""
        if self.parked:
            return
        if not self.resumable:
            raise RuntimeError(
                "transaction recorded a rollback-only operation and "
                "cannot be parked for multi-session interleaving"
            )
        for record in reversed(self._records):
            record.swap()
        self.parked = True
        self._mark_dirty()

    def resume(self) -> None:
        """Swap the workspace back *into* the live database."""
        if not self.parked:
            return
        for record in self._records:
            record.swap()
        self.parked = False
        self._mark_dirty()
