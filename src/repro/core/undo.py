"""Incremental undo logging for transactions.

Replaces the seed's whole-database pickle with per-mutation inverse
records: ``Database.begin()`` opens an :class:`UndoLog` and attaches it
to every manager that can mutate durable state (object table, catalog,
statistics, indexes, authorization); each mutation site records either

* a **before-image** — a copy-on-first-touch snapshot of the container
  it is about to change (a tuple's slot dict, a set's member list, an
  array's slot list, one set's :class:`SetStats`, a named object's
  value binding, one cardinality counter), deduplicated per container
  so a transaction touching one object a thousand times saves it once;
  or
* a **structural inverse** — a closure undoing a structural change
  (object registered → unregister it, object deleted → re-insert its
  record, ownership claimed → restore prior owner, index entry added →
  remove it, grant added → discard it, …).

``rollback()`` applies the structural inverses in reverse order, then
the before-images (which are idempotent snapshots of begin-time state,
so ordering among them does not matter), then re-serializes every
touched live object into the store (paged stores pickle on write).

Cost: O(state touched by the transaction), not O(database) — the
property bench_p9 pins. The pickle path survives behind
``Database.transaction_mode = "pickle"`` as an ablation/equivalence
baseline.
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.core.values import ArrayInstance, SetInstance, TupleInstance

__all__ = ["UndoLog"]

#: sentinel distinguishing "key was absent" from "key held None"
_ABSENT = object()


class UndoLog:
    """The inverse-operation log of one open transaction."""

    def __init__(self, database: Any):
        self.db = database
        #: structural inverse closures, applied in reverse on rollback
        self._inverses: list[Callable[[], None]] = []
        #: dedup keys of containers whose before-image is already saved
        self._seen: set = set()
        #: strong refs keeping id()-keyed containers alive for the txn
        self._keepalive: list = []
        #: OIDs whose live instances were touched (re-serialized on abort)
        self._dirty_oids: set[int] = set()
        #: total records (inverses + before-images), for diagnostics
        self.records = 0

    # -- recording ---------------------------------------------------------

    def op(self, inverse: Callable[[], None]) -> None:
        """Record one structural inverse."""
        self._inverses.append(inverse)
        self.records += 1

    def _first_touch(self, key: tuple, container: Any) -> bool:
        if key in self._seen:
            return False
        self._seen.add(key)
        self._keepalive.append(container)
        self.records += 1
        return True

    # before-images --------------------------------------------------------

    def save_tuple(self, instance: "TupleInstance") -> None:
        """Snapshot a tuple instance's slots before the first mutation."""
        if not self._first_touch(("slots", id(instance)), instance):
            return
        saved = dict(instance._slots)
        if instance.oid is not None:
            self._dirty_oids.add(instance.oid)

        def restore() -> None:
            instance._slots.clear()
            instance._slots.update(saved)

        self._inverses.append(restore)

    def save_set(self, collection: "SetInstance") -> None:
        """Snapshot a set instance's member list before mutation."""
        if not self._first_touch(("members", id(collection)), collection):
            return
        saved = list(collection._members)

        def restore() -> None:
            collection._members[:] = saved
            collection.invalidate_index()

        self._inverses.append(restore)

    def save_array(self, array: "ArrayInstance") -> None:
        """Snapshot an array instance's slots before mutation."""
        if not self._first_touch(("array", id(array)), array):
            return
        saved = list(array._slots)

        def restore() -> None:
            array._slots[:] = saved

        self._inverses.append(restore)

    def save_value(self, value: Any) -> None:
        """Snapshot whichever mutable container ``value`` is (no-op for
        scalars and references, which are immutable)."""
        from repro.core.values import ArrayInstance, SetInstance, TupleInstance

        if isinstance(value, TupleInstance):
            self.save_tuple(value)
        elif isinstance(value, SetInstance):
            self.save_set(value)
        elif isinstance(value, ArrayInstance):
            self.save_array(value)

    def note_dirty(self, oid: Optional[int]) -> None:
        """Mark a stored object as touched so rollback re-serializes it
        (used when the mutation happens inside an embedded collection
        whose owner lives in a paged store)."""
        if oid is not None:
            self._dirty_oids.add(oid)

    def save_named_binding(self, named: Any) -> None:
        """Snapshot a named object's ``value`` binding (``set Name = …``
        rebinds the slot itself rather than mutating the container)."""
        if not self._first_touch(("binding", id(named)), named):
            return
        saved = named.value

        def restore() -> None:
            named.value = saved

        self._inverses.append(restore)

    def save_stats(self, manager: Any, set_name: str) -> None:
        """Snapshot one set's optimizer statistics (deep — the upkeep
        hooks mutate :class:`AttributeStats` fields in place)."""
        if not self._first_touch(("stats", set_name), manager):
            return
        saved = copy.deepcopy(manager._stats.get(set_name))

        def restore() -> None:
            if saved is None:
                manager._stats.pop(set_name, None)
            else:
                manager._stats[set_name] = saved

        self._inverses.append(restore)

    def save_cardinality(self, catalog: Any, set_name: str) -> None:
        """Snapshot one tracked set cardinality counter."""
        if not self._first_touch(("card", set_name), catalog):
            return
        saved = catalog._cardinalities.get(set_name, _ABSENT)

        def restore() -> None:
            if saved is _ABSENT:
                catalog._cardinalities.pop(set_name, None)
            else:
                catalog._cardinalities[set_name] = saved

        self._inverses.append(restore)

    # structural inverses --------------------------------------------------

    def note_object_registered(self, table: Any, oid: int) -> None:
        """A fresh object got identity: unregister it on rollback."""

        def inverse() -> None:
            if oid in table._store:
                table._store.delete(oid)
            table._tombstones.discard(oid)

        self.op(inverse)

    def note_object_deleted(self, table: Any, record: Any) -> None:
        """An object died: resurrect its stored record on rollback.

        ``record`` is captured at delete time; if the transaction also
        mutated the instance earlier, its (earlier-recorded, hence
        later-applied) before-image restores the begin-time slots after
        resurrection.
        """
        self._dirty_oids.add(record.oid)

        def inverse() -> None:
            if record.oid not in table._store:
                table._store.insert(record.oid, record)
            table._tombstones.discard(record.oid)

        self.op(inverse)

    def note_ownership(
        self, table: Any, oid: int, owner: Optional[int], owner_name: Optional[str]
    ) -> None:
        """Ownership is about to change: restore the prior owner."""
        self._dirty_oids.add(oid)

        def inverse() -> None:
            if oid in table._store:
                record = table._store.fetch(oid)
                record.owner = owner
                record.owner_name = owner_name
                table._store.update(oid, record)

        self.op(inverse)

    def note_map_set(self, mapping: dict, key: Any) -> None:
        """A dict entry is about to be set/replaced/popped: restore it.

        Generic inverse for catalog registries (types, named objects,
        functions, procedures) and authorization owner records.
        """
        saved = mapping.get(key, _ABSENT)

        def inverse() -> None:
            if saved is _ABSENT:
                mapping.pop(key, None)
            else:
                mapping[key] = saved

        self.op(inverse)

    # -- rollback ----------------------------------------------------------

    def rollback(self) -> None:
        """Apply every recorded inverse, newest first, then write every
        touched live object back to the store (paged stores serialize
        on write, so restored slots must be re-pickled)."""
        for inverse in reversed(self._inverses):
            inverse()
        objects = self.db.objects
        for oid in self._dirty_oids:
            if objects.is_live(oid):
                objects.mark_dirty(oid)
