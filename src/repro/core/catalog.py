"""The system catalog.

The catalog names everything: schema types (the inheritance lattice),
named persistent database objects (paper §2.1 — EXTRA separates type from
instance, so a database is a collection of *named* sets, arrays, and
individual objects such as ``Employees``, ``TopTen``, ``StarEmployee``,
and ``Today``), EXCESS functions and procedures, and it holds the ADT
registry, the generic set-function registry, the access-method tables,
and the index manager.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from repro.adt.generics import SetFunctionRegistry
from repro.adt.registry import AdtRegistry
from repro.core.schema import Rename, SchemaType
from repro.core.statistics import StatisticsManager
from repro.core.types import ComponentSpec, SetType
from repro.errors import CatalogError, SchemaError
from repro.storage.access import AccessMethodTable, IndexManager

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.excess.functions import ExcessFunction
    from repro.excess.procedures import Procedure

__all__ = ["NamedObject", "Catalog"]


@dataclass
class NamedObject:
    """A named persistent database object created with ``create``.

    ``spec`` is the declared component spec (e.g. ``own {own ref Employee}``
    for ``create {own ref Employee} Employees``); ``value`` is the stored
    slot value — a :class:`~repro.core.values.SetInstance`,
    :class:`~repro.core.values.ArrayInstance`, tuple instance, reference,
    scalar, or null. ``owner`` records the user who created it (the
    default holder of all privileges on it).
    """

    name: str
    spec: ComponentSpec
    value: Any
    owner: str = "dba"

    @property
    def is_set(self) -> bool:
        """True when the named object is a set."""
        return isinstance(self.spec.type, SetType)


class Catalog:
    """All name → definition mappings for one database."""

    #: the open transaction's undo log (attached by ``Database.begin``);
    #: class attribute so snapshots from before this field existed load
    undo = None

    def __init__(self) -> None:
        self._types: dict[str, SchemaType] = {}
        self._named: dict[str, NamedObject] = {}
        #: (type_name, function_name) → EXCESS function definition
        self._functions: dict[tuple[str, str], "ExcessFunction"] = {}
        self._procedures: dict[str, "Procedure"] = {}
        self.adts = AdtRegistry()
        self.set_functions = SetFunctionRegistry()
        self.access_table = AccessMethodTable()
        self.indexes = IndexManager()
        #: monotonically increasing schema version; any change that could
        #: invalidate a cached query plan bumps it (DDL, index create/drop,
        #: grants, session range re-declaration)
        self._epoch = 0
        #: tracked named-set cardinalities for optimizer cost decisions
        self._cardinalities: dict[str, int] = {}
        #: per-set attribute statistics (``analyze``); crossing the churn
        #: staleness threshold bumps the epoch so cached plans costed
        #: under the old histograms are dropped
        self.statistics = StatisticsManager(on_stale=self.bump_epoch)
        self.indexes.on_change = self.bump_epoch

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("undo", None)  # undo logs never survive pickling
        return state

    # -- plan-cache epoch -------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The current schema epoch; plans bound under an older epoch may
        be stale and must not be reused."""
        return self._epoch

    def bump_epoch(self) -> None:
        """Invalidate every plan bound against the current catalog state."""
        self._epoch += 1

    # -- cardinality statistics -------------------------------------------------

    def note_cardinality(self, set_name: str, delta: int) -> None:
        """Adjust the tracked member count of a named set.

        Called *after* the mutation applied, so when the set is not yet
        tracked a direct measurement (which already reflects the change)
        seeds the counter instead of ``measurement + delta``.
        """
        if self.undo is not None:
            self.undo.save_cardinality(self, set_name)
        current = self._cardinalities.get(set_name)
        if current is None:
            self._cardinalities[set_name] = self._measure_cardinality(set_name)
        else:
            self._cardinalities[set_name] = max(0, current + delta)

    def cardinality(self, set_name: str) -> int:
        """The (tracked) member count of a named set; measured and cached
        on first request."""
        count = self._cardinalities.get(set_name)
        if count is None:
            if self.undo is not None:  # seeding mutates the counter map
                self.undo.save_cardinality(self, set_name)
            count = self._measure_cardinality(set_name)
            self._cardinalities[set_name] = count
        return count

    def _measure_cardinality(self, set_name: str) -> int:
        named = self._named.get(set_name)
        if named is None:
            return 0
        try:
            return len(named.value)
        except TypeError:
            return 0

    # -- schema types ----------------------------------------------------------

    def define_type(
        self,
        name: str,
        attributes: list[tuple[str, ComponentSpec]],
        parents: list[str] | list[SchemaType] = (),
        renames: list[Rename] = (),
    ) -> SchemaType:
        """Create and register a schema type (``define type``).

        ``parents`` may be given as names (resolved here) or as already
        resolved :class:`SchemaType` objects. A type name may not collide
        with an existing type, ADT, or named object.
        """
        self._check_fresh_name(name)
        parent_types: list[SchemaType] = []
        for parent in parents:
            if isinstance(parent, SchemaType):
                parent_types.append(parent)
            else:
                parent_types.append(self.schema_type(parent))
        schema_type = SchemaType(
            name, attributes, parents=parent_types, renames=list(renames)
        )
        if self.undo is not None:
            self.undo.note_map_set(self._types, name)
        self._types[name] = schema_type
        self.bump_epoch()
        return schema_type

    def register_type(self, schema_type: SchemaType) -> SchemaType:
        """Register an already-constructed schema type (used by the
        interpreter's two-phase self-referential construction)."""
        self._check_fresh_name(schema_type.name)
        if self.undo is not None:
            self.undo.note_map_set(self._types, schema_type.name)
        self._types[schema_type.name] = schema_type
        self.bump_epoch()
        return schema_type

    def schema_type(self, name: str) -> SchemaType:
        """Look up a schema type by name."""
        try:
            return self._types[name]
        except KeyError:
            raise CatalogError(f"unknown type {name!r}") from None

    def has_type(self, name: str) -> bool:
        """True when ``name`` is a schema type."""
        return name in self._types

    def type_names(self) -> list[str]:
        """All schema type names, sorted."""
        return sorted(self._types)

    def subtypes_of(self, name: str) -> list[SchemaType]:
        """Every schema type that is a (transitive, proper) subtype."""
        return [
            t for t in self._types.values()
            if t.name != name and name in t.ancestors()
        ]

    def drop_type(self, name: str) -> None:
        """Remove a schema type; refuses while subtypes or named objects
        depend on it."""
        target = self.schema_type(name)
        dependents = [t.name for t in self.subtypes_of(name)]
        if dependents:
            raise SchemaError(
                f"cannot drop type {name!r}: subtypes depend on it: "
                f"{', '.join(sorted(dependents))}"
            )
        users = [
            named.name for named in self._named.values()
            if _spec_mentions_type(named.spec, target)
        ]
        if users:
            raise SchemaError(
                f"cannot drop type {name!r}: named objects use it: "
                f"{', '.join(sorted(users))}"
            )
        if self.undo is not None:
            self.undo.note_map_set(self._types, name)
        del self._types[name]
        self.bump_epoch()

    # -- named objects ------------------------------------------------------------

    def create_named(self, named: NamedObject) -> NamedObject:
        """Register a named persistent object (``create``)."""
        self._check_fresh_name(named.name)
        if self.undo is not None:
            self.undo.note_map_set(self._named, named.name)
        self._named[named.name] = named
        self.bump_epoch()
        return named

    def named(self, name: str) -> NamedObject:
        """Look up a named object."""
        try:
            return self._named[name]
        except KeyError:
            raise CatalogError(f"unknown database object {name!r}") from None

    def has_named(self, name: str) -> bool:
        """True when ``name`` is a named database object."""
        return name in self._named

    def named_names(self) -> list[str]:
        """All named object names, sorted."""
        return sorted(self._named)

    def destroy_named(self, name: str) -> NamedObject:
        """Remove a named object from the catalog (``destroy``); the
        caller is responsible for cascading deletes of owned members."""
        if self.undo is not None and name in self._named:
            self.undo.note_map_set(self._named, name)
            self.undo.save_cardinality(self, name)
        try:
            removed = self._named.pop(name)
        except KeyError:
            raise CatalogError(f"unknown database object {name!r}") from None
        self._cardinalities.pop(name, None)
        self.statistics.forget(name)
        self.bump_epoch()
        return removed

    # -- EXCESS functions -----------------------------------------------------------

    def define_function(self, function: "ExcessFunction") -> None:
        """Register an EXCESS function attached to a schema type.

        Redefinition for a *subtype* is how virtual overriding works;
        redefinition for the same type replaces the previous definition
        only when ``function.replace`` is set.
        """
        key = (function.type_name, function.name)
        if key in self._functions and not function.replace:
            raise CatalogError(
                f"function {function.name!r} already defined for type "
                f"{function.type_name!r}"
            )
        if self.undo is not None:
            self.undo.note_map_set(self._functions, key)
        self._functions[key] = function
        self.bump_epoch()

    def undefine_function(self, type_name: str, name: str) -> None:
        """Remove a function registration (used to roll back a definition
        whose body failed validation)."""
        if self.undo is not None:
            self.undo.note_map_set(self._functions, (type_name, name))
        self._functions.pop((type_name, name), None)
        self.bump_epoch()

    def lookup_function(
        self, schema_type: SchemaType, name: str
    ) -> Optional["ExcessFunction"]:
        """Resolve ``name`` for ``schema_type`` through the lattice.

        Walks the type's linearization (self first, then ancestors), so a
        redefinition on a subtype shadows the inherited one — the paper's
        virtual-function-like dispatch.
        """
        for candidate in schema_type.linearization():
            function = self._functions.get((candidate.name, name))
            if function is not None:
                return function
        return None

    def functions_of(self, type_name: str) -> list["ExcessFunction"]:
        """Functions declared *directly* on ``type_name``."""
        return [
            fn for (owner, _name), fn in self._functions.items()
            if owner == type_name
        ]

    def all_functions(self) -> list["ExcessFunction"]:
        """Every registered EXCESS function."""
        return list(self._functions.values())

    # -- procedures --------------------------------------------------------------------

    def define_procedure(self, procedure: "Procedure") -> None:
        """Register a stored procedure (IDM-style stored command)."""
        if procedure.name in self._procedures:
            raise CatalogError(f"procedure {procedure.name!r} already defined")
        if self.undo is not None:
            self.undo.note_map_set(self._procedures, procedure.name)
        self._procedures[procedure.name] = procedure
        self.bump_epoch()

    def procedure(self, name: str) -> "Procedure":
        """Look up a procedure by name."""
        try:
            return self._procedures[name]
        except KeyError:
            raise CatalogError(f"unknown procedure {name!r}") from None

    def has_procedure(self, name: str) -> bool:
        """True when ``name`` is a stored procedure."""
        return name in self._procedures

    def procedure_names(self) -> list[str]:
        """All procedure names, sorted."""
        return sorted(self._procedures)

    # -- helpers ------------------------------------------------------------------------

    def _check_fresh_name(self, name: str) -> None:
        if name in self._types:
            raise CatalogError(f"name {name!r} already names a type")
        if name in self._named:
            raise CatalogError(f"name {name!r} already names a database object")
        if self.adts.has_adt(name):
            raise CatalogError(f"name {name!r} already names an ADT")


def _spec_mentions_type(spec: ComponentSpec, target: SchemaType) -> bool:
    """True when ``spec`` (possibly nested) refers to ``target``."""
    from repro.core.types import ArrayType, TupleType

    t = spec.type
    if isinstance(t, SchemaType):
        return t.name == target.name or target.name in t.ancestors()
    if isinstance(t, SetType):
        return _spec_mentions_type(t.element, target)
    if isinstance(t, ArrayType):
        return _spec_mentions_type(t.element, target)
    if isinstance(t, TupleType):
        return any(
            _spec_mentions_type(attr_spec, target) for _n, attr_spec in t
        )
    return False
