"""The top-level EXTRA/EXCESS database facade.

A :class:`Database` wires together the object table (over a memory or
paged store), the catalog, the integrity manager, the ADT registry (with
the built-in ``Date`` and ``Complex`` ADTs pre-registered), the
access-method tables, and authorization. It exposes:

* a **Python-level API** (``define_type``, ``create_named``, ``insert``,
  ``delete``, ``create_index`` …) used by tests, benchmarks, and embedding
  applications, and
* the **EXCESS statement interface**: :meth:`execute` parses, binds,
  optimizes, and evaluates any EXCESS statement; :meth:`session` returns a
  per-user session enforcing authorization.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Union

from repro.adt.builtin import register_builtin_adts
from repro.authz.grants import AuthorizationManager
from repro.core.catalog import Catalog, NamedObject
from repro.core.identity import MemoryObjectStore, ObjectTable
from repro.core.integrity import IntegrityManager
from repro.core.schema import Rename, SchemaType
from repro.core.types import (
    ArrayType,
    ComponentSpec,
    Semantics,
    SetType,
    TupleType,
    Type,
    own,
)
from repro.core.values import (
    NULL,
    ArrayInstance,
    Ref,
    SetInstance,
    TupleInstance,
)
from repro.errors import (
    CatalogError,
    IntegrityError,
    StorageError,
    TypeSystemError,
)

__all__ = ["Database", "Session"]

#: scalar Python types that can serve as index keys
_INDEXABLE = (int, float, str, bool)


class Database:
    """One EXTRA/EXCESS database instance."""

    #: monotonic data-change counter (class default covers old snapshots);
    #: every insert/remove/delete/update bumps it, so plan-level caches
    #: keyed by it (hash-join build tables) are never served stale
    data_version: int = 0

    #: how :meth:`begin` captures rollback state: ``"undo"`` (default)
    #: records per-mutation inverses, O(state touched); ``"pickle"`` is
    #: the seed's whole-database snapshot, kept as an ablation and
    #: equivalence baseline (class attribute so old snapshots load)
    transaction_mode: str = "undo"

    #: multi-session concurrency control: ``"mvcc"`` (default) gives
    #: each session snapshot isolation via workspace parking and the
    #: version log (see :mod:`repro.core.session`); ``"none"`` is the
    #: ablation baseline — sessions share live state with no parking,
    #: versioning, or conflict detection (the seed's behavior)
    isolation_mode: str = "mvcc"

    #: the :class:`~repro.storage.recovery.DurabilityManager` when the
    #: database was opened durably via :meth:`open`; None otherwise
    durability: Any = None

    def __init__(
        self,
        storage: str = "memory",
        pool_capacity: int = 64,
        dba: str = "dba",
        authorization: bool = False,
        store_mode: Optional[str] = None,
        cache_capacity: Optional[int] = None,
        store_path: Optional[str] = None,
    ):
        """Create an empty database.

        ``storage`` selects the object store: ``"memory"`` (default) or
        ``"paged"`` for the slotted-page store with buffer accounting.
        With ``storage="paged"``, ``store_mode`` picks the disk substrate
        (``"sim"``, the default, or ``"file"`` — 4KB pages persisted at
        ``store_path``, or an anonymous temp file when no path is given),
        and ``cache_capacity`` bounds the live-object cache (``None`` =
        unbounded, the ablation baseline). ``authorization`` turns on
        privilege checking (off by default so single-user scripts need no
        grants).
        """
        if storage == "memory":
            if store_mode is not None or store_path is not None:
                raise CatalogError(
                    "store_mode/store_path require storage='paged'"
                )
            self.store: Any = MemoryObjectStore()
        elif storage == "paged":
            from repro.storage.object_store import PagedObjectStore

            self.store = PagedObjectStore(
                pool_capacity=pool_capacity,
                cache_capacity=cache_capacity,
                store_mode=store_mode,
                path=store_path,
            )
        else:
            raise CatalogError(f"unknown storage kind {storage!r}")
        self.objects = ObjectTable(self.store)
        self.catalog = Catalog()
        self.integrity = IntegrityManager(self.objects, self.catalog)
        self.authz = AuthorizationManager()
        self.authz.directory.dba = dba
        self.authz.directory.add_user(dba)
        self.authz.enabled = authorization
        register_builtin_adts(self.catalog.adts, self.catalog.access_table)
        self.data_version = 0
        self._interpreter: Any = None

    # -- pickling (snapshots) ----------------------------------------------------

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_interpreter"] = None  # rebuilt lazily after load
        # sessions and transaction workspaces never survive pickling
        state.pop("_transactions", None)
        state.pop("_default_session", None)
        state.pop("durability", None)  # holds an open WAL file handle
        return state

    # -- sessions and transactions -------------------------------------------------

    @property
    def transactions(self) -> Any:
        """The (lazily constructed) multi-session transaction manager."""
        manager = self.__dict__.get("_transactions")
        if manager is None:
            from repro.core.session import TransactionManager

            manager = TransactionManager(self)
            self.__dict__["_transactions"] = manager
        return manager

    @property
    def default_session(self) -> Any:
        """The session backing the single-session Python API: every
        ``db.execute`` / ``db.begin`` call without an explicit session
        runs here, preserving the seed's one-session semantics."""
        session = self.__dict__.get("_default_session")
        if session is None or session.closed:
            session = self.transactions.create_session(
                self.authz.directory.dba, name="default", is_default=True
            )
            self.__dict__["_default_session"] = session
        return session

    def connect(self, user: Optional[str] = None, name: Optional[str] = None) -> Any:
        """Open a new isolated session (its own range declarations,
        flag overrides, and snapshot-isolated transactions)."""
        user = user or self.authz.directory.dba
        self.authz.directory.add_user(user)
        return self.transactions.create_session(user, name=name)

    @property
    def in_transaction(self) -> bool:
        """True while any session has an open transaction."""
        manager = self.__dict__.get("_transactions")
        if manager is None:
            return False
        return any(s.txn is not None for s in manager.sessions.values())

    def _undo_targets(self) -> tuple:
        """Every manager that records undo information for open
        transactions (they all carry an ``undo`` attribute)."""
        return (
            self.objects,
            self.catalog,
            self.catalog.statistics,
            self.catalog.indexes,
            self.authz,
            self.authz.directory,
        )

    def _attach_undo(self, undo: Any) -> None:
        for target in self._undo_targets():
            target.undo = undo

    def _detach_undo(self) -> None:
        for target in self._undo_targets():
            target.__dict__.pop("undo", None)  # falls back to class None

    def begin(self) -> None:
        """Open a transaction in the default session.

        The EXODUS storage manager provided transactions; this engine
        reproduces the *interface*. The default ``"undo"`` mode attaches
        an incremental :class:`~repro.core.undo.UndoLog` to every
        manager: each mutation records a bidirectional swap, so abort
        costs O(state touched), not O(database), and multi-session MVCC
        (:mod:`repro.core.session`) can park and version workspaces.
        Setting ``Database.transaction_mode = "pickle"`` restores the
        seed's whole-state snapshot as an ablation baseline. Nested
        transactions are not supported.
        """
        self.transactions.begin(self.default_session)

    def commit(self) -> None:
        """Make the default session's transaction permanent."""
        self.transactions.commit(self.default_session)

    def abort(self) -> None:
        """Undo every change made since :meth:`begin`."""
        self.transactions.abort(self.default_session)

    # -- schema definition ----------------------------------------------------------

    def define_type(
        self,
        name: str,
        attributes: Union[dict[str, ComponentSpec], list[tuple[str, ComponentSpec]]],
        parents: Iterable[str] = (),
        renames: Iterable[Rename] = (),
    ) -> SchemaType:
        """Define a schema type (the Python-level ``define type``)."""
        if isinstance(attributes, dict):
            attribute_list = list(attributes.items())
        else:
            attribute_list = list(attributes)
        return self.catalog.define_type(
            name, attribute_list, parents=list(parents), renames=list(renames)
        )

    def type(self, name: str) -> SchemaType:
        """Look up a schema type."""
        return self.catalog.schema_type(name)

    # -- named objects ------------------------------------------------------------------

    def create_named(
        self,
        name: str,
        spec: Union[ComponentSpec, Type],
        key: Optional[tuple[str, ...]] = None,
        user: str = "dba",
    ) -> NamedObject:
        """Create a named persistent object (the ``create`` statement).

        ``spec`` may be a bare :class:`Type` (treated as ``own`` for value
        types) or a full :class:`ComponentSpec`. Sets and arrays start
        empty; reference singletons start null; own tuple singletons start
        as an all-null instance; scalar/ADT singletons start null.
        ``key`` attaches a key constraint to a set instance.
        """
        if isinstance(spec, Type):
            spec = own(spec) if not isinstance(spec, SchemaType) else own(spec)
        value = self._initial_value(spec, key)
        named = NamedObject(name=name, spec=spec, value=value, owner=user)
        self.catalog.create_named(named)
        self.authz.record_owner(name, user)
        return named

    def _initial_value(
        self, spec: ComponentSpec, key: Optional[tuple[str, ...]]
    ) -> Any:
        if key is not None and not isinstance(spec.type, SetType):
            raise TypeSystemError("key constraints apply only to sets")
        if isinstance(spec.type, SetType):
            if key is not None:
                element = spec.type.element.type
                if not isinstance(element, TupleType):
                    raise TypeSystemError("keyed sets require tuple elements")
                for attribute in key:
                    element.attribute(attribute)  # validates existence
            return SetInstance(spec.type, key=key)
        if isinstance(spec.type, ArrayType):
            return ArrayInstance(spec.type)
        if spec.semantics is Semantics.OWN and isinstance(spec.type, TupleType):
            return TupleInstance(spec.type)
        return NULL

    def named(self, name: str) -> NamedObject:
        """Look up a named object."""
        return self.catalog.named(name)

    def destroy_named(self, name: str) -> int:
        """Destroy a named object, cascading deletes of owned members.

        Returns the number of first-class objects deleted.
        """
        named = self.catalog.named(name)
        deleted = 0
        value = named.value
        if isinstance(value, (SetInstance, ArrayInstance)):
            element = value.element
            if element.semantics is Semantics.OWN_REF:
                for member in list(value):
                    if isinstance(member, Ref) and self.objects.is_live(member.oid):
                        deleted += self.integrity.delete_object(member.oid)
        elif isinstance(value, Ref) and named.spec.semantics is Semantics.OWN_REF:
            if self.objects.is_live(value.oid):
                deleted += self.integrity.delete_object(value.oid)
        for descriptor in self.catalog.indexes.indexes_on(name):
            self.catalog.indexes.drop(
                descriptor.set_name, descriptor.attribute, descriptor.kind
            )
        self.catalog.destroy_named(name)
        self.data_version += 1
        return deleted

    # -- data manipulation -----------------------------------------------------------------

    def insert(self, set_name: str, value: Any = None, /, **attributes: Any) -> Any:
        """Insert into a named set.

        ``db.insert("Employees", name="Sue", age=40)`` creates a new
        member object (own ref sets) or embedded value; ``db.insert(
        "Team", some_ref)`` adds an existing object to a ref set. Returns
        the stored member (a :class:`Ref` or the embedded value), or
        ``None`` when an equal member was already present.
        """
        named = self.catalog.named(set_name)
        collection = named.value
        if not isinstance(collection, SetInstance):
            raise TypeSystemError(f"{set_name!r} is not a set")
        if value is not None and attributes:
            raise TypeSystemError("pass either a value or attributes, not both")
        raw = value if value is not None else dict(attributes)
        size_before = len(collection)
        added = self.integrity.insert_member(named, collection, raw)
        if not added:
            return None
        member = collection._members[-1]
        if len(collection) == size_before:
            # insert() appends; a re-inserted duplicate returns False above,
            # so reaching here without growth cannot happen — guard anyway.
            return member
        self._index_insert(set_name, collection, member)
        self.catalog.note_cardinality(set_name, +1)
        self.catalog.statistics.observe_insert(set_name, self._stats_row(member))
        self.data_version += 1
        return member

    def remove(self, set_name: str, member: Any, delete_owned: bool = True) -> bool:
        """Remove ``member`` from a named set (deleting it when owned)."""
        named = self.catalog.named(set_name)
        collection = named.value
        if not isinstance(collection, SetInstance):
            raise TypeSystemError(f"{set_name!r} is not a set")
        row = self._stats_row(member)
        self._index_delete(set_name, collection, member)
        removed = self.integrity.remove_member(
            named, collection, member, delete_owned=delete_owned
        )
        if removed:
            self.catalog.note_cardinality(set_name, -1)
            self.catalog.statistics.observe_remove(
                set_name, row, self._minmax_rescanner(set_name)
            )
            self.data_version += 1
        return removed

    def delete(self, reference: Ref) -> int:
        """Delete the object behind ``reference`` wherever it lives.

        Removes it from every named set it belongs to (maintaining
        indexes), then cascades ownership deletion. Returns the number of
        objects deleted.
        """
        if not self.objects.is_live(reference.oid):
            return 0
        self.data_version += 1
        row = self._stats_row(reference)
        for name in self.catalog.named_names():
            named = self.catalog.named(name)
            if isinstance(named.value, SetInstance) and named.value.contains(reference):
                self._index_delete(name, named.value, reference)
                undo = self.objects.undo
                if undo is not None:
                    undo.save_set(named.value)
                named.value.remove(reference)
                self.catalog.note_cardinality(name, -1)
                self.catalog.statistics.observe_remove(
                    name, row, self._minmax_rescanner(name)
                )
        return self.integrity.delete_object(reference.oid)

    def update_member(
        self, set_name: str, member: Ref, changes: dict[str, Any]
    ) -> None:
        """Update attributes of a set member, maintaining indexes.

        ``changes`` values use the same raw forms as :meth:`insert`.
        """
        self.catalog.named(set_name)  # raises CatalogError on unknown sets
        instance = self.objects.deref(member.oid)
        if instance is None:
            raise IntegrityError(f"cannot update dead object {member.oid}")
        old_keys = self._key_snapshot(set_name, instance)
        old_row = {name: instance.get(name) for name in changes}
        self.apply_changes(instance, changes)
        new_keys = self._key_snapshot(set_name, instance)
        self.catalog.indexes.on_update(
            set_name, member.oid, old_keys.get, new_keys.get
        )
        new_row = {name: instance.get(name) for name in changes}
        self.catalog.statistics.observe_update(
            set_name, old_row, new_row, self._minmax_rescanner(set_name)
        )
        self.objects.mark_dirty(member.oid)

    def note_member_update(
        self,
        reference: Ref,
        old_row: Optional[dict[str, Any]],
        new_row: Optional[dict[str, Any]],
    ) -> None:
        """Statistics upkeep for an attribute update applied outside
        :meth:`update_member` (the evaluator's replace/set paths apply
        changes directly): observe the update on every analyzed named
        set containing the object."""
        statistics = self.catalog.statistics
        for name in statistics.analyzed_sets():
            try:
                named = self.catalog.named(name)
            except CatalogError:
                continue
            if isinstance(named.value, SetInstance) and named.value.contains(
                reference
            ):
                statistics.observe_update(
                    name, old_row, new_row, self._minmax_rescanner(name)
                )

    def apply_changes(self, instance: TupleInstance, changes: dict[str, Any]) -> None:
        """Write raw-form attribute changes into ``instance`` with full
        integrity checking (no index maintenance — use
        :meth:`update_member` for indexed sets)."""
        undo = self.objects.undo
        if undo is not None and changes:
            undo.save_tuple(instance)
        for name, raw in changes.items():
            spec = instance.type.attribute(name)
            old = instance.get(name)
            if (
                spec.semantics is Semantics.OWN_REF
                and isinstance(old, Ref)
                and self.objects.is_live(old.oid)
            ):
                # replacing an owned component destroys the old component
                self.integrity.delete_object(old.oid)
            holder = instance.oid if instance.oid is not None else None
            if holder is None:
                instance.set(name, raw if raw is not None else NULL)
            else:
                instance._slots[name] = self.integrity._build_slot(
                    spec, raw, holder=holder
                )
        if instance.oid is not None:
            self.objects.mark_dirty(instance.oid)
        self.data_version += 1

    # -- indexes ----------------------------------------------------------------------------

    def create_index(
        self, set_name: str, attribute: str, kind: str = "btree"
    ) -> None:
        """Create an index over ``set_name.attribute`` and backfill it."""
        named = self.catalog.named(set_name)
        collection = named.value
        if not isinstance(collection, SetInstance):
            raise TypeSystemError(f"{set_name!r} is not a set")
        element = collection.element.type
        if not isinstance(element, TupleType):
            raise TypeSystemError("indexes require tuple-typed set elements")
        element.attribute(attribute)  # validates
        descriptor = self.catalog.indexes.create(set_name, attribute, kind)
        for member in collection:
            key = self._index_key(collection, member, attribute)
            oid = member.oid if isinstance(member, Ref) else None
            if key is not None and oid is not None:
                descriptor.index.insert(key, oid)

    def _index_key(
        self, collection: SetInstance, member: Any, attribute: str
    ) -> Any:
        instance = self.integrity.resolve_member(collection, member)
        if instance is None or not instance.type.has_attribute(attribute):
            return None
        value = instance.get(attribute)
        if value is NULL or not isinstance(value, _INDEXABLE):
            # ordered ADTs (e.g. Date) are also indexable
            from repro.adt.builtin import Date

            if not isinstance(value, Date):
                return None
        return value

    def _key_snapshot(self, set_name: str, instance: TupleInstance) -> dict[str, Any]:
        snapshot: dict[str, Any] = {}
        for descriptor in self.catalog.indexes.indexes_on(set_name):
            value = (
                instance.get(descriptor.attribute)
                if instance.type.has_attribute(descriptor.attribute)
                else NULL
            )
            snapshot[descriptor.attribute] = None if value is NULL else value
        return snapshot

    def _index_insert(self, set_name: str, collection: SetInstance, member: Any) -> None:
        if not isinstance(member, Ref):
            return
        self.catalog.indexes.on_insert(
            set_name,
            member.oid,
            lambda attribute: self._index_key(collection, member, attribute),
        )

    def _index_delete(self, set_name: str, collection: SetInstance, member: Any) -> None:
        if not isinstance(member, Ref):
            return
        self.catalog.indexes.on_delete(
            set_name,
            member.oid,
            lambda attribute: self._index_key(collection, member, attribute),
        )

    # -- EXCESS interface ------------------------------------------------------------------------

    @property
    def interpreter(self) -> Any:
        """The (lazily constructed) EXCESS statement interpreter."""
        if self._interpreter is None:
            from repro.excess.interpreter import Interpreter

            self._interpreter = Interpreter(self)
        return self._interpreter

    def execute(self, text: str, user: Optional[str] = None) -> Any:
        """Parse and run one or more EXCESS statements; returns the result
        of the last statement (a :class:`repro.excess.interpreter.Result`)."""
        return self.interpreter.execute(text, user=user or self.authz.directory.dba)

    def session(self, user: str) -> "Session":
        """A session bound to ``user`` for authorization-checked work."""
        self.authz.directory.add_user(user)
        return Session(self, user)

    # -- persistence ----------------------------------------------------------------------------------

    def save(self, path: str) -> int:
        """Snapshot this database to ``path``; returns bytes written."""
        from repro.storage.persistence import save_snapshot

        return save_snapshot(self, path)

    @classmethod
    def load(cls, path: str) -> "Database":
        """Load a database previously written by :meth:`save`."""
        from repro.storage.persistence import load_snapshot

        return load_snapshot(path)

    @classmethod
    def open(
        cls,
        directory: str,
        *,
        storage: str = "memory",
        fsync: bool = True,
        dba: str = "dba",
        authorization: bool = False,
        pool_capacity: int = 64,
        store_mode: Optional[str] = None,
        cache_capacity: Optional[int] = None,
    ) -> "Database":
        """Open (or create) a *durable* database rooted at ``directory``.

        Recovery loads the latest checkpoint snapshot, repairs any torn
        tail on the write-ahead log, and replays the committed suffix;
        from then on every committed mutating statement is appended to
        the log before the engine acknowledges it. With
        ``storage="paged"`` the store defaults to ``store_mode="file"``:
        pages live in ``<directory>/pages.data`` and checkpoints are
        incremental. See :mod:`repro.storage.recovery`.
        """
        from repro.storage.recovery import open_database

        return open_database(
            directory,
            storage=storage,
            fsync=fsync,
            dba=dba,
            authorization=authorization,
            pool_capacity=pool_capacity,
            store_mode=store_mode,
            cache_capacity=cache_capacity,
        )

    def checkpoint(self) -> dict[str, Any]:
        """Snapshot durable state and truncate the write-ahead log
        (durable mode only); returns a status summary."""
        if self.durability is None:
            raise StorageError(
                "checkpoint requires a database opened with Database.open()"
            )
        return self.durability.checkpoint()

    def close(self) -> None:
        """Release durable-mode resources (the WAL file handle); a
        no-op for purely in-memory databases."""
        if self.durability is not None:
            self.durability.close()
            self.durability = None

    # -- misc -------------------------------------------------------------------------------------------

    def vacuum(self) -> int:
        """Scrub dangling references eagerly; returns count removed.

        On a paged store this also runs the storage compaction pass
        (see :meth:`compact`)."""
        removed = self.integrity.vacuum()
        if hasattr(self.store, "vacuum"):
            self.store.vacuum()
        return removed

    def compact(self) -> dict[str, Any]:
        """Run the storage compaction pass explicitly: squeeze slot
        holes, migrate records off mostly-dead pages, free empty pages.
        Returns the store's report (empty for the memory store)."""
        if hasattr(self.store, "vacuum"):
            return self.store.vacuum()
        return {}

    # -- optimizer statistics ----------------------------------------------------

    def analyze(self, set_name: Optional[str] = None) -> list[str]:
        """Rebuild optimizer statistics from a full scan (``analyze``).

        With a name, analyzes that named set (raising when it is not a
        set); without one, analyzes every named set. Rebuilding bumps the
        catalog epoch so cached plans costed under the old statistics are
        re-optimized. Returns the names analyzed.
        """
        if set_name is not None:
            named = self.named(set_name)
            if not isinstance(named.value, SetInstance):
                raise TypeSystemError(f"{set_name!r} is not a set")
            names = [set_name]
        else:
            names = [
                name
                for name in self.catalog.named_names()
                if isinstance(self.catalog.named(name).value, SetInstance)
            ]
        analyzed: list[str] = []
        for name in names:
            collection = self.catalog.named(name).value
            rows = []
            for member in collection.members():
                row = self._stats_row(member)
                rows.append(self._scalar_row(row) if row else {})
            self.catalog.statistics.rebuild(name, rows, self.data_version)
            analyzed.append(name)
        if analyzed:
            self.catalog.bump_epoch()
        return analyzed

    def _stats_row(self, member: Any) -> Optional[dict]:
        """Attribute name → value snapshot of one set member, for the
        statistics upkeep hooks; ``None`` for non-tuple members."""
        instance = member
        if isinstance(member, Ref):
            instance = self.objects.deref(member.oid)
        if isinstance(instance, TupleInstance):
            return instance.attributes()
        return None

    @staticmethod
    def _scalar_row(row: dict) -> dict:
        """Keep the statistics-relevant slots: scalars (histogram and
        min/max material), references (distinct counts drive join
        selectivity), and nulls (null fraction)."""
        return {
            name: value
            for name, value in row.items()
            if value is NULL or isinstance(value, (int, float, str, bool, Ref))
        }

    def _minmax_rescanner(self, set_name: str) -> Any:
        """A single-attribute min/max rescan callback, used when a delete
        removes an extremal value (keeps min/max exact, per-attribute
        scan cost only when actually needed)."""

        def rescan(attribute: str) -> Optional[tuple]:
            try:
                named = self.named(set_name)
            except CatalogError:
                return None
            if not isinstance(named.value, SetInstance):
                return None
            low: Any = None
            high: Any = None
            for member in named.value.members():
                row = self._stats_row(member)
                value = row.get(attribute) if row else None
                if value is None or value is NULL:
                    continue
                if not isinstance(value, (int, float, str)) or isinstance(
                    value, bool
                ):
                    continue
                try:
                    if low is None or value < low:
                        low = value
                    if high is None or value > high:
                        high = value
                except TypeError:
                    return None
            if low is None:
                return None
            return (low, high)

        return rescan

    def stats(self) -> dict[str, Any]:
        """A summary of engine state for diagnostics and benchmarks."""
        out: dict[str, Any] = {
            "objects": len(self.objects),
            "types": len(self.catalog.type_names()),
            "named_objects": len(self.catalog.named_names()),
            "indexes": len(self.catalog.indexes.all_indexes()),
        }
        store = self.store
        if hasattr(store, "pool"):
            out["buffer"] = {
                "hits": store.pool.stats.hits,
                "misses": store.pool.stats.misses,
                "hit_ratio": store.pool.stats.hit_ratio,
                "pages": store.page_count,
            }
            out["storage"] = self.storage_stats()
        return out

    def storage_stats(self) -> dict[str, Any]:
        """Storage counters for the CLI ``\\storage`` command and the
        server ``status`` op: buffer-pool, physical-disk, and
        live-object-cache behaviour. Empty for the memory store."""
        store = self.store
        if not hasattr(store, "pool"):
            return {}
        pool = store.pool.stats
        disk = store.disk.stats
        cache = store.cache_stats
        return {
            "store_mode": store.store_mode,
            "pages": store.page_count,
            "buffer": {
                "capacity": store.pool.capacity,
                "cached": len(store.pool),
                "hits": pool.hits,
                "misses": pool.misses,
                "hit_ratio": pool.hit_ratio,
                "evictions": pool.evictions,
                "dirty_writebacks": pool.dirty_writebacks,
            },
            "disk": {
                "reads": disk.reads,
                "writes": disk.writes,
                "allocations": disk.allocations,
                "frees": disk.frees,
                "syncs": disk.syncs,
            },
            "object_cache": {
                "capacity": store.cache_capacity,
                "live": store.live_count,
                "pinned": store.pinned_count,
                "dirty": store.dirty_count,
                "hits": cache.hits,
                "faults": cache.faults,
                "evictions": cache.evictions,
                "writebacks": cache.writebacks,
                "peak_live": cache.peak_live,
            },
        }


class Session:
    """A per-user handle enforcing authorization on ``execute``."""

    def __init__(self, database: Database, user: str):
        self.database = database
        self.user = user

    def execute(self, text: str) -> Any:
        """Run EXCESS statements as this session's user."""
        return self.database.interpreter.execute(text, user=self.user)
