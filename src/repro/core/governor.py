"""Per-statement resource governance: deadlines and memory budgets.

One :class:`ResourceGovernor` is created per statement execution (by
:class:`~repro.excess.evaluator.Evaluator` when either governance flag
is active) and shared by every operator of that statement's plan via
``PlanContext.governor``. It owns two concerns:

Statement timeouts
    ``statement_timeout_ms`` converts to an absolute monotonic
    deadline at statement start. Operators call :meth:`check_timeout`
    at **batch boundaries** (``PlanOp._pull_batches``, the executor's
    root drain) and fused pipelines call it in their loop epilogue, so
    cancellation is cooperative: the statement unwinds through ordinary
    exception propagation from a consistent point — MVCC workspaces
    park/rewind exactly as for any failing statement, and the plan
    cache keeps the (still valid) prepared plan. Parallel fragments
    ship the *remaining* time to workers, whose own governors abandon
    the shard past the deadline.

Memory budgets
    ``memory_budget`` (bytes) bounds what the pipeline-breaking
    operators — HashJoin builds, Sort, Aggregate — may hold in memory
    at once. Operators :meth:`reserve` an estimated footprint as they
    accumulate rows; when a reservation is refused they spill to disk
    (:mod:`repro.storage.spill`) and :meth:`release` what they held.
    The accounting is an estimate (``row_footprint``): the budget's job
    is to trigger spilling deterministically, while the spill
    algorithms themselves guarantee byte-identical results at *any*
    trigger point.

Timeout injection points are registered with
:mod:`repro.util.faultinject` (``timeout.batch``, ``timeout.root``,
``timeout.fused``, ``timeout.worker``), so tests can force a
cancellation at each cooperative check site deterministically instead
of racing a real clock.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Optional

from repro.errors import StatementTimeout
from repro.util import faultinject

__all__ = ["ResourceGovernor", "row_footprint", "TIMEOUT_SITES"]

#: every cooperative cancellation site, one faultinject point each
TIMEOUT_SITES = ("batch", "root", "fused", "worker", "aggregate")

for _site in TIMEOUT_SITES:
    faultinject.register(f"timeout.{_site}")

#: charged per row on top of the payload estimate (dict/list overhead)
_ROW_OVERHEAD = 64


def row_footprint(row: Any) -> int:
    """A cheap, deterministic estimate of one row's memory footprint.

    One level deep on purpose: accurate enough to trip the budget at a
    stable point, cheap enough to charge per accumulated row. Container
    rows (env dicts, ``(row, keys)`` pairs) charge their members'
    shallow sizes; everything else charges its own.
    """
    if isinstance(row, dict):
        return _ROW_OVERHEAD + sum(
            sys.getsizeof(k) + sys.getsizeof(v) for k, v in row.items()
        )
    if isinstance(row, (tuple, list)):
        return _ROW_OVERHEAD + sum(sys.getsizeof(v) for v in row)
    return _ROW_OVERHEAD + sys.getsizeof(row)


class ResourceGovernor:
    """Deadline + memory-budget state for one statement execution."""

    __slots__ = ("timeout_ms", "deadline", "memory_budget", "reserved",
                 "spills")

    def __init__(self, statement_timeout_ms: int = 0,
                 memory_budget: int = 0,
                 deadline: Optional[float] = None):
        self.timeout_ms = statement_timeout_ms
        if deadline is not None:
            # worker-side: the parent ships its absolute remaining time
            self.deadline: Optional[float] = deadline
        elif statement_timeout_ms:
            self.deadline = time.monotonic() + statement_timeout_ms / 1000.0
        else:
            self.deadline = None
        #: bytes the pipeline breakers may hold in memory (0 = unbounded)
        self.memory_budget = memory_budget
        #: bytes currently reserved across this statement's operators
        self.reserved = 0
        #: spill events this statement triggered (diagnostics)
        self.spills = 0

    # -- timeouts ----------------------------------------------------------

    def remaining_ms(self) -> Optional[int]:
        """Milliseconds until the deadline (None when no timeout).

        Floors at 1ms: a parent that is *past* its deadline still ships
        a positive remainder so the worker's first cooperative check —
        not the flag plumbing — raises the timeout.
        """
        if self.deadline is None:
            return None
        return max(1, int((self.deadline - time.monotonic()) * 1000.0))

    def check_timeout(self, site: str = "batch") -> None:
        """Raise :class:`StatementTimeout` past the deadline (or at an
        armed injection point). Called at every cooperative site."""
        if faultinject.should_fire(f"timeout.{site}"):
            raise StatementTimeout(
                f"statement timeout injected at {site!r}"
            )
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise StatementTimeout(
                f"statement exceeded statement_timeout_ms="
                f"{self.timeout_ms} (cancelled at {site} boundary)"
            )

    # -- memory budget -----------------------------------------------------

    def reserve(self, nbytes: int) -> bool:
        """Reserve ``nbytes`` against the budget.

        Returns False — without reserving — when the budget is active
        and would be exceeded; the caller spills and releases. With no
        budget configured every reservation succeeds (and is still
        tracked, for diagnostics).
        """
        if self.memory_budget and self.reserved + nbytes > self.memory_budget:
            return False
        self.reserved += nbytes
        return True

    def release(self, nbytes: int) -> None:
        """Return a reservation (operator spilled or finished)."""
        self.reserved = max(0, self.reserved - nbytes)

    def spilled(self) -> None:
        """Record one spill event."""
        self.spills += 1
