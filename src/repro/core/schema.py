"""Schema types and the EXTRA inheritance lattice.

A **schema type** is a named tuple type created with ``define type``
(paper §2.1, Figure 1). Schema types participate in a multiple-inheritance
lattice: ``define type Employee as (...) inherits Person`` makes every
Employee usable wherever a Person is expected, and Employee inherits all
of Person's attributes (and, one layer up, its EXCESS functions and
procedures).

Conflict handling follows paper Figure 3: when two parents contribute
*different* attributes under the same name, the definition is rejected
unless the user resolves the conflict with explicit renaming — EXTRA is
"closest to ORION in its handling of conflicts, except that we provide no
automatic resolution". Attributes that reach a type twice through a
diamond (same origin type, same original name) are merged silently: they
are the same attribute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.types import ComponentSpec, TupleType, Type
from repro.errors import InheritanceConflictError, SchemaError

__all__ = ["Rename", "ResolvedAttribute", "SchemaType"]


@dataclass(frozen=True)
class Rename:
    """An explicit inheritance renaming clause.

    ``rename Employee.dept to work_dept`` becomes
    ``Rename(parent="Employee", attribute="dept", new_name="work_dept")``.
    The ``parent`` names the *direct* parent contributing the attribute.
    """

    parent: str
    attribute: str
    new_name: str


@dataclass(frozen=True)
class ResolvedAttribute:
    """One attribute in a schema type's fully resolved attribute map.

    ``origin`` / ``original_name`` identify where the attribute was first
    declared, which is what lets diamond-inherited attributes merge: two
    inheritance paths delivering the same ``(origin, original_name)`` pair
    carry the same attribute, not a conflict.
    """

    name: str
    spec: ComponentSpec
    origin: str
    original_name: str


class SchemaType(TupleType):
    """A named tuple type in the inheritance lattice.

    Construction fully resolves the attribute map (local declarations +
    inherited attributes after renaming) and computes the ancestor set and
    a method-resolution linearization used for EXCESS function dispatch.
    """

    def __init__(
        self,
        name: str,
        attributes: Sequence[tuple[str, ComponentSpec]],
        parents: Sequence["SchemaType"] = (),
        renames: Sequence[Rename] = (),
    ):
        self.name = name
        self.parents: tuple[SchemaType, ...] = tuple(parents)
        self.renames: tuple[Rename, ...] = tuple(renames)
        self._local_names = [attr_name for attr_name, _ in attributes]
        resolved = self._resolve(attributes)
        super().__init__([(ra.name, ra.spec) for ra in resolved])
        self._resolved: dict[str, ResolvedAttribute] = {ra.name: ra for ra in resolved}
        self._ancestors: frozenset[str] = frozenset(
            ancestor.name for ancestor in self._collect_ancestors()
        )
        self._linearization: tuple[SchemaType, ...] = tuple(self._linearize())

    # -- resolution ----------------------------------------------------------

    def _resolve(
        self, local: Sequence[tuple[str, ComponentSpec]]
    ) -> list[ResolvedAttribute]:
        """Merge inherited attributes (after renaming) with local ones."""
        rename_map: dict[tuple[str, str], str] = {}
        parent_names = {p.name for p in self.parents}
        for rn in self.renames:
            if rn.parent not in parent_names:
                raise SchemaError(
                    f"type {self.name!r}: rename names unknown parent {rn.parent!r}"
                )
            key = (rn.parent, rn.attribute)
            if key in rename_map:
                raise SchemaError(
                    f"type {self.name!r}: duplicate rename for {rn.parent}.{rn.attribute}"
                )
            rename_map[key] = rn.new_name
        for (parent, attribute), _ in rename_map.items():
            parent_type = next(p for p in self.parents if p.name == parent)
            if not parent_type.has_attribute(attribute):
                raise SchemaError(
                    f"type {self.name!r}: rename of unknown attribute "
                    f"{parent}.{attribute}"
                )

        merged: dict[str, ResolvedAttribute] = {}
        conflicts: set[str] = set()
        for parent in self.parents:
            for inherited in parent.resolved_attributes():
                new_name = rename_map.get((parent.name, inherited.name), inherited.name)
                candidate = ResolvedAttribute(
                    name=new_name,
                    spec=inherited.spec,
                    origin=inherited.origin,
                    original_name=inherited.original_name,
                )
                existing = merged.get(new_name)
                if existing is None:
                    merged[new_name] = candidate
                elif (existing.origin, existing.original_name) != (
                    candidate.origin,
                    candidate.original_name,
                ):
                    # Two genuinely different attributes collide under one
                    # name: a Figure-3 conflict requiring explicit renaming.
                    conflicts.add(new_name)
                # else: the same attribute arrived via a diamond — merge.

        local_resolved: list[ResolvedAttribute] = []
        for attr_name, spec in local:
            if attr_name in merged:
                conflicts.add(attr_name)
            local_resolved.append(
                ResolvedAttribute(
                    name=attr_name,
                    spec=spec,
                    origin=self.name,
                    original_name=attr_name,
                )
            )
        if conflicts:
            raise InheritanceConflictError(self.name, sorted(conflicts))

        ordered = list(merged.values()) + local_resolved
        return ordered

    def _collect_ancestors(self) -> set["SchemaType"]:
        out: set[SchemaType] = set()
        stack = list(self.parents)
        while stack:
            parent = stack.pop()
            if parent in out:
                continue
            out.add(parent)
            stack.extend(parent.parents)
        return out

    def _linearize(self) -> list["SchemaType"]:
        """Method-resolution order: self, then parents left-to-right,
        breadth-first, deduplicated (used for function dispatch)."""
        order: list[SchemaType] = []
        seen: set[str] = set()
        queue: list[SchemaType] = [self]
        while queue:
            current = queue.pop(0)
            if current.name in seen:
                continue
            seen.add(current.name)
            order.append(current)
            queue.extend(current.parents)
        return order

    # -- introspection --------------------------------------------------------

    def resolved_attributes(self) -> list[ResolvedAttribute]:
        """All attributes (inherited and local) with origin information."""
        return list(self._resolved.values())

    def attribute_origin(self, name: str) -> ResolvedAttribute:
        """Return the resolved record for attribute ``name``."""
        try:
            return self._resolved[name]
        except KeyError:
            raise SchemaError(
                f"type {self.name!r} has no attribute {name!r}"
            ) from None

    def local_attribute_names(self) -> list[str]:
        """Names of the attributes declared directly on this type."""
        return list(self._local_names)

    def ancestors(self) -> frozenset[str]:
        """Names of all (transitive) supertypes."""
        return self._ancestors

    def linearization(self) -> tuple["SchemaType", ...]:
        """Dispatch order for inherited EXCESS functions: self first, then
        ancestors breadth-first in parent declaration order."""
        return self._linearization

    def is_subtype_of(self, other: "SchemaType") -> bool:
        """Nominal subtyping through the lattice (reflexive)."""
        return other.name == self.name or other.name in self._ancestors

    # -- Type protocol ---------------------------------------------------------

    @property
    def tag(self) -> str:  # type: ignore[override]
        return self.name

    def is_assignable_from(self, other: Type) -> bool:
        """A schema-typed slot accepts instances of the type itself or any
        of its subtypes (nominal subtyping, unlike anonymous tuples)."""
        if isinstance(other, SchemaType):
            return other.is_subtype_of(self)
        return False

    def describe(self) -> str:
        return self.name

    def describe_full(self) -> str:
        """Long rendering including parents and the attribute map."""
        inherit = (
            " inherits " + ", ".join(p.name for p in self.parents)
            if self.parents
            else ""
        )
        body = ", ".join(
            f"{ra.name}: {ra.spec.describe()}" for ra in self.resolved_attributes()
        )
        return f"{self.name}({body}){inherit}"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SchemaType):
            return other.name == self.name
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("schema", self.name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SchemaType {self.name}>"
