"""A multi-session network front end for the EXTRA/EXCESS engine.

EXODUS positioned the storage manager and type system behind
application-level servers (paper §2); this package reproduces the user
contract: an asyncio TCP server that fronts one :class:`Database` with
many concurrent client *sessions*, each an isolated
:class:`~repro.core.session.SessionContext` with its own range
declarations, flag overrides, and snapshot-isolated transactions.

Wire protocol (see :mod:`repro.server.protocol`): length-prefixed UTF-8
JSON messages, documented in ``docs/LANGUAGE.md``.

* :class:`ExcessServer` — the asyncio server (one coroutine per
  connection; statements serialize through the engine under a lock,
  exactly matching the MVCC workspace-parking model).
* :class:`ServerThread` — runs a server on a background thread's event
  loop (tests, benchmarks, the CLI).
* :class:`Client` — a blocking socket client; ``query()`` returns a
  regular :class:`~repro.excess.result.Result`.
"""

from repro.server.client import Client, RemoteError, RetryPolicy
from repro.server.protocol import MAX_MESSAGE, PROTOCOL_VERSION
from repro.server.server import ExcessServer, ServerThread, main

__all__ = [
    "Client",
    "ExcessServer",
    "MAX_MESSAGE",
    "PROTOCOL_VERSION",
    "RemoteError",
    "RetryPolicy",
    "ServerThread",
    "main",
]
