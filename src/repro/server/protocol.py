"""Length-prefixed JSON framing shared by the server and the client.

Every message — request or response — is one UTF-8 JSON object preceded
by its byte length as a big-endian ``u32``::

    <length: u32 BE> <payload: UTF-8 JSON>

Requests carry an ``op`` field; responses carry ``ok`` (and either the
op's payload or an ``error`` object). The first request on a connection
must be ``hello``, which names the user and creates the session.

The ``error`` object carries ``type`` (the server-side exception class
name), ``message``, ``serialization`` (True for snapshot-isolation
commit conflicts), and ``retryable`` (True for any transient failure —
conflicts, statement timeouts, admission refusals — that a client may
retry verbatim, e.g. via ``Client.with_retries``).
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Optional

__all__ = [
    "MAX_MESSAGE",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "encode_message",
    "read_message",
    "read_message_async",
]

PROTOCOL_VERSION = 1

_HEADER = struct.Struct(">I")

#: guard against interpreting garbage as a gigantic message
MAX_MESSAGE = 16 * 1024 * 1024


class ProtocolError(Exception):
    """A malformed frame or JSON payload on the wire."""


def encode_message(doc: dict) -> bytes:
    """Frame one message for the wire."""
    payload = json.dumps(doc, ensure_ascii=False).encode("utf-8")
    if len(payload) > MAX_MESSAGE:
        raise ProtocolError(
            f"message of {len(payload)} bytes exceeds the "
            f"{MAX_MESSAGE}-byte limit"
        )
    return _HEADER.pack(len(payload)) + payload


def _decode_payload(payload: bytes) -> dict:
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable message payload: {exc}") from exc
    if not isinstance(doc, dict):
        raise ProtocolError("message payload must be a JSON object")
    return doc


def _check_length(length: int) -> None:
    if length > MAX_MESSAGE:
        raise ProtocolError(
            f"declared message length {length} exceeds the "
            f"{MAX_MESSAGE}-byte limit"
        )


def read_message(sock: socket.socket) -> Optional[dict]:
    """Blocking read of one message; ``None`` on clean EOF."""
    header = _recv_exactly(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    payload = _recv_exactly(sock, length)
    if payload is None:
        raise ProtocolError("connection closed mid-message")
    return _decode_payload(payload)


def _recv_exactly(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on EOF before the first."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if not chunks:
                return None
            raise ProtocolError("connection closed mid-message")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


async def read_message_async(reader: Any) -> Optional[dict]:
    """Asyncio read of one message; ``None`` on clean EOF."""
    import asyncio

    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-message") from exc
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-message") from exc
    return _decode_payload(payload)
