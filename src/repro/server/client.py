"""A blocking client for the EXTRA/EXCESS wire protocol.

Used by the CLI's ``\\connect``, the tests, and the benchmark's worker
processes. ``query()`` reconstructs a regular
:class:`~repro.excess.result.Result` from the response payload, so code
written against the embedded API (including the shell's result
printer) works unchanged against a remote server.
"""

from __future__ import annotations

import socket
from typing import Any, Optional

from repro.errors import ExtraError
from repro.excess.result import Result
from repro.server.protocol import ProtocolError, encode_message, read_message

__all__ = ["Client", "RemoteError"]


class RemoteError(ExtraError):
    """An error reported by the server.

    ``remote_type`` is the server-side exception class name;
    ``serialization`` is True for snapshot-isolation conflicts (the
    canonical client response is to abort and retry the transaction).
    """

    def __init__(self, message: str, remote_type: str = "ExtraError",
                 serialization: bool = False):
        super().__init__(message)
        self.remote_type = remote_type
        self.serialization = serialization


class Client:
    """One connection = one server-side session."""

    def __init__(
        self,
        host: str,
        port: int,
        user: Optional[str] = None,
        name: Optional[str] = None,
        timeout: Optional[float] = 30.0,
    ):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.closed = False
        hello = self.call({"op": "hello", "user": user, "name": name})
        self.session = hello["session"]
        self.user = hello["user"]
        self.protocol = hello["protocol"]

    # -- request/response --------------------------------------------------

    def call(self, request: dict) -> dict:
        """One round trip; raises :class:`RemoteError` on an error
        response and :class:`ProtocolError` on a dropped connection."""
        self._sock.sendall(encode_message(request))
        response = read_message(self._sock)
        if response is None:
            self.closed = True
            raise ProtocolError("server closed the connection")
        if not response.get("ok"):
            error = response.get("error") or {}
            raise RemoteError(
                error.get("message", "unknown server error"),
                remote_type=error.get("type", "ExtraError"),
                serialization=bool(error.get("serialization")),
            )
        return response

    # -- the session API ---------------------------------------------------

    def query(self, text: str) -> Result:
        """Run EXCESS statements in this session."""
        payload = self.call({"op": "query", "text": text})
        result = Result(
            kind=payload["kind"],
            columns=payload["columns"],
            rows=[tuple(row) for row in payload["rows"]],
            count=payload["count"],
            message=payload["message"],
            metrics=payload["metrics"],
        )
        result._plan_tree = payload.get("plan")
        return result

    execute = query  # embedded-API spelling

    def begin(self) -> None:
        self.call({"op": "begin"})

    def commit(self) -> None:
        self.call({"op": "commit"})

    def abort(self) -> None:
        self.call({"op": "abort"})

    def set_flag(self, flag: str, value: Any) -> None:
        """Install a session-local ablation override."""
        self.call({"op": "set", "flag": flag, "value": value})

    def status(self) -> dict:
        return self.call({"op": "status"})

    def close(self) -> None:
        if self.closed:
            return
        try:
            self._sock.sendall(encode_message({"op": "bye"}))
            read_message(self._sock)
        except (OSError, ProtocolError):  # pragma: no cover - best effort
            pass
        finally:
            self.closed = True
            self._sock.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
