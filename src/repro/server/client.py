"""A blocking client for the EXTRA/EXCESS wire protocol.

Used by the CLI's ``\\connect``, the tests, and the benchmark's worker
processes. ``query()`` reconstructs a regular
:class:`~repro.excess.result.Result` from the response payload, so code
written against the embedded API (including the shell's result
printer) works unchanged against a remote server.

Two deadlines govern the socket: ``timeout`` bounds the *connect* (and
the hello handshake), ``read_timeout`` bounds each *response read*. A
long-running statement that outlives ``read_timeout`` surfaces as a
clean :class:`RemoteError` with ``retryable = True`` and closes the
connection (the response stream would otherwise desynchronize — the
late reply has no request to pair with).

``with_retries()`` runs a callable under a :class:`RetryPolicy`:
retryable failures (commit conflicts, statement timeouts, server
overload, clean disconnects) are retried with exponential backoff and
jitter, reconnecting a fresh session when the connection was lost.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, TypeVar

from repro.errors import ExtraError
from repro.excess.result import Result
from repro.server.protocol import ProtocolError, encode_message, read_message

__all__ = ["Client", "RemoteError", "RetryPolicy"]

_T = TypeVar("_T")


class RemoteError(ExtraError):
    """An error reported by the server (or a client-side read timeout).

    ``remote_type`` is the server-side exception class name;
    ``serialization`` is True for snapshot-isolation conflicts (the
    canonical client response is to abort and retry the transaction);
    ``retryable`` is True for any transient failure the client may
    retry verbatim — conflicts, statement timeouts, admission refusals,
    and local read timeouts.
    """

    def __init__(self, message: str, remote_type: str = "ExtraError",
                 serialization: bool = False, retryable: bool = False):
        super().__init__(message)
        self.remote_type = remote_type
        self.serialization = serialization
        self.retryable = retryable or serialization


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full jitter.

    ``attempts`` counts total tries (first + retries); delay before
    retry *n* is ``min(max_delay, base_delay * 2**n)``, scaled by a
    uniform random factor when ``jitter`` is on so synchronized
    retriers spread out.
    """

    attempts: int = 5
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: bool = True

    def delay(self, attempt: int) -> float:
        backoff = min(self.max_delay, self.base_delay * (2 ** attempt))
        if self.jitter:
            backoff *= random.random()
        return backoff


class Client:
    """One connection = one server-side session."""

    def __init__(
        self,
        host: str,
        port: int,
        user: Optional[str] = None,
        name: Optional[str] = None,
        timeout: Optional[float] = 30.0,
        read_timeout: Optional[float] = None,
    ):
        self.host = host
        self.port = port
        self._user = user
        self._name = name
        self.connect_timeout = timeout
        self.read_timeout = read_timeout
        self._connect()

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.closed = False
        hello = self.call(
            {"op": "hello", "user": self._user, "name": self._name}
        )
        self.session = hello["session"]
        self.user = hello["user"]
        self.protocol = hello["protocol"]
        # the connect deadline covered create_connection and the hello
        # round trip; from here on reads run under read_timeout
        self._sock.settimeout(self.read_timeout)

    def reconnect(self) -> None:
        """Open a fresh connection (and a fresh server-side session)."""
        if not self.closed:
            self.close()
        self._connect()

    # -- request/response --------------------------------------------------

    def call(self, request: dict) -> dict:
        """One round trip; raises :class:`RemoteError` on an error
        response or a read timeout, and :class:`ProtocolError` on a
        dropped connection."""
        self._sock.sendall(encode_message(request))
        try:
            response = read_message(self._sock)
        except socket.timeout:
            # a late reply would desynchronize the stream; drop the
            # connection so the next attempt starts clean
            self.closed = True
            self._sock.close()
            raise RemoteError(
                f"no response within read_timeout={self.read_timeout}s",
                remote_type="ReadTimeout",
                retryable=True,
            ) from None
        if response is None:
            self.closed = True
            raise ProtocolError("server closed the connection")
        if not response.get("ok"):
            error = response.get("error") or {}
            raise RemoteError(
                error.get("message", "unknown server error"),
                remote_type=error.get("type", "ExtraError"),
                serialization=bool(error.get("serialization")),
                retryable=bool(error.get("retryable")),
            )
        return response

    # -- retries -----------------------------------------------------------

    def with_retries(
        self,
        fn: Callable[["Client"], _T],
        policy: Optional[RetryPolicy] = None,
    ) -> _T:
        """Run ``fn(self)`` until it succeeds or retries are exhausted.

        Retries on retryable :class:`RemoteError` (conflicts, timeouts,
        overload) and on clean disconnects (:class:`ProtocolError` /
        :class:`ConnectionError`), reconnecting a fresh session first.
        ``fn`` must be a complete retryable unit — e.g. a whole
        begin/.../commit sequence — since a reconnect abandons any
        transaction that was open on the old session.
        """
        policy = policy or RetryPolicy()
        last: Optional[BaseException] = None
        for attempt in range(policy.attempts):
            if self.closed:
                try:
                    self.reconnect()
                except (OSError, ProtocolError, RemoteError) as exc:
                    last = exc
                    time.sleep(policy.delay(attempt))
                    continue
            try:
                return fn(self)
            except RemoteError as exc:
                if not exc.retryable:
                    raise
                last = exc
            except (ProtocolError, ConnectionError) as exc:
                self.closed = True
                last = exc
            time.sleep(policy.delay(attempt))
        assert last is not None
        raise last

    # -- the session API ---------------------------------------------------

    def query(
        self, text: str, retry_policy: Optional[RetryPolicy] = None
    ) -> Result:
        """Run EXCESS statements in this session; an optional
        ``retry_policy`` retries transient failures (see
        :meth:`with_retries`)."""
        if retry_policy is not None:
            return self.with_retries(
                lambda client: client._query_once(text), retry_policy
            )
        return self._query_once(text)

    def _query_once(self, text: str) -> Result:
        payload = self.call({"op": "query", "text": text})
        result = Result(
            kind=payload["kind"],
            columns=payload["columns"],
            rows=[tuple(row) for row in payload["rows"]],
            count=payload["count"],
            message=payload["message"],
            metrics=payload["metrics"],
        )
        result._plan_tree = payload.get("plan")
        return result

    execute = query  # embedded-API spelling

    def begin(self) -> None:
        self.call({"op": "begin"})

    def commit(self) -> None:
        self.call({"op": "commit"})

    def abort(self) -> None:
        self.call({"op": "abort"})

    def set_flag(self, flag: str, value: Any) -> None:
        """Install a session-local ablation override."""
        self.call({"op": "set", "flag": flag, "value": value})

    def status(self) -> dict:
        return self.call({"op": "status"})

    def close(self) -> None:
        if self.closed:
            return
        try:
            self._sock.sendall(encode_message({"op": "bye"}))
            read_message(self._sock)
        except (OSError, ProtocolError):  # pragma: no cover - best effort
            pass
        finally:
            self.closed = True
            self._sock.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
