"""The asyncio TCP server fronting one database with many sessions.

Each accepted connection gets its own coroutine and its own
:class:`~repro.core.session.SessionContext`. Statements from all
connections serialize through the engine under one lock — the MVCC
manager parks and resumes per-session workspaces around each statement,
so interleaved transactions stay snapshot-isolated even though only one
statement executes at a time (the engine mutates shared state in
place and is not internally thread-safe).

Request ops (full wire reference in ``docs/LANGUAGE.md``):

=============  =========================================================
``hello``      ``{user, name?}`` → session created; must be first
``query``      ``{text}`` → columns/rows/count/message/metrics/plan
``begin``      open a transaction in this session
``commit``     commit it (first-committer-wins; conflicts report
               ``error.serialization = true`` so clients can retry)
``abort``      abort it
``set``        ``{flag, value}`` → session-local ablation override
``status``     server + session diagnostics
``bye``        close the session and the connection
=============  =========================================================

Error payloads carry ``error.retryable = true`` for transient failures
(commit conflicts, statement timeouts, admission refusals) so clients
can retry verbatim. Admission control bounds concurrent connections
(``max_connections``) and the statement queue (``max_pending``);
refusals are :class:`~repro.errors.ServerOverloadedError`. SIGTERM and
SIGINT trigger a graceful drain: in-flight statements finish, open
transactions abort, durable state checkpoints, and the listener closes.
"""

from __future__ import annotations

import asyncio
import os
import socket
import threading
from typing import Any, Optional

from repro.core.database import Database
from repro.errors import (
    ExcessError,
    ExtraError,
    SerializationError,
    ServerOverloadedError,
    StatementTimeout,
)
from repro.excess.result import Result, render_value
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    encode_message,
    read_message_async,
)

__all__ = ["ExcessServer", "ServerThread", "main"]

#: session flags a client may override (mirrors the CLI's ablation
#: toggles); values are validators raising :class:`ExcessError`
_FLAG_VALUES: dict[str, Any] = {
    "optimize": (True, False),
    "compile_mode": ("closure", "off"),
    "exec_mode": ("fused", "batch", "row"),
    "batch_size": None,  # validated as a positive integer below
    "statement_timeout_ms": None,  # validated as a non-negative integer
    "memory_budget": None,  # validated as a non-negative integer (bytes)
}


#: every live listening socket, so forked children (parallel query
#: workers, benchmark client processes) can close their inherited
#: copies — a child holding a duplicated LISTEN fd keeps the port bound
#: after the parent drains, and a restart on the same port would fail
#: with EADDRINUSE (SO_REUSEADDR does not cover live listeners)
_LISTENERS: set = set()


def _close_listeners_after_fork() -> None:
    for sock in list(_LISTENERS):
        try:
            # asyncio exposes TransportSocket wrappers (no .close());
            # in the child only the raw fd matters
            os.close(sock.fileno())
        except (OSError, ValueError):  # pragma: no cover - already closed
            pass
    _LISTENERS.clear()


if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(after_in_child=_close_listeners_after_fork)


def _validate_flag(flag: str, value: Any) -> Any:
    if flag not in _FLAG_VALUES:
        raise ExcessError(
            f"unknown session flag {flag!r} "
            f"(expected one of {sorted(_FLAG_VALUES)})"
        )
    if flag == "batch_size":
        if isinstance(value, bool) or not isinstance(value, int) or value < 1:
            raise ExcessError(
                f"batch_size must be a positive integer, got {value!r}"
            )
        return value
    if flag in ("statement_timeout_ms", "memory_budget"):
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            raise ExcessError(
                f"{flag} must be a non-negative integer, got {value!r}"
            )
        return value
    allowed = _FLAG_VALUES[flag]
    if value not in allowed:
        raise ExcessError(
            f"flag {flag!r} must be one of {list(allowed)}, got {value!r}"
        )
    return value


def _json_cell(value: Any) -> Any:
    """One result cell as a JSON-safe value (EXTRA values render to
    their textual form — the wire carries display semantics, not refs
    into the server's heap)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return render_value(value)


def result_payload(result: Result) -> dict:
    """A :class:`Result` as a response payload."""
    return {
        "kind": result.kind,
        "columns": list(result.columns),
        "rows": [[_json_cell(cell) for cell in row] for row in result.rows],
        "count": result.count,
        "message": result.message,
        "metrics": result.metrics,
        "plan": result.plan_tree,
    }


def _error_payload(exc: Exception) -> dict:
    return {
        "ok": False,
        "error": {
            "type": type(exc).__name__,
            "message": str(exc),
            "serialization": isinstance(exc, SerializationError),
            # transient failures a client may retry verbatim: commit
            # conflicts, statement timeouts, and admission refusals
            "retryable": isinstance(
                exc,
                (SerializationError, StatementTimeout, ServerOverloadedError),
            ),
        },
    }


class ExcessServer:
    """One database served to many TCP sessions."""

    def __init__(
        self,
        database: Optional[Database] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: int = 64,
        max_pending: int = 32,
    ):
        self.db = database if database is not None else Database()
        self.host = host
        self.port = port
        self.address: Optional[tuple[str, int]] = None
        self.connections = 0
        self.max_connections = max_connections
        #: statements allowed to queue on the engine lock at once; beyond
        #: this the server answers overload instead of growing the queue
        self.max_pending = max_pending
        self.pending = 0
        self.overloaded_refusals = 0
        self.draining = False
        self._sessions: set = set()
        self._writers: set = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._lock: Optional[asyncio.Lock] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``."""
        self._lock = asyncio.Lock()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        for sock in self._server.sockets:
            _LISTENERS.add(sock)
        bound = self._server.sockets[0].getsockname()
        self.address = (bound[0], bound[1])
        return self.address

    async def drain(self) -> None:
        """Graceful shutdown: refuse new connections, finish what is in
        flight, abort any transactions left open, checkpoint durable
        state, and close every connection."""
        if self.draining:
            return
        self.draining = True
        if self._server is not None:
            for sock in self._server.sockets:
                _LISTENERS.discard(sock)
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # waiting on the lock lets every in-flight statement finish (the
        # engine serializes through it); the short sleep lets handlers
        # flush the acks of those statements before their connections
        # are cut (a cut ack is retried by clients, so this only
        # narrows the duplicate-retry window, it need not close it)
        if self._lock is not None:
            async with self._lock:
                pass
            await asyncio.sleep(0.05)
            async with self._lock:
                for session in list(self._sessions):
                    session.close()
                self._sessions.clear()
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()
        if self.db.durability is not None:
            try:
                self.db.checkpoint()
            except Exception:  # pragma: no cover - best effort on the way out
                pass

    async def stop(self) -> None:
        await self.drain()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # -- one connection ----------------------------------------------------

    async def _handle(self, reader: Any, writer: Any) -> None:
        sock = writer.get_extra_info("socket")
        if sock is not None:
            # each message is one small frame; never batch them
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        if self.draining or self.connections >= self.max_connections:
            self.overloaded_refusals += 1
            reason = (
                "server is draining"
                if self.draining
                else f"connection limit reached ({self.max_connections})"
            )
            try:
                writer.write(
                    encode_message(_error_payload(ServerOverloadedError(reason)))
                )
                await writer.drain()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            return
        self.connections += 1
        self._writers.add(writer)
        session = None
        try:
            while True:
                try:
                    request = await read_message_async(reader)
                except ProtocolError as exc:
                    writer.write(encode_message(_error_payload(exc)))
                    await writer.drain()
                    break
                if request is None:
                    break
                response, done = await self._respond(session, request)
                if session is None and response.get("ok") and \
                        request.get("op") == "hello":
                    session = response.pop("_session")
                    self._sessions.add(session)
                writer.write(encode_message(response))
                await writer.drain()
                if done:
                    break
        finally:
            self.connections -= 1
            self._writers.discard(writer)
            if session is not None and session in self._sessions:
                # close under the lock even when the client vanished
                # mid-transaction — never leave the abort to the GC
                self._sessions.discard(session)
                async with self._lock:
                    session.close()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _respond(
        self, session: Any, request: dict
    ) -> tuple[dict, bool]:
        """Dispatch one request; returns ``(response, close_after)``."""
        op = request.get("op")
        if session is None and op != "hello":
            return (
                _error_payload(
                    ProtocolError("the first request must be 'hello'")
                ),
                True,
            )
        if self.draining:
            return (
                _error_payload(ServerOverloadedError("server is draining")),
                True,
            )
        if self.pending >= self.max_pending:
            self.overloaded_refusals += 1
            return (
                _error_payload(
                    ServerOverloadedError(
                        f"statement queue full ({self.max_pending} pending)"
                    )
                ),
                False,
            )
        self.pending += 1
        try:
            async with self._lock:
                return self._dispatch(session, op, request)
        except (ExtraError, ProtocolError) as exc:
            return _error_payload(exc), False
        except Exception as exc:  # engine bug: report, keep serving
            return _error_payload(exc), False
        finally:
            self.pending -= 1

    def _dispatch(self, session: Any, op: Any, request: dict) -> tuple[dict, bool]:
        if op == "hello":
            if session is not None:
                raise ProtocolError("session already established")
            user = request.get("user") or None
            context = self.db.connect(user=user, name=request.get("name"))
            return (
                {
                    "ok": True,
                    "server": "extra-excess",
                    "protocol": PROTOCOL_VERSION,
                    "session": context.name,
                    "user": context.user,
                    "_session": context,
                },
                False,
            )
        if op == "query":
            text = request.get("text")
            if not isinstance(text, str):
                raise ProtocolError("'query' requires a string 'text'")
            result = session.execute(text)
            payload = result_payload(result)
            payload["ok"] = True
            return payload, False
        if op == "begin":
            session.begin()
            return {"ok": True, "message": "transaction started"}, False
        if op == "commit":
            session.commit()
            return {"ok": True, "message": "transaction committed"}, False
        if op == "abort":
            session.abort()
            return {"ok": True, "message": "transaction aborted"}, False
        if op == "set":
            flag = request.get("flag")
            value = _validate_flag(flag, request.get("value"))
            session.overrides[flag] = value
            return {"ok": True, "flag": flag, "value": value}, False
        if op == "status":
            payload = {
                "ok": True,
                "session": session.name,
                "user": session.user,
                "in_transaction": session.in_transaction,
                "connections": self.connections,
                "max_connections": self.max_connections,
                "pending": self.pending,
                "draining": self.draining,
                "overloaded_refusals": self.overloaded_refusals,
                "isolation_mode": self.db.isolation_mode,
                "open_transactions": sum(
                    1
                    for s in self.db.transactions.sessions.values()
                    if s.txn is not None
                ),
            }
            storage = self.db.storage_stats()
            if storage:
                payload["storage"] = storage
            return payload, False
        if op == "bye":
            return {"ok": True, "message": "goodbye"}, True
        raise ProtocolError(f"unknown op {op!r}")


class ServerThread:
    """An :class:`ExcessServer` on a daemon thread's event loop.

    The blocking shape tests, benchmarks, and the CLI want::

        server = ServerThread(db)
        host, port = server.start()
        ...
        server.stop()
    """

    def __init__(
        self,
        database: Optional[Database] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.server = ExcessServer(database, host=host, port=port)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def db(self) -> Database:
        return self.server.db

    def start(self) -> tuple[str, int]:
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._startup_error is not None:
            raise self._startup_error
        assert self.server.address is not None
        return self.server.address

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:  # bind failure and the like
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.server.stop())
            loop.close()

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            # drain on the loop *before* stopping it: loop.stop() alone
            # abandons handler coroutines mid-await, leaving sessions
            # whose clients vanished mid-transaction to the GC
            try:
                asyncio.run_coroutine_threadsafe(
                    self.server.drain(), self._loop
                ).result(timeout=10.0)
            except Exception:  # pragma: no cover - drain timed out/raced
                pass
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._loop = None
        self._thread = None


def main(argv: Optional[list] = None) -> int:  # pragma: no cover - CLI glue
    """``python -m repro.server`` — serve a database over TCP."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.server",
        description="EXTRA/EXCESS network server (EXODUS reproduction)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8727)
    parser.add_argument(
        "--open", metavar="DIR",
        help="serve a durable database rooted at DIR (WAL + recovery)",
    )
    parser.add_argument(
        "--storage", choices=["memory", "paged"], default="memory",
        help="object store for a fresh in-memory database",
    )
    parser.add_argument(
        "--max-connections", type=int, default=64,
        help="admission limit; further connects get a retryable refusal",
    )
    options = parser.parse_args(argv)

    if options.open:
        db = Database.open(options.open)
    else:
        db = Database(storage=options.storage)

    async def serve() -> None:
        import signal

        server = ExcessServer(
            db,
            host=options.host,
            port=options.port,
            max_connections=options.max_connections,
        )
        host, port = await server.start()
        print(f"extra-excess server listening on {host}:{port}")
        loop = asyncio.get_running_loop()
        stopping = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stopping.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        forever = asyncio.ensure_future(server.serve_forever())
        waiter = asyncio.ensure_future(stopping.wait())
        try:
            await asyncio.wait(
                {forever, waiter}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            for task in (forever, waiter):
                task.cancel()
            # graceful: finish in-flight statements, abort open
            # transactions, checkpoint durable state, close connections
            await server.drain()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        db.close()
    return 0
