"""The asyncio TCP server fronting one database with many sessions.

Each accepted connection gets its own coroutine and its own
:class:`~repro.core.session.SessionContext`. Statements from all
connections serialize through the engine under one lock — the MVCC
manager parks and resumes per-session workspaces around each statement,
so interleaved transactions stay snapshot-isolated even though only one
statement executes at a time (the engine mutates shared state in
place and is not internally thread-safe).

Request ops (full wire reference in ``docs/LANGUAGE.md``):

=============  =========================================================
``hello``      ``{user, name?}`` → session created; must be first
``query``      ``{text}`` → columns/rows/count/message/metrics/plan
``begin``      open a transaction in this session
``commit``     commit it (first-committer-wins; conflicts report
               ``error.serialization = true`` so clients can retry)
``abort``      abort it
``set``        ``{flag, value}`` → session-local ablation override
``status``     server + session diagnostics
``bye``        close the session and the connection
=============  =========================================================
"""

from __future__ import annotations

import asyncio
import socket
import threading
from typing import Any, Optional

from repro.core.database import Database
from repro.errors import ExcessError, ExtraError, SerializationError
from repro.excess.result import Result, render_value
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    encode_message,
    read_message_async,
)

__all__ = ["ExcessServer", "ServerThread", "main"]

#: session flags a client may override (mirrors the CLI's ablation
#: toggles); values are validators raising :class:`ExcessError`
_FLAG_VALUES: dict[str, Any] = {
    "optimize": (True, False),
    "compile_mode": ("closure", "off"),
    "exec_mode": ("fused", "batch", "row"),
    "batch_size": None,  # validated as a positive integer below
}


def _validate_flag(flag: str, value: Any) -> Any:
    if flag not in _FLAG_VALUES:
        raise ExcessError(
            f"unknown session flag {flag!r} "
            f"(expected one of {sorted(_FLAG_VALUES)})"
        )
    if flag == "batch_size":
        if isinstance(value, bool) or not isinstance(value, int) or value < 1:
            raise ExcessError(
                f"batch_size must be a positive integer, got {value!r}"
            )
        return value
    allowed = _FLAG_VALUES[flag]
    if value not in allowed:
        raise ExcessError(
            f"flag {flag!r} must be one of {list(allowed)}, got {value!r}"
        )
    return value


def _json_cell(value: Any) -> Any:
    """One result cell as a JSON-safe value (EXTRA values render to
    their textual form — the wire carries display semantics, not refs
    into the server's heap)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return render_value(value)


def result_payload(result: Result) -> dict:
    """A :class:`Result` as a response payload."""
    return {
        "kind": result.kind,
        "columns": list(result.columns),
        "rows": [[_json_cell(cell) for cell in row] for row in result.rows],
        "count": result.count,
        "message": result.message,
        "metrics": result.metrics,
        "plan": result.plan_tree,
    }


def _error_payload(exc: Exception) -> dict:
    return {
        "ok": False,
        "error": {
            "type": type(exc).__name__,
            "message": str(exc),
            "serialization": isinstance(exc, SerializationError),
        },
    }


class ExcessServer:
    """One database served to many TCP sessions."""

    def __init__(
        self,
        database: Optional[Database] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.db = database if database is not None else Database()
        self.host = host
        self.port = port
        self.address: Optional[tuple[str, int]] = None
        self.connections = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._lock: Optional[asyncio.Lock] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``."""
        self._lock = asyncio.Lock()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        bound = self._server.sockets[0].getsockname()
        self.address = (bound[0], bound[1])
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # -- one connection ----------------------------------------------------

    async def _handle(self, reader: Any, writer: Any) -> None:
        sock = writer.get_extra_info("socket")
        if sock is not None:
            # each message is one small frame; never batch them
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self.connections += 1
        session = None
        try:
            while True:
                try:
                    request = await read_message_async(reader)
                except ProtocolError as exc:
                    writer.write(encode_message(_error_payload(exc)))
                    await writer.drain()
                    break
                if request is None:
                    break
                response, done = await self._respond(session, request)
                if session is None and response.get("ok") and \
                        request.get("op") == "hello":
                    session = response.pop("_session")
                writer.write(encode_message(response))
                await writer.drain()
                if done:
                    break
        finally:
            self.connections -= 1
            if session is not None:
                async with self._lock:
                    session.close()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _respond(
        self, session: Any, request: dict
    ) -> tuple[dict, bool]:
        """Dispatch one request; returns ``(response, close_after)``."""
        op = request.get("op")
        if session is None and op != "hello":
            return (
                _error_payload(
                    ProtocolError("the first request must be 'hello'")
                ),
                True,
            )
        try:
            async with self._lock:
                return self._dispatch(session, op, request)
        except (ExtraError, ProtocolError) as exc:
            return _error_payload(exc), False
        except Exception as exc:  # engine bug: report, keep serving
            return _error_payload(exc), False

    def _dispatch(self, session: Any, op: Any, request: dict) -> tuple[dict, bool]:
        if op == "hello":
            if session is not None:
                raise ProtocolError("session already established")
            user = request.get("user") or None
            context = self.db.connect(user=user, name=request.get("name"))
            return (
                {
                    "ok": True,
                    "server": "extra-excess",
                    "protocol": PROTOCOL_VERSION,
                    "session": context.name,
                    "user": context.user,
                    "_session": context,
                },
                False,
            )
        if op == "query":
            text = request.get("text")
            if not isinstance(text, str):
                raise ProtocolError("'query' requires a string 'text'")
            result = session.execute(text)
            payload = result_payload(result)
            payload["ok"] = True
            return payload, False
        if op == "begin":
            session.begin()
            return {"ok": True, "message": "transaction started"}, False
        if op == "commit":
            session.commit()
            return {"ok": True, "message": "transaction committed"}, False
        if op == "abort":
            session.abort()
            return {"ok": True, "message": "transaction aborted"}, False
        if op == "set":
            flag = request.get("flag")
            value = _validate_flag(flag, request.get("value"))
            session.overrides[flag] = value
            return {"ok": True, "flag": flag, "value": value}, False
        if op == "status":
            return (
                {
                    "ok": True,
                    "session": session.name,
                    "user": session.user,
                    "in_transaction": session.in_transaction,
                    "connections": self.connections,
                    "isolation_mode": self.db.isolation_mode,
                    "open_transactions": sum(
                        1
                        for s in self.db.transactions.sessions.values()
                        if s.txn is not None
                    ),
                },
                False,
            )
        if op == "bye":
            return {"ok": True, "message": "goodbye"}, True
        raise ProtocolError(f"unknown op {op!r}")


class ServerThread:
    """An :class:`ExcessServer` on a daemon thread's event loop.

    The blocking shape tests, benchmarks, and the CLI want::

        server = ServerThread(db)
        host, port = server.start()
        ...
        server.stop()
    """

    def __init__(
        self,
        database: Optional[Database] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.server = ExcessServer(database, host=host, port=port)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def db(self) -> Database:
        return self.server.db

    def start(self) -> tuple[str, int]:
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._startup_error is not None:
            raise self._startup_error
        assert self.server.address is not None
        return self.server.address

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:  # bind failure and the like
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.server.stop())
            loop.close()

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._loop = None
        self._thread = None


def main(argv: Optional[list] = None) -> int:  # pragma: no cover - CLI glue
    """``python -m repro.server`` — serve a database over TCP."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.server",
        description="EXTRA/EXCESS network server (EXODUS reproduction)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8727)
    parser.add_argument(
        "--open", metavar="DIR",
        help="serve a durable database rooted at DIR (WAL + recovery)",
    )
    parser.add_argument(
        "--storage", choices=["memory", "paged"], default="memory",
        help="object store for a fresh in-memory database",
    )
    options = parser.parse_args(argv)

    if options.open:
        db = Database.open(options.open)
    else:
        db = Database(storage=options.storage)

    async def serve() -> None:
        server = ExcessServer(db, host=options.host, port=options.port)
        host, port = await server.start()
        print(f"extra-excess server listening on {host}:{port}")
        try:
            await server.serve_forever()
        except asyncio.CancelledError:  # pragma: no cover
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        db.close()
    return 0
