"""``python -m repro.server`` — serve a database over TCP."""

import sys

from repro.server.server import main

sys.exit(main())  # pragma: no cover - process entry point
