"""Heap files of variable-length records, layered on the buffer pool.

A :class:`HeapFile` owns a growing set of pages and supports insert /
read / update / delete / scan by :class:`~repro.storage.pages.Rid`. All
page access goes through the buffer pool so the file's behaviour shows up
in buffer statistics. Records larger than a standard page are stored in a
dedicated oversized page, simulating the EXODUS storage manager's large
storage objects.

Insert placement uses **free-space size buckets**: pages are bucketed by
``free_bytes.bit_length()``, so finding a page that fits a record is
O(1) in the number of pages (bucket ``b`` guarantees at least ``2^(b-1)``
free bytes). The previous implementation walked every page's free hint
per insert, which made bulk loads quadratic.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.storage.buffer import BufferPool
from repro.storage.pages import PAGE_SIZE, SLOT_OVERHEAD, Rid

__all__ = ["HeapFile"]

#: Candidate pages examined in the boundary bucket (the one bucket whose
#: members *might* fit) before falling through to a guaranteed-fit bucket.
_BOUNDARY_PROBES = 4


class HeapFile:
    """A file of byte records with stable-until-update RIDs.

    ``update`` keeps the RID when the new record still fits in its page
    and otherwise relocates the record, returning the new RID — callers
    (the paged object store) maintain their own OID → RID directory, so no
    forwarding pointers are needed.
    """

    def __init__(self, name: str, pool: BufferPool):
        self.name = name
        self._pool = pool
        #: page numbers belonging to this file, in allocation order
        self._page_nos: list[int] = []
        #: free-bytes hints, kept exact on every page touch
        self._free_hints: dict[int, int] = {}
        #: bucket b holds pages with free_bytes.bit_length() == b
        self._buckets: dict[int, set[int]] = {}
        self._record_count = 0
        #: pages fetched while *placing* inserts (regression-tested to
        #: stay O(1) per insert as the file grows)
        self.placement_probes = 0

    # -- free-space bucketing ----------------------------------------------------

    def _rebucket(self, page_no: int, new_free: int) -> None:
        old_free = self._free_hints.get(page_no)
        if old_free is not None:
            old_bucket = old_free.bit_length()
            if old_bucket == new_free.bit_length():
                self._free_hints[page_no] = new_free
                return
            members = self._buckets.get(old_bucket)
            if members is not None:
                members.discard(page_no)
                if not members:
                    del self._buckets[old_bucket]
        self._free_hints[page_no] = new_free
        if new_free > 0:
            self._buckets.setdefault(new_free.bit_length(), set()).add(page_no)

    def _unbucket(self, page_no: int) -> None:
        free = self._free_hints.pop(page_no, None)
        if free is None:
            return
        members = self._buckets.get(free.bit_length())
        if members is not None:
            members.discard(page_no)
            if not members:
                del self._buckets[free.bit_length()]

    def _candidate_pages(self, needed: int) -> Iterator[int]:
        """Yield page numbers likely to fit ``needed`` bytes, O(1)-ish.

        Bucket ``b`` holds pages with free bytes in ``[2^(b-1), 2^b)``.
        The *boundary* bucket (``needed.bit_length()``) may or may not
        fit, so probe a bounded number of its members; every higher
        bucket guarantees a fit, so one member suffices.
        """
        boundary = needed.bit_length()
        members = self._buckets.get(boundary)
        if members:
            for page_no in list(members)[:_BOUNDARY_PROBES]:
                if self._free_hints.get(page_no, 0) >= needed:
                    yield page_no
        top = max(self._buckets) if self._buckets else boundary
        for bucket in range(boundary + 1, top + 1):
            members = self._buckets.get(bucket)
            if members:
                yield next(iter(members))
                return

    # -- operations -------------------------------------------------------------

    def insert(self, record: bytes) -> Rid:
        """Store ``record`` and return its RID."""
        needed = len(record) + SLOT_OVERHEAD
        if needed > PAGE_SIZE:
            return self._insert_large(record)
        for page_no in self._candidate_pages(needed):
            self.placement_probes += 1
            page = self._pool.fetch_page(page_no)
            try:
                if page.fits(record):
                    slot_no = page.insert(record)
                    self._rebucket(page_no, page.free_bytes)
                    self._record_count += 1
                    return Rid(page_no, slot_no)
                self._rebucket(page_no, page.free_bytes)
            finally:
                self._pool.unpin(page_no, dirty=True)
        page = self._pool.new_page()
        self.placement_probes += 1
        try:
            self._page_nos.append(page.page_no)
            slot_no = page.insert(record)
            self._rebucket(page.page_no, page.free_bytes)
            self._record_count += 1
            return Rid(page.page_no, slot_no)
        finally:
            self._pool.unpin(page.page_no, dirty=True)

    def _insert_large(self, record: bytes) -> Rid:
        """Store an oversized record in a page sized to fit it.

        Routed through the buffer pool (not the raw disk) so the page is
        written back on eviction like any other — essential for the
        file-backed disk, which has no shared page identity to hide
        behind.
        """
        page = self._pool.new_page(size=len(record) + SLOT_OVERHEAD)
        try:
            self._page_nos.append(page.page_no)
            slot_no = page.insert(record)
            self._rebucket(page.page_no, 0)
            self._record_count += 1
            return Rid(page.page_no, slot_no)
        finally:
            self._pool.unpin(page.page_no, dirty=True)

    def read(self, rid: Rid) -> bytes:
        """Return the record stored at ``rid``."""
        page = self._pool.fetch_page(rid.page_no)
        try:
            return page.read(rid.slot_no)
        finally:
            self._pool.unpin(rid.page_no)

    def update(self, rid: Rid, record: bytes) -> Rid:
        """Replace the record at ``rid``; returns the (possibly new) RID."""
        page = self._pool.fetch_page(rid.page_no)
        try:
            if page.update(rid.slot_no, record):
                self._rebucket(rid.page_no, page.free_bytes)
                return rid
            # Does not fit in place: delete here, insert elsewhere.
            page.delete(rid.slot_no)
            self._rebucket(rid.page_no, page.free_bytes)
        finally:
            self._pool.unpin(rid.page_no, dirty=True)
        self._record_count -= 1
        return self.insert(record)

    def delete(self, rid: Rid) -> None:
        """Remove the record at ``rid``."""
        page = self._pool.fetch_page(rid.page_no)
        try:
            page.delete(rid.slot_no)
            self._rebucket(rid.page_no, page.free_bytes)
            self._record_count -= 1
        finally:
            self._pool.unpin(rid.page_no, dirty=True)

    def free_page(self, page_no: int) -> None:
        """Detach an (empty) page from the file and free it on disk."""
        self._page_nos.remove(page_no)
        self._unbucket(page_no)
        self._pool.discard(page_no)
        self._pool.disk.free_page(page_no)

    def exclude_from_placement(self, page_no: int) -> None:
        """Stop targeting ``page_no`` for inserts (used while a vacuum
        drains it — its records must migrate *off* the page)."""
        self._unbucket(page_no)
        self._free_hints[page_no] = 0

    # -- scans ---------------------------------------------------------------------

    def scan(self) -> Iterator[tuple[Rid, bytes]]:
        """Yield every ``(rid, record)`` in page order (a full file scan)."""
        for page_no in list(self._page_nos):
            page = self._pool.fetch_page(page_no)
            try:
                for slot_no, record in page.records():
                    yield Rid(page_no, slot_no), record
            finally:
                self._pool.unpin(page_no)

    # -- introspection ----------------------------------------------------------------

    @property
    def record_count(self) -> int:
        """Number of live records in the file."""
        return self._record_count

    @property
    def page_count(self) -> int:
        """Number of pages the file occupies."""
        return len(self._page_nos)

    def page_numbers(self) -> list[int]:
        """The file's page numbers in allocation order."""
        return list(self._page_nos)

    def free_hint(self, page_no: int) -> Optional[int]:
        """The cached free-bytes hint for ``page_no`` (tests/diagnostics)."""
        return self._free_hints.get(page_no)
