"""Heap files of variable-length records, layered on the buffer pool.

A :class:`HeapFile` owns a growing set of pages and supports insert /
read / update / delete / scan by :class:`~repro.storage.pages.Rid`. All
page access goes through the buffer pool so the file's behaviour shows up
in buffer statistics. Records larger than a standard page are stored in a
dedicated oversized page, simulating the EXODUS storage manager's large
storage objects.
"""

from __future__ import annotations

from typing import Iterator

from repro.storage.buffer import BufferPool
from repro.storage.pages import PAGE_SIZE, SLOT_OVERHEAD, Rid

__all__ = ["HeapFile"]


class HeapFile:
    """A file of byte records with stable-until-update RIDs.

    ``update`` keeps the RID when the new record still fits in its page
    and otherwise relocates the record, returning the new RID — callers
    (the paged object store) maintain their own OID → RID directory, so no
    forwarding pointers are needed.
    """

    def __init__(self, name: str, pool: BufferPool):
        self.name = name
        self._pool = pool
        #: page numbers belonging to this file, in allocation order
        self._page_nos: list[int] = []
        #: approximate free-bytes hints to speed insert placement
        self._free_hints: dict[int, int] = {}
        self._record_count = 0

    # -- operations -------------------------------------------------------------

    def insert(self, record: bytes) -> Rid:
        """Store ``record`` and return its RID."""
        needed = len(record) + SLOT_OVERHEAD
        if needed > PAGE_SIZE:
            return self._insert_large(record)
        for page_no, free in self._free_hints.items():
            if free >= needed:
                page = self._pool.fetch_page(page_no)
                try:
                    if page.fits(record):
                        slot_no = page.insert(record)
                        self._free_hints[page_no] = page.free_bytes
                        self._record_count += 1
                        return Rid(page_no, slot_no)
                    self._free_hints[page_no] = page.free_bytes
                finally:
                    self._pool.unpin(page_no, dirty=True)
        page = self._pool.new_page()
        try:
            self._page_nos.append(page.page_no)
            slot_no = page.insert(record)
            self._free_hints[page.page_no] = page.free_bytes
            self._record_count += 1
            return Rid(page.page_no, slot_no)
        finally:
            self._pool.unpin(page.page_no, dirty=True)

    def _insert_large(self, record: bytes) -> Rid:
        """Store an oversized record in a page sized to fit it."""
        page = self._pool.disk.allocate_page()
        # Resize the fresh page to hold the large object (EXODUS large
        # storage objects lived outside the normal page geometry).
        page.size = len(record) + SLOT_OVERHEAD
        self._page_nos.append(page.page_no)
        slot_no = page.insert(record)
        self._free_hints[page.page_no] = 0
        self._record_count += 1
        return Rid(page.page_no, slot_no)

    def read(self, rid: Rid) -> bytes:
        """Return the record stored at ``rid``."""
        page = self._pool.fetch_page(rid.page_no)
        try:
            return page.read(rid.slot_no)
        finally:
            self._pool.unpin(rid.page_no)

    def update(self, rid: Rid, record: bytes) -> Rid:
        """Replace the record at ``rid``; returns the (possibly new) RID."""
        page = self._pool.fetch_page(rid.page_no)
        try:
            if page.update(rid.slot_no, record):
                self._free_hints[rid.page_no] = page.free_bytes
                return rid
            # Does not fit in place: delete here, insert elsewhere.
            page.delete(rid.slot_no)
            self._free_hints[rid.page_no] = page.free_bytes
        finally:
            self._pool.unpin(rid.page_no, dirty=True)
        self._record_count -= 1
        return self.insert(record)

    def delete(self, rid: Rid) -> None:
        """Remove the record at ``rid``."""
        page = self._pool.fetch_page(rid.page_no)
        try:
            page.delete(rid.slot_no)
            self._free_hints[rid.page_no] = page.free_bytes
            self._record_count -= 1
        finally:
            self._pool.unpin(rid.page_no, dirty=True)

    # -- scans ---------------------------------------------------------------------

    def scan(self) -> Iterator[tuple[Rid, bytes]]:
        """Yield every ``(rid, record)`` in page order (a full file scan)."""
        for page_no in list(self._page_nos):
            page = self._pool.fetch_page(page_no)
            try:
                for slot_no, record in page.records():
                    yield Rid(page_no, slot_no), record
            finally:
                self._pool.unpin(page_no)

    # -- introspection ----------------------------------------------------------------

    @property
    def record_count(self) -> int:
        """Number of live records in the file."""
        return self._record_count

    @property
    def page_count(self) -> int:
        """Number of pages the file occupies."""
        return len(self._page_nos)

    def page_numbers(self) -> list[int]:
        """The file's page numbers in allocation order."""
        return list(self._page_nos)
