"""Access-method index structures: a hash index and a B+-tree.

Indexes map *key values* to sets of OIDs. The EXCESS optimizer (paper
§4.1.3) selects an index through the tabular access-method information in
:mod:`repro.storage.access`; equality predicates can use either structure,
range predicates only the B+-tree.

Keys must be mutually comparable within one index (ints/floats, strings,
or tuples thereof). Null keys are never indexed — EXCESS comparisons with
null are never true, so an unindexed null can never satisfy an indexed
predicate.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Optional

from repro.errors import StorageError

__all__ = ["HashIndex", "BTreeIndex"]


class HashIndex:
    """An equality-only index: key → set of OIDs."""

    kind = "hash"
    supports_range = False

    def __init__(self, name: str = ""):
        self.name = name
        self._buckets: dict[Any, set[int]] = {}
        self._entries = 0

    def insert(self, key: Any, oid: int) -> None:
        """Add ``(key, oid)``; duplicate pairs are idempotent."""
        bucket = self._buckets.setdefault(key, set())
        if oid not in bucket:
            bucket.add(oid)
            self._entries += 1

    def delete(self, key: Any, oid: int) -> bool:
        """Remove ``(key, oid)``; returns True when the pair existed."""
        bucket = self._buckets.get(key)
        if bucket is None or oid not in bucket:
            return False
        bucket.discard(oid)
        self._entries -= 1
        if not bucket:
            del self._buckets[key]
        return True

    def search(self, key: Any) -> list[int]:
        """OIDs whose indexed key equals ``key``."""
        return sorted(self._buckets.get(key, ()))

    def keys(self) -> list[Any]:
        """All distinct indexed keys (unordered structure; sorted here for
        deterministic output)."""
        return sorted(self._buckets, key=lambda k: (str(type(k)), k))

    def __len__(self) -> int:
        return self._entries

    def __contains__(self, key: Any) -> bool:
        return key in self._buckets


class _BTreeNode:
    """One node of the B+-tree.

    Leaves hold ``keys[i] → values[i]`` (a list of OIDs per key) and are
    chained through ``next_leaf`` for range scans. Internal nodes hold
    separator ``keys`` and ``len(keys) + 1`` children.
    """

    __slots__ = ("leaf", "keys", "values", "children", "next_leaf")

    def __init__(self, leaf: bool):
        self.leaf = leaf
        self.keys: list[Any] = []
        self.values: list[list[int]] = []  # leaves only
        self.children: list[_BTreeNode] = []  # internal only
        self.next_leaf: Optional[_BTreeNode] = None  # leaves only


class BTreeIndex:
    """A B+-tree supporting equality search, range scans, and deletion.

    ``order`` is the maximum number of keys per node (≥ 3). The tree keeps
    the classic invariants: every node except the root holds at least
    ``order // 2`` keys, all leaves sit at the same depth, and leaf keys
    appear in strictly increasing order across the leaf chain — properties
    the hypothesis test-suite checks directly via :meth:`check_invariants`.
    """

    kind = "btree"
    supports_range = True

    def __init__(self, name: str = "", order: int = 32):
        if order < 3:
            raise StorageError(f"btree order must be >= 3, got {order}")
        self.name = name
        self.order = order
        self._root = _BTreeNode(leaf=True)
        self._entries = 0

    # -- search ------------------------------------------------------------------

    def _find_leaf(self, key: Any) -> _BTreeNode:
        node = self._root
        while not node.leaf:
            index = bisect.bisect_right(node.keys, key)
            node = node.children[index]
        return node

    def search(self, key: Any) -> list[int]:
        """OIDs whose indexed key equals ``key``."""
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return sorted(leaf.values[index])
        return []

    def range_scan(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[tuple[Any, int]]:
        """Yield ``(key, oid)`` pairs with ``low <= key <= high`` in key
        order; either bound may be ``None`` for an open end."""
        if low is None:
            node: Optional[_BTreeNode] = self._leftmost_leaf()
            start = 0
        else:
            node = self._find_leaf(low)
            start = (
                bisect.bisect_left(node.keys, low)
                if include_low
                else bisect.bisect_right(node.keys, low)
            )
        while node is not None:
            for i in range(start, len(node.keys)):
                key = node.keys[i]
                if high is not None:
                    if include_high and key > high:
                        return
                    if not include_high and key >= high:
                        return
                for oid in sorted(node.values[i]):
                    yield key, oid
            node = node.next_leaf
            start = 0

    def _leftmost_leaf(self) -> _BTreeNode:
        node = self._root
        while not node.leaf:
            node = node.children[0]
        return node

    # -- insertion -----------------------------------------------------------------

    def insert(self, key: Any, oid: int) -> None:
        """Add ``(key, oid)``; duplicate pairs are idempotent."""
        root = self._root
        if len(root.keys) >= self.order:
            new_root = _BTreeNode(leaf=False)
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
        self._insert_nonfull(self._root, key, oid)

    def _insert_nonfull(self, node: _BTreeNode, key: Any, oid: int) -> None:
        while not node.leaf:
            index = bisect.bisect_right(node.keys, key)
            child = node.children[index]
            if len(child.keys) >= self.order:
                self._split_child(node, index)
                # keys equal to the separator live in the right sibling
                # (leaf splits put the separator key there)
                if key >= node.keys[index]:
                    index += 1
                child = node.children[index]
            node = child
        index = bisect.bisect_left(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            if oid not in node.values[index]:
                node.values[index].append(oid)
                self._entries += 1
            return
        node.keys.insert(index, key)
        node.values.insert(index, [oid])
        self._entries += 1

    def _split_child(self, parent: _BTreeNode, index: int) -> None:
        child = parent.children[index]
        mid = len(child.keys) // 2
        sibling = _BTreeNode(leaf=child.leaf)
        if child.leaf:
            sibling.keys = child.keys[mid:]
            sibling.values = child.values[mid:]
            child.keys = child.keys[:mid]
            child.values = child.values[:mid]
            sibling.next_leaf = child.next_leaf
            child.next_leaf = sibling
            separator = sibling.keys[0]
        else:
            separator = child.keys[mid]
            sibling.keys = child.keys[mid + 1 :]
            sibling.children = child.children[mid + 1 :]
            child.keys = child.keys[:mid]
            child.children = child.children[: mid + 1]
        parent.keys.insert(index, separator)
        parent.children.insert(index + 1, sibling)

    # -- deletion -------------------------------------------------------------------

    def delete(self, key: Any, oid: int) -> bool:
        """Remove ``(key, oid)``; returns True when the pair existed."""
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            return False
        if oid not in leaf.values[index]:
            return False
        leaf.values[index].remove(oid)
        self._entries -= 1
        if leaf.values[index]:
            return True
        # The key is now empty: remove it and rebalance bottom-up.
        self._delete_key(self._root, key)
        if not self._root.leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]
        return True

    def _min_keys(self) -> int:
        # Splitting a full internal node of `order` keys promotes one key
        # and leaves floor((order-1)/2) on the smaller side, so that is
        # the minimum legal occupancy for non-root nodes.
        return (self.order - 1) // 2

    def _delete_key(self, node: _BTreeNode, key: Any) -> None:
        if node.leaf:
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.keys.pop(index)
                node.values.pop(index)
            return
        index = bisect.bisect_right(node.keys, key)
        child = node.children[index]
        self._delete_key(child, key)
        if self._underfull(child):
            self._rebalance(node, index)

    def _underfull(self, node: _BTreeNode) -> bool:
        return len(node.keys) < self._min_keys()

    def _rebalance(self, parent: _BTreeNode, index: int) -> None:
        left = parent.children[index - 1] if index > 0 else None
        right = (
            parent.children[index + 1] if index + 1 < len(parent.children) else None
        )
        if left is not None and len(left.keys) > self._min_keys():
            self._borrow_from_left(parent, index)
        elif right is not None and len(right.keys) > self._min_keys():
            self._borrow_from_right(parent, index)
        elif left is not None:
            self._merge(parent, index - 1)
        elif right is not None:
            self._merge(parent, index)

    def _borrow_from_left(self, parent: _BTreeNode, index: int) -> None:
        child = parent.children[index]
        left = parent.children[index - 1]
        if child.leaf:
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[index - 1] = child.keys[0]
        else:
            child.keys.insert(0, parent.keys[index - 1])
            parent.keys[index - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())

    def _borrow_from_right(self, parent: _BTreeNode, index: int) -> None:
        child = parent.children[index]
        right = parent.children[index + 1]
        if child.leaf:
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[index] = right.keys[0]
        else:
            child.keys.append(parent.keys[index])
            parent.keys[index] = right.keys.pop(0)
            child.children.append(right.children.pop(0))

    def _merge(self, parent: _BTreeNode, index: int) -> None:
        """Merge ``children[index + 1]`` into ``children[index]``."""
        left = parent.children[index]
        right = parent.children[index + 1]
        if left.leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next_leaf = right.next_leaf
        else:
            left.keys.append(parent.keys[index])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(index)
        parent.children.pop(index + 1)

    # -- introspection ------------------------------------------------------------------

    def keys(self) -> list[Any]:
        """All distinct keys in ascending order."""
        out: list[Any] = []
        node: Optional[_BTreeNode] = self._leftmost_leaf()
        while node is not None:
            out.extend(node.keys)
            node = node.next_leaf
        return out

    def __len__(self) -> int:
        return self._entries

    def __contains__(self, key: Any) -> bool:
        return bool(self.search(key))

    def height(self) -> int:
        """Tree height (1 for a lone leaf root)."""
        height = 1
        node = self._root
        while not node.leaf:
            height += 1
            node = node.children[0]
        return height

    def check_invariants(self) -> None:
        """Verify structural invariants; raises :class:`StorageError` on
        any violation. Used by the property-based test-suite."""
        leaf_depths: set[int] = set()

        def walk(node: _BTreeNode, depth: int, low: Any, high: Any) -> None:
            if node is not self._root and len(node.keys) < self._min_keys():
                raise StorageError(f"underfull node at depth {depth}")
            if len(node.keys) > self.order:
                raise StorageError(f"overfull node at depth {depth}")
            if any(
                node.keys[i] >= node.keys[i + 1] for i in range(len(node.keys) - 1)
            ):
                raise StorageError("keys not strictly increasing within node")
            for key in node.keys:
                if low is not None and key < low:
                    raise StorageError("key below subtree lower bound")
                if high is not None and key >= high:
                    raise StorageError("key above subtree upper bound")
            if node.leaf:
                leaf_depths.add(depth)
                if len(node.keys) != len(node.values):
                    raise StorageError("leaf keys/values length mismatch")
                if any(not v for v in node.values):
                    raise StorageError("empty OID list left in leaf")
                return
            if len(node.children) != len(node.keys) + 1:
                raise StorageError("internal child count mismatch")
            bounds = [low] + list(node.keys) + [high]
            for i, child in enumerate(node.children):
                walk(child, depth + 1, bounds[i], bounds[i + 1])

        walk(self._root, 0, None, None)
        if len(leaf_depths) > 1:
            raise StorageError(f"leaves at unequal depths: {sorted(leaf_depths)}")
        chained = []
        node: Optional[_BTreeNode] = self._leftmost_leaf()
        while node is not None:
            chained.extend(node.keys)
            node = node.next_leaf
        if chained != sorted(chained):
            raise StorageError("leaf chain not in key order")
        if sum(1 for _ in chained) != len(set(chained)):
            raise StorageError("duplicate keys across leaves")
        total = 0
        node = self._leftmost_leaf()
        while node is not None:
            total += sum(len(v) for v in node.values)
            node = node.next_leaf
        if total != self._entries:
            raise StorageError(
                f"entry count mismatch: counted {total}, recorded {self._entries}"
            )
