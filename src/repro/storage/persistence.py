"""Whole-database snapshots.

EXODUS delegated durability to its storage manager; here a database is
made durable by snapshotting the complete engine state (catalog, object
table, named objects, indexes, grants) with :mod:`pickle`. Snapshots are
atomic: the new image is written to a temporary file and renamed over the
target, so a crash mid-save never corrupts an existing snapshot.

Limitations (documented, inherent to pickling): ADT classes and any
Python callables registered with the engine (ADT function
implementations, user-defined aggregates) must be importable module-level
objects — lambdas or REPL-local classes will fail to pickle.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import TYPE_CHECKING

from repro.errors import StorageError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.database import Database

__all__ = ["save_snapshot", "load_snapshot"]

#: magic header guarding against loading arbitrary pickles as databases
_MAGIC = b"EXTRA-EXCESS-SNAPSHOT-v1\n"


def save_snapshot(database: "Database", path: str) -> int:
    """Atomically write ``database`` to ``path``; returns bytes written."""
    payload = _MAGIC + pickle.dumps(database, protocol=pickle.HIGHEST_PROTOCOL)
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(prefix=".snapshot-", dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp_path, path)
    except OSError as exc:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise StorageError(f"snapshot write failed: {exc}") from exc
    return len(payload)


def load_snapshot(path: str) -> "Database":
    """Load a database previously written by :func:`save_snapshot`."""
    try:
        with open(path, "rb") as handle:
            payload = handle.read()
    except OSError as exc:
        raise StorageError(f"cannot read snapshot {path!r}: {exc}") from exc
    if not payload.startswith(_MAGIC):
        raise StorageError(f"{path!r} is not an EXTRA/EXCESS snapshot")
    try:
        database = pickle.loads(payload[len(_MAGIC):])
    except Exception as exc:  # pickle raises many types
        raise StorageError(f"snapshot {path!r} is corrupt: {exc}") from exc
    from repro.core.database import Database

    if not isinstance(database, Database):
        raise StorageError(f"snapshot {path!r} does not contain a database")
    return database
