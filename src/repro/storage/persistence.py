"""Whole-database snapshots.

EXODUS delegated durability to its storage manager; here a database is
made durable by snapshotting the complete engine state (catalog, object
table, named objects, indexes, grants) with :mod:`pickle`. Snapshots are
atomic **and durable**: the new image is written to a temporary file,
fsynced, renamed over the target, and the containing directory is
fsynced — so a crash (or power loss) mid-save never corrupts an
existing snapshot and a completed save survives the rename.

Two format versions exist:

* **v1** (``EXTRA-EXCESS-SNAPSHOT-v1``): magic + pickle. Still loadable;
  reads as "no WAL position" (LSN 0).
* **v2** (``EXTRA-EXCESS-SNAPSHOT-v2``): magic + pickle + an 8-byte
  little-endian footer holding the last WAL LSN whose effects the
  snapshot contains. Recovery replays only log records *above* the
  footer LSN, which makes a crash between checkpoint-snapshot and
  log rotation harmless (replay skips what the snapshot already has).

Limitations (documented, inherent to pickling): ADT classes and any
Python callables registered with the engine (ADT function
implementations, user-defined aggregates) must be importable module-level
objects — lambdas or REPL-local classes will fail to pickle.
"""

from __future__ import annotations

import os
import pickle
import struct
import tempfile
from typing import TYPE_CHECKING

from repro.errors import StorageError
from repro.util import faultinject

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.database import Database

__all__ = ["save_snapshot", "load_snapshot", "read_snapshot"]

_MAGIC_V1 = b"EXTRA-EXCESS-SNAPSHOT-v1\n"
_MAGIC_V2 = b"EXTRA-EXCESS-SNAPSHOT-v2\n"
#: current write format
_MAGIC = _MAGIC_V2

_FOOTER = struct.Struct("<Q")  # last WAL LSN contained in the snapshot

faultinject.register("snapshot.before_sync")
faultinject.register("snapshot.before_replace")
faultinject.register("snapshot.after_replace")


def save_snapshot(database: "Database", path: str, wal_lsn: int = 0) -> int:
    """Atomically and durably write ``database`` to ``path``.

    ``wal_lsn`` is the last WAL LSN whose effects the snapshot contains
    (0 for standalone saves). Returns bytes written.
    """
    payload = (
        _MAGIC_V2
        + pickle.dumps(database, protocol=pickle.HIGHEST_PROTOCOL)
        + _FOOTER.pack(wal_lsn)
    )
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(prefix=".snapshot-", dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            faultinject.crash_point("snapshot.before_sync")
            os.fsync(handle.fileno())
        faultinject.crash_point("snapshot.before_replace")
        os.replace(tmp_path, path)
        faultinject.crash_point("snapshot.after_replace")
        _fsync_directory(directory)
    except OSError as exc:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise StorageError(f"snapshot write failed: {exc}") from exc
    except BaseException:
        # a simulated crash between write and replace leaves the tmp
        # file behind on the real filesystem we test on; scrub it so
        # repeated sweep runs don't accumulate litter (a real crash
        # leaves it too — recovery ignores dot-prefixed temp files)
        if os.path.exists(tmp_path):
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
        raise
    return len(payload)


def read_snapshot(path: str) -> tuple["Database", int]:
    """Load a snapshot; returns ``(database, last_wal_lsn)``.

    Accepts both format versions (v1 reads as LSN 0). A corrupt or
    unknown header raises :class:`StorageError` naming both supported
    versions.
    """
    try:
        with open(path, "rb") as handle:
            payload = handle.read()
    except OSError as exc:
        raise StorageError(f"cannot read snapshot {path!r}: {exc}") from exc
    if payload.startswith(_MAGIC_V2):
        body = payload[len(_MAGIC_V2):]
        if len(body) < _FOOTER.size:
            raise StorageError(
                f"snapshot {path!r} is corrupt: v2 WAL-position footer missing"
            )
        (wal_lsn,) = _FOOTER.unpack(body[-_FOOTER.size:])
        pickled = body[:-_FOOTER.size]
    elif payload.startswith(_MAGIC_V1):
        wal_lsn = 0
        pickled = payload[len(_MAGIC_V1):]
    else:
        raise StorageError(
            f"{path!r} is not an EXTRA/EXCESS snapshot (expected header "
            f"{_MAGIC_V1!r} or {_MAGIC_V2!r})"
        )
    try:
        database = pickle.loads(pickled)
    except Exception as exc:  # pickle raises many types
        raise StorageError(f"snapshot {path!r} is corrupt: {exc}") from exc
    from repro.core.database import Database

    if not isinstance(database, Database):
        raise StorageError(f"snapshot {path!r} does not contain a database")
    return database, wal_lsn


def load_snapshot(path: str) -> "Database":
    """Load a database previously written by :func:`save_snapshot`."""
    database, _wal_lsn = read_snapshot(path)
    return database


def _fsync_directory(directory: str) -> None:
    """Flush a directory entry (makes the rename durable on POSIX)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # platforms without directory fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
