"""Page-buffered temp files for spilling operator state to disk.

The memory-budgeted operators (HashJoin builds, Sort runs, Aggregate
partitions) write overflow rows through :class:`SpillFile`: records are
pickled, packed into the slotted :class:`~repro.storage.pages.Page`
containers the paged store uses (one page's worth of records is flushed
to the temp file at a time, so writes happen in page-sized strides and
spill volume is accounted the way the buffer pool would see it), and
read back in insertion order.

On-disk framing is one ``u32`` big-endian length per record followed by
the pickle bytes — self-describing, so a reader needs no page
directory. The file is an anonymous ``TemporaryFile``: the OS reclaims
it when the last handle closes, so even a statement that unwinds
mid-spill (timeout, error, crash) leaks nothing.
"""

from __future__ import annotations

import pickle
import struct
import tempfile
from typing import Any, Iterator

from repro.storage.pages import PAGE_SIZE, Page

__all__ = ["SpillFile"]

_LEN = struct.Struct(">I")


class SpillFile:
    """An append-then-scan temp file of pickled records.

    Append all records first, then iterate (iteration flushes the
    buffered page and rewinds; appending after a scan starts is a usage
    error). ``bytes_written`` and ``pages`` feed the operator's
    ``spill=[partitions=N, bytes=M]`` EXPLAIN annotation.
    """

    __slots__ = ("_file", "_page", "records", "pages", "bytes_written",
                 "closed")

    def __init__(self) -> None:
        self._file = tempfile.TemporaryFile(prefix="excess-spill-")
        self._page = Page(0)
        self.records = 0
        self.pages = 0
        self.bytes_written = 0
        self.closed = False

    def append(self, record: Any) -> None:
        """Pickle and buffer one record, flushing full pages."""
        blob = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        if not self._page.fits(blob):
            self._flush_page()
            if not self._page.fits(blob):
                # oversized record: give it a page of its own size
                self._page = Page(self.pages, size=len(blob) + PAGE_SIZE)
        self._page.insert(blob)
        self.records += 1

    def _flush_page(self) -> None:
        if self._page.record_count() == 0:
            return
        for _slot, blob in self._page.records():
            self._file.write(_LEN.pack(len(blob)))
            self._file.write(blob)
            self.bytes_written += _LEN.size + len(blob)
        self.pages += 1
        self._page = Page(self.pages)

    def __iter__(self) -> Iterator[Any]:
        """Yield every record in insertion order."""
        self._flush_page()
        self._file.seek(0)
        read = self._file.read
        while True:
            header = read(_LEN.size)
            if not header:
                return
            (length,) = _LEN.unpack(header)
            yield pickle.loads(read(length))

    def close(self) -> None:
        """Release the file (idempotent; the OS deletes it)."""
        if not self.closed:
            self.closed = True
            self._file.close()

    def __enter__(self) -> "SpillFile":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
