"""Slotted pages and record identifiers.

Pages are fixed-size byte containers organized as classic slotted pages: a
slot directory maps slot numbers to (offset, length) pairs inside the page
body, records are stored back-to-front, and deleting a record leaves a
hole that :meth:`Page.compact` can squeeze out. A record is addressed by a
:class:`Rid` — ``(page_no, slot_no)`` — which stays stable across in-page
compaction (slot numbers are never reassigned while occupied).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import StorageError

__all__ = ["PAGE_SIZE", "SLOT_OVERHEAD", "Rid", "Page"]

#: Default page size in bytes, matching typical EXODUS-era 4KB pages.
PAGE_SIZE = 4096

#: Bookkeeping bytes charged per slot (simulates the slot directory entry).
SLOT_OVERHEAD = 8

#: On-disk page header: page_no, lsn, logical size, slot count.
_PAGE_HEADER = struct.Struct("<QQQI")

#: Per-slot length prefix; -1 marks an empty slot.
_SLOT_LEN = struct.Struct("<q")


@dataclass(frozen=True, order=True)
class Rid:
    """A record identifier: page number plus slot number within the page."""

    page_no: int
    slot_no: int

    def __repr__(self) -> str:
        return f"Rid({self.page_no}, {self.slot_no})"


class Page:
    """A slotted page holding variable-length byte records.

    The implementation stores each record's bytes in a slot list rather
    than packing a real byte array, but it charges space *exactly* as a
    packed page would: every record consumes ``len(record) +
    SLOT_OVERHEAD`` bytes of the page's ``size`` budget, so page-fill and
    page-count behaviour (what the buffer-pool benchmarks measure) match a
    byte-exact implementation.
    """

    __slots__ = ("page_no", "size", "_slots", "_used", "dirty", "lsn")

    def __init__(self, page_no: int, size: int = PAGE_SIZE):
        self.page_no = page_no
        self.size = size
        self._slots: list[Optional[bytes]] = []
        self._used = 0
        self.dirty = False
        #: LSN of the last write that touched this page (stamped by the
        #: disk manager on write-back; drives incremental checkpoints).
        self.lsn = 0

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        # Tolerate pickles from before the ``lsn`` slot existed.
        self.lsn = 0
        if isinstance(state, tuple):
            plain, slots = state
            for mapping in (plain, slots):
                for key, value in (mapping or {}).items():
                    setattr(self, key, value)
        else:
            for key, value in state.items():
                setattr(self, key, value)

    # -- capacity -------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        """Bytes currently consumed, including slot overhead."""
        return self._used

    @property
    def free_bytes(self) -> int:
        """Bytes still available for new records."""
        return self.size - self._used

    def fits(self, record: bytes) -> bool:
        """True when ``record`` can be inserted into this page."""
        return len(record) + SLOT_OVERHEAD <= self.free_bytes

    @staticmethod
    def capacity_for(record: bytes, size: int = PAGE_SIZE) -> bool:
        """True when ``record`` could fit in an *empty* page of ``size``."""
        return len(record) + SLOT_OVERHEAD <= size

    # -- record operations ------------------------------------------------------

    def insert(self, record: bytes) -> int:
        """Store ``record`` and return its slot number.

        Reuses the lowest free slot if one exists. Raises
        :class:`StorageError` when the record does not fit.
        """
        if not self.fits(record):
            raise StorageError(
                f"record of {len(record)} bytes does not fit in page "
                f"{self.page_no} ({self.free_bytes} free)"
            )
        self._used += len(record) + SLOT_OVERHEAD
        self.dirty = True
        for slot_no, existing in enumerate(self._slots):
            if existing is None:
                self._slots[slot_no] = record
                return slot_no
        self._slots.append(record)
        return len(self._slots) - 1

    def read(self, slot_no: int) -> bytes:
        """Return the record in ``slot_no``; raises on empty/unknown slots."""
        record = self._slot(slot_no)
        if record is None:
            raise StorageError(f"slot {slot_no} of page {self.page_no} is empty")
        return record

    def update(self, slot_no: int, record: bytes) -> bool:
        """Replace the record in ``slot_no`` in place.

        Returns True on success; returns False (without modifying the
        page) when the new record no longer fits, in which case the caller
        must relocate the record to another page.
        """
        old = self.read(slot_no)
        delta = len(record) - len(old)
        if delta > self.free_bytes:
            return False
        self._slots[slot_no] = record
        self._used += delta
        self.dirty = True
        return True

    def delete(self, slot_no: int) -> None:
        """Free ``slot_no``; the slot may be reused by later inserts."""
        record = self.read(slot_no)
        self._slots[slot_no] = None
        self._used -= len(record) + SLOT_OVERHEAD
        self.dirty = True

    def compact(self) -> None:
        """Drop trailing empty slots (space accounting is already exact)."""
        while self._slots and self._slots[-1] is None:
            self._slots.pop()

    # -- binary image (for the file-backed disk) ---------------------------------

    def to_bytes(self) -> bytes:
        """Serialize the page to its on-disk image.

        The image is self-describing: a fixed header followed by a
        length-prefixed entry per slot (``-1`` marks an empty slot), so
        holes and slot numbers survive a round trip exactly.
        """
        parts = [
            _PAGE_HEADER.pack(self.page_no, self.lsn, self.size, len(self._slots))
        ]
        for record in self._slots:
            if record is None:
                parts.append(_SLOT_LEN.pack(-1))
            else:
                parts.append(_SLOT_LEN.pack(len(record)))
                parts.append(record)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Page":
        """Reconstruct a page from its on-disk image."""
        page_no, lsn, size, nslots = _PAGE_HEADER.unpack_from(data, 0)
        page = cls(page_no, size=size)
        page.lsn = lsn
        offset = _PAGE_HEADER.size
        used = 0
        slots: list[Optional[bytes]] = []
        for _ in range(nslots):
            (length,) = _SLOT_LEN.unpack_from(data, offset)
            offset += _SLOT_LEN.size
            if length < 0:
                slots.append(None)
            else:
                slots.append(bytes(data[offset:offset + length]))
                offset += length
                used += length + SLOT_OVERHEAD
        page._slots = slots
        page._used = used
        return page

    # -- iteration ---------------------------------------------------------------

    def records(self) -> Iterator[tuple[int, bytes]]:
        """Yield ``(slot_no, record)`` for every occupied slot, in order."""
        for slot_no, record in enumerate(self._slots):
            if record is not None:
                yield slot_no, record

    def record_count(self) -> int:
        """Number of occupied slots."""
        return sum(1 for r in self._slots if r is not None)

    def _slot(self, slot_no: int) -> Optional[bytes]:
        if slot_no < 0 or slot_no >= len(self._slots):
            raise StorageError(
                f"slot {slot_no} out of range for page {self.page_no}"
            )
        return self._slots[slot_no]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Page {self.page_no} records={self.record_count()} "
            f"used={self._used}/{self.size}>"
        )
