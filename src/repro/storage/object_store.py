"""The paged object store backing the EXTRA object table.

Implements the :class:`repro.core.identity.ObjectStore` protocol on top
of a heap file: object records are pickled into slotted pages and a
directory maps OID → RID. Because EXTRA objects are mutable Python
structures that callers hold live references to, the store also keeps a
**live-object cache** (OID → deserialized record). ``fetch`` serves from
the cache; every ``insert``/``update`` re-serializes through the heap
file so page- and I/O-level accounting stays faithful; and
:meth:`fetch_cold` bypasses the cache entirely, deserializing from pages
through the buffer pool — the storage benchmarks use it to measure real
page behaviour.
"""

from __future__ import annotations

import pickle
from typing import Iterator, Optional

from repro.core.identity import Oid, StoredObject
from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager
from repro.storage.heap import HeapFile
from repro.storage.pages import Rid

__all__ = ["PagedObjectStore"]


class PagedObjectStore:
    """Object store with slotted-page persistence and a live-object cache."""

    def __init__(
        self,
        disk: Optional[DiskManager] = None,
        pool: Optional[BufferPool] = None,
        pool_capacity: int = 64,
    ):
        self.disk = disk if disk is not None else DiskManager()
        self.pool = pool if pool is not None else BufferPool(self.disk, pool_capacity)
        self.file = HeapFile("objects", self.pool)
        self._directory: dict[Oid, Rid] = {}
        self._live: dict[Oid, StoredObject] = {}

    # -- ObjectStore protocol ------------------------------------------------------

    def insert(self, oid: Oid, record: StoredObject) -> None:
        """Serialize ``record`` into the heap file and cache it live."""
        if oid in self._directory:
            raise StorageError(f"oid {oid} already present")
        rid = self.file.insert(self._serialize(record))
        self._directory[oid] = rid
        self._live[oid] = record

    def fetch(self, oid: Oid) -> StoredObject:
        """Return the live record for ``oid`` (KeyError when absent)."""
        if oid not in self._directory:
            raise KeyError(oid)
        record = self._live.get(oid)
        if record is None:
            record = self.fetch_cold(oid)
            self._live[oid] = record
        return record

    def update(self, oid: Oid, record: StoredObject) -> None:
        """Re-serialize ``record`` to its page (relocating if it grew)."""
        rid = self._directory.get(oid)
        if rid is None:
            raise StorageError(f"cannot update unknown oid {oid}")
        new_rid = self.file.update(rid, self._serialize(record))
        self._directory[oid] = new_rid
        self._live[oid] = record

    def delete(self, oid: Oid) -> None:
        """Drop the record and free its page slot."""
        rid = self._directory.pop(oid, None)
        self._live.pop(oid, None)
        if rid is not None:
            self.file.delete(rid)

    def __contains__(self, oid: Oid) -> bool:
        return oid in self._directory

    def oids(self) -> Iterator[Oid]:
        """All live OIDs (directory order = insertion order)."""
        return iter(list(self._directory))

    def __len__(self) -> int:
        return len(self._directory)

    # -- cold access for benchmarking -------------------------------------------------

    def fetch_cold(self, oid: Oid) -> StoredObject:
        """Deserialize ``oid`` from its page through the buffer pool,
        bypassing the live-object cache (used to benchmark real page I/O)."""
        rid = self._directory.get(oid)
        if rid is None:
            raise KeyError(oid)
        return self._deserialize(self.file.read(rid))

    def evict_live_cache(self) -> None:
        """Drop the live-object cache so subsequent fetches hit pages.

        Only safe when no outside code holds references it expects to
        share mutations with; benchmarks call it between phases.
        """
        self._live.clear()

    # -- serialization -----------------------------------------------------------------

    @staticmethod
    def _serialize(record: StoredObject) -> bytes:
        return pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def _deserialize(data: bytes) -> StoredObject:
        return pickle.loads(data)

    # -- introspection -----------------------------------------------------------------

    @property
    def page_count(self) -> int:
        """Pages occupied by the object file."""
        return self.file.page_count

    def rid_of(self, oid: Oid) -> Rid:
        """The current RID of ``oid`` (for tests and diagnostics)."""
        try:
            return self._directory[oid]
        except KeyError:
            raise StorageError(f"unknown oid {oid}") from None
