"""The paged object store backing the EXTRA object table.

Implements the :class:`repro.core.identity.ObjectStore` protocol on top
of a heap file: object records are pickled into slotted pages and a
directory maps OID → RID. Because EXTRA objects are mutable Python
structures that callers hold live references to, the store also keeps a
**live-object cache** (OID → deserialized record).

The cache is *bounded* when ``cache_capacity`` is set: least-recently
used objects are evicted, dirty ones re-serialized through the heap file
first (write-back), so cold objects leave RAM entirely and ``fetch``
transparently faults them back through the buffer pool. Pin counts keep
objects referenced by in-transaction undo entries and parked MVCC
workspaces resident; a weak-value map guarantees that as long as *any*
live reference to an object exists, ``fetch`` returns that same instance
(eviction can never fork object identity). With ``cache_capacity=None``
(the default, and the ablation baseline) the cache is unbounded and the
hot path skips all LRU bookkeeping.

``fetch_cold`` bypasses the cache entirely, deserializing from pages
through the buffer pool — the storage benchmarks use it to measure real
page behaviour. :meth:`vacuum` is the compaction pass: it squeezes slot
holes, migrates records off mostly-dead pages, and returns empty pages
to the disk's free list.
"""

from __future__ import annotations

import pickle
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.core.identity import Oid, StoredObject
from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager, FileDiskManager
from repro.storage.heap import HeapFile
from repro.storage.pages import Rid

__all__ = ["PagedObjectStore", "CacheStats"]


@dataclass
class CacheStats:
    """Live-object cache behaviour counters."""

    hits: int = 0
    faults: int = 0
    evictions: int = 0
    writebacks: int = 0
    peak_live: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.faults = 0
        self.evictions = 0
        self.writebacks = 0
        self.peak_live = 0


class PagedObjectStore:
    """Object store with slotted-page persistence and a live-object cache."""

    def __init__(
        self,
        disk: Optional[DiskManager] = None,
        pool: Optional[BufferPool] = None,
        pool_capacity: int = 64,
        cache_capacity: Optional[int] = None,
        store_mode: Optional[str] = None,
        path: Optional[str] = None,
    ):
        if disk is None:
            if store_mode is None:
                store_mode = "file" if path is not None else "sim"
            if store_mode == "file":
                disk = FileDiskManager(path=path)
            elif store_mode == "sim":
                disk = DiskManager()
            else:
                raise StorageError(f"unknown store_mode: {store_mode!r}")
        else:
            store_mode = "file" if isinstance(disk, FileDiskManager) else "sim"
        self.store_mode = store_mode
        self.disk = disk
        self.pool = pool if pool is not None else BufferPool(self.disk, pool_capacity)
        self.file = HeapFile("objects", self.pool)
        self.cache_capacity = cache_capacity
        self._directory: dict[Oid, Rid] = {}
        self._live: "OrderedDict[Oid, StoredObject]" = OrderedDict()
        self._weak: "weakref.WeakValueDictionary[Oid, StoredObject]" = (
            weakref.WeakValueDictionary()
        )
        self._pins: dict[Oid, int] = {}
        self._dirty: set[Oid] = set()
        self.cache_stats = CacheStats()

    # -- ObjectStore protocol ------------------------------------------------------

    def insert(self, oid: Oid, record: StoredObject) -> None:
        """Serialize ``record`` into the heap file and cache it live."""
        if oid in self._directory:
            raise StorageError(f"oid {oid} already present")
        rid = self.file.insert(self._serialize(record))
        self._directory[oid] = rid
        self._admit(oid, record, dirty=False)

    def fetch(self, oid: Oid) -> StoredObject:
        """Return the live record for ``oid`` (KeyError when absent).

        Serves from the live cache, then the weak identity map (an
        evicted object some caller still references — returning the same
        instance keeps in-place mutations coherent), and finally faults
        the object back in from its page through the buffer pool.
        """
        record = self._live.get(oid)
        if record is not None:
            self.cache_stats.hits += 1
            if self.cache_capacity is not None:
                self._live.move_to_end(oid)
            return record
        if oid not in self._directory:
            raise KeyError(oid)
        record = self._weak.get(oid)
        if record is not None:
            self.cache_stats.hits += 1
            self._admit(oid, record, dirty=False)
            return record
        self.cache_stats.faults += 1
        record = self._deserialize(self.file.read(self._directory[oid]))
        self._admit(oid, record, dirty=False)
        return record

    def update(self, oid: Oid, record: StoredObject) -> None:
        """Mark ``oid`` dirty; serialization is deferred (write-back).

        The record's bytes reach its page on eviction, :meth:`flush`,
        checkpoint, or snapshot — page-level accounting still sees every
        cold transfer, without paying pickling costs on every in-place
        mutation of a cached object.
        """
        if oid not in self._directory:
            raise StorageError(f"cannot update unknown oid {oid}")
        self._admit(oid, record, dirty=True)

    def delete(self, oid: Oid) -> None:
        """Drop the record and free its page slot."""
        rid = self._directory.pop(oid, None)
        self._live.pop(oid, None)
        self._dirty.discard(oid)
        if rid is not None:
            self.file.delete(rid)

    def __contains__(self, oid: Oid) -> bool:
        return oid in self._directory

    def oids(self) -> Iterator[Oid]:
        """All live OIDs (directory order = insertion order)."""
        return iter(list(self._directory))

    def __len__(self) -> int:
        return len(self._directory)

    # -- cache admission and eviction ---------------------------------------------

    def _admit(self, oid: Oid, record: StoredObject, dirty: bool) -> None:
        self._live[oid] = record
        self._weak[oid] = record
        if dirty:
            self._dirty.add(oid)
        if self.cache_capacity is not None:
            self._live.move_to_end(oid)
            self._evict_excess()
        if len(self._live) > self.cache_stats.peak_live:
            self.cache_stats.peak_live = len(self._live)

    def _evict_excess(self) -> None:
        while len(self._live) > self.cache_capacity:
            victim = None
            for oid in self._live:
                if not self._pins.get(oid):
                    victim = oid
                    break
            if victim is None:
                # every cached object is pinned: overflow rather than
                # fail — pins are short-lived (txn/iterator scoped)
                return
            if victim in self._dirty:
                self._writeback(victim, self._live[victim])
            del self._live[victim]
            self.cache_stats.evictions += 1

    def _writeback(self, oid: Oid, record: StoredObject) -> None:
        rid = self._directory[oid]
        new_rid = self.file.update(rid, self._serialize(record))
        if new_rid != rid:
            self._directory[oid] = new_rid
        self._dirty.discard(oid)
        self.cache_stats.writebacks += 1

    def flush(self) -> None:
        """Write back every dirty cached object to its page."""
        for oid in list(self._dirty):
            record = self._live.get(oid)
            if record is not None:
                self._writeback(oid, record)
            else:
                self._dirty.discard(oid)

    # -- pinning --------------------------------------------------------------------

    def pin(self, oid: Oid) -> None:
        """Exempt ``oid`` from eviction (undo entries, parked workspaces,
        open iterators). Pins nest; unpin once per pin."""
        self._pins[oid] = self._pins.get(oid, 0) + 1

    def unpin(self, oid: Oid) -> None:
        """Release one pin on ``oid`` (tolerant of already-deleted oids)."""
        count = self._pins.get(oid, 0)
        if count <= 1:
            self._pins.pop(oid, None)
        else:
            self._pins[oid] = count - 1
        if (
            self.cache_capacity is not None
            and len(self._live) > self.cache_capacity
        ):
            self._evict_excess()

    def pin_count(self, oid: Oid) -> int:
        """Current pin count for ``oid`` (tests/diagnostics)."""
        return self._pins.get(oid, 0)

    @property
    def pinned_count(self) -> int:
        """Number of distinct pinned oids."""
        return len(self._pins)

    # -- cold access for benchmarking -------------------------------------------------

    def fetch_cold(self, oid: Oid) -> StoredObject:
        """Deserialize ``oid`` from its page through the buffer pool,
        bypassing the live-object cache (used to benchmark real page I/O).

        A dirty cached object is written back first so the page image is
        current — cold readers must never see stale bytes."""
        rid = self._directory.get(oid)
        if rid is None:
            raise KeyError(oid)
        if oid in self._dirty:
            self._writeback(oid, self._live[oid])
            rid = self._directory[oid]
        return self._deserialize(self.file.read(rid))

    def evict_live_cache(self) -> None:
        """Flush dirty objects, then drop the live-object cache so
        subsequent fetches hit pages.

        Only safe when no outside code holds references it expects to
        share mutations with; benchmarks call it between phases.
        """
        self.flush()
        self._live.clear()
        self._weak.clear()

    def scan_objects(self) -> Iterator[tuple[Oid, StoredObject]]:
        """Yield every ``(oid, record)``, pinning only the current object.

        The iterator holds one pin at a time, so a full scan over a
        bounded cache never inflates the resident set beyond capacity+1.
        """
        for oid in list(self._directory):
            if oid not in self._directory:
                continue  # deleted mid-scan
            self.pin(oid)
            try:
                yield oid, self.fetch(oid)
            finally:
                self.unpin(oid)

    # -- checkpoint hooks -----------------------------------------------------------

    def prepare_checkpoint(self) -> None:
        """Push all dirty state down to the disk and fsync it.

        Called before the snapshot is written: the snapshot pickles the
        extent table + directory (not page payloads), so every payload it
        references must be durable first."""
        self.flush()
        self.pool.flush_all()
        self.disk.sync()

    def commit_checkpoint(self) -> None:
        """Promote the just-snapshotted state to the durable image."""
        commit = getattr(self.disk, "commit_checkpoint", None)
        if commit is not None:
            commit()

    def attach(self, path: str) -> None:
        """Rebind a file-backed store to its page file after unpickling."""
        if self.store_mode != "file":
            raise StorageError("attach() only applies to store_mode='file'")
        self.disk.attach(path)

    # -- compaction -------------------------------------------------------------------

    def vacuum(self, threshold: float = 0.5) -> dict:
        """Compact the heap: squeeze slot holes, migrate records off
        mostly-dead pages, and free emptied pages back to the allocator.

        ``threshold`` is the live-byte fraction below which a standard
        page gets drained. Returns a report dict.
        """
        self.flush()
        report = {"pages_freed": 0, "records_moved": 0, "slots_trimmed": 0}
        rid_to_oid = {rid: oid for oid, rid in self._directory.items()}
        for page_no in self.file.page_numbers():
            page = self.pool.fetch_page(page_no)
            pinned = True
            try:
                records = list(page.records())
                occupancy = page.used_bytes / page.size if page.size else 1.0
                drain = not records or (
                    page.size <= self.pool.disk.page_size
                    and occupancy < threshold
                    # only drain pages whose records we can re-point
                    and all(
                        Rid(page_no, slot_no) in rid_to_oid
                        for slot_no, _ in records
                    )
                )
                if not drain:
                    before = len(page._slots)
                    page.compact()
                    trimmed = before - len(page._slots)
                    report["slots_trimmed"] += trimmed
                    self.pool.unpin(page_no, dirty=bool(trimmed))
                    pinned = False
                    continue
            finally:
                if pinned:
                    self.pool.unpin(page_no)
            # Drain: delete each record here, re-insert it elsewhere.
            moved = [
                (rid_to_oid[Rid(page_no, slot_no)], bytes(data))
                for slot_no, data in records
            ]
            for slot_no, _ in records:
                self.file.delete(Rid(page_no, slot_no))
            self.file.exclude_from_placement(page_no)
            for oid, data in moved:
                new_rid = self.file.insert(data)
                self._directory[oid] = new_rid
                rid_to_oid[new_rid] = oid
                report["records_moved"] += 1
            self.file.free_page(page_no)
            report["pages_freed"] += 1
        return report

    # -- serialization -----------------------------------------------------------------

    @staticmethod
    def _serialize(record: StoredObject) -> bytes:
        return pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def _deserialize(data: bytes) -> StoredObject:
        return pickle.loads(data)

    # -- pickling ---------------------------------------------------------------------

    def __getstate__(self):
        # Flush object- and page-level dirty state *before* the state
        # dict is built: the disk is serialized as part of this state, so
        # any write issued later (e.g. from a nested __getstate__) would
        # miss the pickle.
        self.flush()
        self.pool.flush_all()
        state = dict(self.__dict__)
        state["_live"] = OrderedDict()
        state["_weak"] = None
        state["_pins"] = {}
        state["_dirty"] = set()
        state["cache_stats"] = CacheStats()
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._weak = weakref.WeakValueDictionary()

    # -- introspection -----------------------------------------------------------------

    @property
    def page_count(self) -> int:
        """Pages occupied by the object file."""
        return self.file.page_count

    @property
    def live_count(self) -> int:
        """Objects currently deserialized in the live cache."""
        return len(self._live)

    @property
    def dirty_count(self) -> int:
        """Cached objects awaiting write-back."""
        return len(self._dirty)

    def rid_of(self, oid: Oid) -> Rid:
        """The current RID of ``oid`` (for tests and diagnostics)."""
        try:
            return self._directory[oid]
        except KeyError:
            raise StorageError(f"unknown oid {oid}") from None
