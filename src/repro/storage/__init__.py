"""Storage substrate standing in for the EXODUS storage manager.

The EXODUS storage manager provided files of storage objects, page-level
buffering, and identifier-based object access. This package reproduces
those abstractions in Python:

* :mod:`repro.storage.pages` — slotted pages and record identifiers;
* :mod:`repro.storage.disk` — a simulated disk with I/O accounting;
* :mod:`repro.storage.buffer` — a pinning buffer pool with LRU
  replacement and hit/miss statistics;
* :mod:`repro.storage.heap` — heap files of variable-length records;
* :mod:`repro.storage.object_store` — the paged object store that backs
  :class:`repro.core.identity.ObjectTable`;
* :mod:`repro.storage.index` — hash and B+-tree access methods;
* :mod:`repro.storage.access` — the access-method registry and the
  tabular ADT/operator applicability information the paper's optimizer
  design calls for;
* :mod:`repro.storage.persistence` — whole-database snapshots.
"""

from repro.storage.buffer import BufferPool, BufferStats
from repro.storage.disk import DiskManager, DiskStats, FileDiskManager
from repro.storage.heap import HeapFile
from repro.storage.index import BTreeIndex, HashIndex
from repro.storage.object_store import CacheStats, PagedObjectStore
from repro.storage.pages import PAGE_SIZE, Page, Rid

__all__ = [
    "PAGE_SIZE",
    "Page",
    "Rid",
    "DiskManager",
    "DiskStats",
    "FileDiskManager",
    "BufferPool",
    "BufferStats",
    "CacheStats",
    "HeapFile",
    "HashIndex",
    "BTreeIndex",
    "PagedObjectStore",
]
