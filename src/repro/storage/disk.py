"""Disk managers for the storage substrate.

Two implementations service page-level allocation, reads, and writes:

* :class:`DiskManager` — the original *simulated* disk. It holds
  :class:`~repro.storage.pages.Page` objects directly in a dict, which
  keeps the simulation honest about *when* I/O happens without paying
  Python serialization costs on every page transfer. Retained as the
  ``store_mode="sim"`` ablation.
* :class:`FileDiskManager` — the real substrate (``store_mode="file"``).
  Pages are serialized to a block-structured on-disk file in 4KB blocks
  (oversized pages span a contiguous extent of blocks). Writes use a
  **shadow-block** discipline: blocks referenced by the last committed
  checkpoint image are never overwritten in place, so a crash mid-write
  can never corrupt the durable image — recovery always finds the exact
  page state the checkpoint LSN describes, which is what logical WAL
  replay requires. ``commit_checkpoint`` promotes the current extent
  table to the durable image and recycles the blocks the previous image
  no longer references.

Both managers expose the same interface (``allocate_page``,
``read_page``, ``write_page``, ``free_page``, ``sync``) and count
physical I/O in :class:`DiskStats` so buffer-pool benchmarks and the
incremental-checkpoint assertions can observe real behaviour.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import StorageError
from repro.storage.pages import PAGE_SIZE, Page

__all__ = ["DiskStats", "DiskManager", "FileDiskManager", "BLOCK_SIZE"]

#: Allocation unit of the file-backed disk. One standard page fills one
#: block when near-empty; its serialized image may spill into a second.
BLOCK_SIZE = PAGE_SIZE


@dataclass
class DiskStats:
    """Physical I/O counters for one disk."""

    reads: int = 0
    writes: int = 0
    allocations: int = 0
    frees: int = 0
    syncs: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.reads = 0
        self.writes = 0
        self.allocations = 0
        self.frees = 0
        self.syncs = 0


class DiskManager:
    """Allocates pages and services page-level reads and writes (simulated)."""

    def __init__(self, page_size: int = PAGE_SIZE):
        self.page_size = page_size
        self._pages: dict[int, Page] = {}
        self._next_page_no = 0
        self._free_page_nos: list[int] = []
        self.stats = DiskStats()

    def allocate_page(self, size: Optional[int] = None) -> Page:
        """Create a fresh empty page and return it (counted as a write).

        ``size`` overrides the standard geometry for oversized pages
        (EXODUS large storage objects lived outside normal page bounds).
        """
        if self._free_page_nos:
            page_no = self._free_page_nos.pop()
        else:
            page_no = self._next_page_no
            self._next_page_no += 1
        page = Page(page_no, size=size if size is not None else self.page_size)
        self._pages[page.page_no] = page
        self.stats.allocations += 1
        self.stats.writes += 1
        return page

    def read_page(self, page_no: int) -> Page:
        """Fetch a page from disk (counted as a physical read)."""
        try:
            page = self._pages[page_no]
        except KeyError:
            raise StorageError(f"no such page {page_no}") from None
        self.stats.reads += 1
        return page

    def write_page(self, page: Page) -> None:
        """Flush a page to disk (counted as a physical write)."""
        if page.page_no not in self._pages:
            raise StorageError(f"cannot write unallocated page {page.page_no}")
        self._pages[page.page_no] = page
        page.dirty = False
        self.stats.writes += 1

    def free_page(self, page_no: int) -> None:
        """Release ``page_no`` back to the allocator free list."""
        if self._pages.pop(page_no, None) is None:
            raise StorageError(f"cannot free unallocated page {page_no}")
        self._free_page_nos.append(page_no)
        self.stats.frees += 1

    def sync(self) -> None:
        """Durability barrier (a no-op for the simulated disk)."""
        self.stats.syncs += 1

    def page_exists(self, page_no: int) -> bool:
        """True when ``page_no`` has been allocated."""
        return page_no in self._pages

    @property
    def page_count(self) -> int:
        """Total pages allocated so far."""
        return len(self._pages)

    @property
    def free_page_count(self) -> int:
        """Pages currently on the allocator free list."""
        return len(self._free_page_nos)


class FileDiskManager:
    """Persists pages to a block-structured on-disk file.

    Every page maps to an *extent* — a run of contiguous ``BLOCK_SIZE``
    blocks — recorded in an in-memory extent table
    ``page_no -> (first_block, n_blocks, byte_length)``. The table (plus
    allocator state) is what :meth:`durable_state` captures; it is
    pickled *inside* the database snapshot so the page map commits
    atomically with the object directory it describes.

    I/O uses ``os.pread``/``os.pwrite`` so forked worker processes that
    inherit the descriptor never race on a shared file offset.

    Shadow-block rules:

    * blocks referenced by the last committed checkpoint (the *durable
      image*) are never rewritten in place — a page update while its
      extent is durable relocates to fresh blocks;
    * blocks allocated since the last checkpoint may be rewritten in
      place freely;
    * blocks the durable image releases are quarantined in a pending
      list until :meth:`commit_checkpoint` makes the release safe.
    """

    def __init__(self, path: Optional[str] = None, page_size: int = PAGE_SIZE):
        self.page_size = page_size
        self.stats = DiskStats()
        self._path = path
        #: extent table: page_no -> (first_block, n_blocks, byte_length)
        self._table: dict[int, tuple[int, int, int]] = {}
        self._next_page_no = 0
        self._free_page_nos: list[int] = []
        self._block_count = 0
        self._free_blocks: list[int] = []
        self._durable_blocks: set[int] = set()
        self._pending_free: list[int] = []
        #: optional callable stamping each written page with the current
        #: WAL position (wired by the recovery layer; never pickled)
        self.lsn_provider: Optional[Callable[[], int]] = None
        self._file = None
        self._fd: Optional[int] = None
        self._open_file(truncate=path is None or not os.path.exists(path))

    # -- file plumbing ---------------------------------------------------------

    def _open_file(self, truncate: bool = False) -> None:
        if self._path is None:
            self._file = tempfile.NamedTemporaryFile(prefix="repro-pages-")
        else:
            mode = "w+b" if truncate else "r+b"
            self._file = open(self._path, mode)
        self._fd = self._file.fileno()

    def _ensure_fd(self) -> int:
        if self._fd is None:
            if self._path is None:
                raise StorageError(
                    "file-backed page store is detached and has no path; "
                    "reattach with attach(path)"
                )
            self._open_file(truncate=False)
        return self._fd

    def close(self) -> None:
        """Release the underlying file descriptor."""
        if self._file is not None:
            self._file.close()
        self._file = None
        self._fd = None

    # -- block allocator -------------------------------------------------------

    def _allocate_blocks(self, n_blocks: int) -> int:
        if n_blocks == 1 and self._free_blocks:
            return self._free_blocks.pop()
        if n_blocks > 1 and self._free_blocks:
            # contiguous run search; free lists are short in practice
            free = sorted(self._free_blocks)
            run_start = 0
            for i in range(1, len(free) + 1):
                if i == len(free) or free[i] != free[i - 1] + 1:
                    if i - run_start >= n_blocks:
                        start = free[run_start]
                        taken = set(range(start, start + n_blocks))
                        self._free_blocks = [
                            b for b in self._free_blocks if b not in taken
                        ]
                        return start
                    run_start = i
        start = self._block_count
        self._block_count += n_blocks
        return start

    def _release_extent(self, first_block: int, n_blocks: int) -> None:
        for block in range(first_block, first_block + n_blocks):
            if block in self._durable_blocks:
                self._pending_free.append(block)
            else:
                self._free_blocks.append(block)

    def _extent_is_durable(self, first_block: int, n_blocks: int) -> bool:
        return any(
            block in self._durable_blocks
            for block in range(first_block, first_block + n_blocks)
        )

    # -- disk interface --------------------------------------------------------

    def allocate_page(self, size: Optional[int] = None) -> Page:
        """Register a fresh page (no blocks written until first flush)."""
        if self._free_page_nos:
            page_no = self._free_page_nos.pop()
        else:
            page_no = self._next_page_no
            self._next_page_no += 1
        page = Page(page_no, size=size if size is not None else self.page_size)
        self.stats.allocations += 1
        return page

    def read_page(self, page_no: int) -> Page:
        """Read a page's current extent and deserialize it."""
        try:
            first_block, _n_blocks, length = self._table[page_no]
        except KeyError:
            raise StorageError(f"no such page {page_no}") from None
        data = os.pread(self._ensure_fd(), length, first_block * BLOCK_SIZE)
        if len(data) != length:
            raise StorageError(
                f"short read of page {page_no}: wanted {length} bytes, "
                f"got {len(data)}"
            )
        self.stats.reads += 1
        return Page.from_bytes(data)

    def write_page(self, page: Page) -> None:
        """Serialize the page, shadow-writing when its extent is durable."""
        if self.lsn_provider is not None:
            page.lsn = self.lsn_provider()
        payload = page.to_bytes()
        n_blocks = max(1, -(-len(payload) // BLOCK_SIZE))
        current = self._table.get(page.page_no)
        if (
            current is not None
            and current[1] >= n_blocks
            and not self._extent_is_durable(current[0], current[1])
        ):
            first_block = current[0]
            self._table[page.page_no] = (first_block, current[1], len(payload))
        else:
            first_block = self._allocate_blocks(n_blocks)
            if current is not None:
                self._release_extent(current[0], current[1])
            self._table[page.page_no] = (first_block, n_blocks, len(payload))
        os.pwrite(self._ensure_fd(), payload, first_block * BLOCK_SIZE)
        page.dirty = False
        self.stats.writes += 1

    def free_page(self, page_no: int) -> None:
        """Release a page's extent and recycle its page number."""
        entry = self._table.pop(page_no, None)
        if entry is not None:
            self._release_extent(entry[0], entry[1])
        self._free_page_nos.append(page_no)
        self.stats.frees += 1

    def sync(self) -> None:
        """fsync the page file (durability barrier before a snapshot)."""
        os.fsync(self._ensure_fd())
        self.stats.syncs += 1

    def page_exists(self, page_no: int) -> bool:
        """True when ``page_no`` has a materialized extent."""
        return page_no in self._table

    @property
    def page_count(self) -> int:
        """Pages with a materialized extent."""
        return len(self._table)

    @property
    def free_page_count(self) -> int:
        """Pages currently on the allocator free list."""
        return len(self._free_page_nos)

    @property
    def block_count(self) -> int:
        """Blocks the file spans (including free blocks)."""
        return self._block_count

    @property
    def free_block_count(self) -> int:
        """Blocks immediately reusable for shadow writes."""
        return len(self._free_blocks)

    # -- checkpoint protocol ---------------------------------------------------

    def commit_checkpoint(self) -> None:
        """Promote the current extent table to the durable image.

        Called after the snapshot referencing the current table has been
        atomically installed: from here on the *previous* image's blocks
        are fair game, and the *current* extents must never be
        overwritten in place.
        """
        durable: set[int] = set()
        for first_block, n_blocks, _length in self._table.values():
            durable.update(range(first_block, first_block + n_blocks))
        self._durable_blocks = durable
        self._free_blocks.extend(
            block for block in self._pending_free if block not in durable
        )
        self._pending_free = []

    # -- pickling / reattachment -----------------------------------------------

    def __getstate__(self):
        if self._path is None:
            raise StorageError(
                "a file-backed page store on an anonymous temp file cannot "
                "be pickled; open it with an explicit path (store_path=...)"
            )
        state = dict(self.__dict__)
        state["_file"] = None
        state["_fd"] = None
        state["lsn_provider"] = None
        # the durable image is exactly what the snapshot describes
        state["_durable_blocks"] = set()
        state["_pending_free"] = []
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    def attach(self, path: str) -> None:
        """(Re)bind to the page file after a snapshot load.

        Rebuilds the durable-block image from the extent table, returns
        every unreferenced block below the high-water mark to the free
        list, and truncates shadow litter the snapshot never committed.
        """
        self.close()
        self._path = path
        if not os.path.exists(path):
            raise StorageError(f"page file missing: {path}")
        self._open_file(truncate=False)
        durable: set[int] = set()
        for first_block, n_blocks, _length in self._table.values():
            durable.update(range(first_block, first_block + n_blocks))
        self._durable_blocks = durable
        self._free_blocks = [
            block for block in range(self._block_count) if block not in durable
        ]
        self._pending_free = []
        os.ftruncate(self._fd, self._block_count * BLOCK_SIZE)

    def durable_state(self) -> dict:
        """A diagnostic view of the allocator/extent state."""
        return {
            "path": self._path,
            "pages": len(self._table),
            "blocks": self._block_count,
            "free_blocks": len(self._free_blocks),
            "durable_blocks": len(self._durable_blocks),
            "pending_free": len(self._pending_free),
        }
