"""A simulated disk for the storage manager.

Holds pages keyed by page number and counts physical reads and writes so
the buffer-pool benchmarks can report I/O behaviour. The "disk" keeps
:class:`~repro.storage.pages.Page` objects directly (the byte-level cost
accounting lives inside the page), which keeps the simulation honest about
*when* I/O happens without paying Python serialization costs on every
page transfer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StorageError
from repro.storage.pages import PAGE_SIZE, Page

__all__ = ["DiskStats", "DiskManager"]


@dataclass
class DiskStats:
    """Physical I/O counters for one simulated disk."""

    reads: int = 0
    writes: int = 0
    allocations: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.reads = 0
        self.writes = 0
        self.allocations = 0


class DiskManager:
    """Allocates pages and services page-level reads and writes."""

    def __init__(self, page_size: int = PAGE_SIZE):
        self.page_size = page_size
        self._pages: dict[int, Page] = {}
        self._next_page_no = 0
        self.stats = DiskStats()

    def allocate_page(self) -> Page:
        """Create a fresh empty page and return it (counted as a write)."""
        page = Page(self._next_page_no, size=self.page_size)
        self._pages[page.page_no] = page
        self._next_page_no += 1
        self.stats.allocations += 1
        self.stats.writes += 1
        return page

    def read_page(self, page_no: int) -> Page:
        """Fetch a page from disk (counted as a physical read)."""
        try:
            page = self._pages[page_no]
        except KeyError:
            raise StorageError(f"no such page {page_no}") from None
        self.stats.reads += 1
        return page

    def write_page(self, page: Page) -> None:
        """Flush a page to disk (counted as a physical write)."""
        if page.page_no not in self._pages:
            raise StorageError(f"cannot write unallocated page {page.page_no}")
        self._pages[page.page_no] = page
        page.dirty = False
        self.stats.writes += 1

    def page_exists(self, page_no: int) -> bool:
        """True when ``page_no`` has been allocated."""
        return page_no in self._pages

    @property
    def page_count(self) -> int:
        """Total pages allocated so far."""
        return len(self._pages)
