"""Crash recovery: durable open, commit logging, checkpointing.

The EXODUS storage manager owned "recovery and a form of versioning for
large storage objects" (paper §2); this module reproduces the user-level
contract for the whole engine with a *logical* redo log:

* :func:`open_database` (``Database.open``) roots a database in a
  directory holding a checkpoint snapshot (``snapshot.db``) and a
  write-ahead log of committed statements (``wal.log``). Opening loads
  the latest snapshot, repairs any torn tail on the log (CRC-detected,
  truncated at the last valid record), and replays the committed suffix
  through the EXCESS interpreter.
* :class:`DurabilityManager` logs every top-level mutating statement at
  commit time: auto-committed statements append (and fsync) one record
  each; statements inside an explicit transaction buffer in memory and
  flush as a **single** record on commit — so replay can never apply
  half a transaction. Aborted work is never logged.
* ``checkpoint()`` writes a new snapshot carrying the last logged LSN in
  its footer, then rotates the log. A crash between the two is safe:
  replay skips records at or below the snapshot's LSN.

The crash matrix (see ``tests/integration/test_faultinjection.py``)
drives a :class:`~repro.util.faultinject.SimulatedCrash` through every
registered crash point and checks the two invariants that define the
contract: every *acknowledged* commit survives recovery, and no
*unacknowledged* work does.
"""

from __future__ import annotations

import os
from typing import Any

from repro.errors import StorageError
from repro.storage.persistence import read_snapshot, save_snapshot
from repro.storage.wal import WriteAheadLog, read_wal, repair_torn_tail
from repro.util import faultinject

__all__ = [
    "DurabilityManager",
    "open_database",
    "SNAPSHOT_NAME",
    "WAL_NAME",
    "PAGES_NAME",
]

SNAPSHOT_NAME = "snapshot.db"
WAL_NAME = "wal.log"
PAGES_NAME = "pages.data"

faultinject.register("commit.before_log")
faultinject.register("commit.after_log")
faultinject.register("checkpoint.before_snapshot")
faultinject.register("checkpoint.before_rotate")
faultinject.register("checkpoint.after_rotate")


class DurabilityManager:
    """Bridges the interpreter's commit points to the write-ahead log."""

    def __init__(self, database: Any, directory: str, wal: WriteAheadLog):
        self.db = database
        self.directory = directory
        self.wal = wal
        #: set while recovery replays the log, so replayed statements are
        #: never appended again (recovery attaches the manager only after
        #: replay, making this a second line of defense)
        self.replaying = False
        #: session id → statements of that session's open transaction,
        #: flushed as one record on commit and dropped on abort
        self._pending: dict[int, list[tuple[str, str]]] = {}

    # -- commit-time logging -----------------------------------------------

    def log_statement(self, text: str, user: str, session: Any = None) -> None:
        """Record one successfully executed mutating statement.

        Inside a transaction (explicit, or the implicit one MVCC wraps
        around concurrent auto-commits) the statement only buffers in
        its session's slot; the engine's acknowledgement of the
        *statement* promises nothing until commit. Outside one, the
        statement auto-commits and the record is on disk before the
        caller sees the result.
        """
        if self.replaying:
            return
        if session is None:
            session = self.db.default_session
        if session.txn is not None:
            self._pending.setdefault(session.id, []).append((user, text))
            return
        faultinject.crash_point("commit.before_log")
        self.wal.commit([(user, text)], session=session.name)
        faultinject.crash_point("commit.after_log")

    def on_commit(self, session: Any = None, txn_id: Any = None) -> None:
        """Flush one session's transaction statements as one atomic
        record (stamped with the transaction id and session name)."""
        if session is None:
            session = self.db.default_session
        entries = self._pending.pop(session.id, None)
        if self.replaying or not entries:
            return
        faultinject.crash_point("commit.before_log")
        self.wal.commit(entries, txn=txn_id, session=session.name)
        faultinject.crash_point("commit.after_log")

    def on_abort(self, session: Any = None) -> None:
        """Drop the aborted transaction's buffered statements."""
        if session is None:
            self._pending.clear()
        else:
            self._pending.pop(session.id, None)

    # -- checkpointing -----------------------------------------------------

    def checkpoint(self) -> dict[str, Any]:
        """Snapshot the database and truncate the log.

        The snapshot's footer records the last LSN it contains; the log
        is rotated only after the snapshot is durable, and a crash in
        between is idempotent (replay skips records ≤ the footer LSN).
        """
        if self.db.in_transaction:
            raise StorageError("cannot checkpoint inside an open transaction")
        last_lsn = self.wal.next_lsn - 1
        snapshot_path = os.path.join(self.directory, SNAPSHOT_NAME)
        store = self.db.store
        # Incremental page flush: push dirty objects/pages down to the
        # disk (only pages dirtied since the last checkpoint get written
        # — shadow blocks, so the previous durable image stays intact)
        # and fsync, *before* the snapshot that references them.
        pages_written = None
        prepare = getattr(store, "prepare_checkpoint", None)
        if prepare is not None:
            writes_before = store.disk.stats.writes
            prepare()
            pages_written = store.disk.stats.writes - writes_before
        faultinject.crash_point("checkpoint.before_snapshot")
        written = save_snapshot(self.db, snapshot_path, wal_lsn=last_lsn)
        # The snapshot (carrying the extent table) is durably installed:
        # promote it to the shadow allocator's protected image and
        # recycle the blocks the previous image no longer references.
        commit = getattr(store, "commit_checkpoint", None)
        if commit is not None:
            commit()
        faultinject.crash_point("checkpoint.before_rotate")
        self.wal.rotate()
        faultinject.crash_point("checkpoint.after_rotate")
        out = {"snapshot": snapshot_path, "bytes": written, "wal_lsn": last_lsn}
        if pages_written is not None:
            out["pages_written"] = pages_written
        return out

    # -- diagnostics -------------------------------------------------------

    def status(self) -> dict[str, Any]:
        """Status summary for the CLI's ``\\wal`` command."""
        out = self.wal.status()
        out["directory"] = self.directory
        out["buffered_statements"] = sum(
            len(entries) for entries in self._pending.values()
        )
        return out

    def close(self) -> None:
        self.wal.close()


def open_database(
    directory: str,
    *,
    storage: str = "memory",
    fsync: bool = True,
    dba: str = "dba",
    authorization: bool = False,
    pool_capacity: int = 64,
    store_mode: str | None = None,
    cache_capacity: int | None = None,
) -> Any:
    """Open (creating if needed) a durable database rooted at ``directory``.

    Recovery sequence: load the newest checkpoint snapshot (or start
    empty), truncate any torn tail off the log, replay every record with
    an LSN above the snapshot's footer through the interpreter, then
    attach a :class:`DurabilityManager` continuing the LSN sequence.

    With ``storage="paged"`` the store defaults to the file-backed disk
    (``store_mode="file"``): pages persist in ``<directory>/pages.data``
    and ``checkpoint()`` writes only pages dirtied since the last one.
    The snapshot pickles the page *map* (extent table + OID directory),
    not page payloads, so its size tracks the catalog, not the data.
    """
    from repro.core.database import Database

    os.makedirs(directory, exist_ok=True)
    snapshot_path = os.path.join(directory, SNAPSHOT_NAME)
    wal_path = os.path.join(directory, WAL_NAME)
    pages_path = os.path.join(directory, PAGES_NAME)
    if storage == "paged" and store_mode is None:
        store_mode = "file"

    base_lsn = 0
    if os.path.exists(snapshot_path):
        db, base_lsn = read_snapshot(snapshot_path)
        store = db.store
        if getattr(store, "store_mode", None) == "file":
            # rebind to the page file; frees shadow litter the loaded
            # extent table does not reference
            store.attach(pages_path)
    else:
        if store_mode == "file" and os.path.exists(pages_path):
            # no snapshot references this page file (a crash before the
            # first checkpoint, or stale debris): start it fresh
            os.unlink(pages_path)
        db = Database(
            storage=storage,
            pool_capacity=pool_capacity,
            dba=dba,
            authorization=authorization,
            store_mode=store_mode,
            cache_capacity=cache_capacity,
            store_path=pages_path if store_mode == "file" else None,
        )

    next_lsn = base_lsn + 1
    on_disk = 0
    if os.path.exists(wal_path):
        repair_torn_tail(wal_path)
        records, _valid = read_wal(wal_path)
        on_disk = len(records)
        # db.durability is still None here, so replayed statements are
        # not re-logged while they re-execute. Records carry their
        # originating session name; each distinct name replays in its
        # own session context so session-scoped range declarations (and
        # any interleaving of commits across sessions) bind exactly as
        # they did before the crash.
        replay_sessions: dict[str, Any] = {}
        for record in records:
            if record.lsn <= base_lsn:
                continue  # already inside the checkpoint snapshot
            name = record.session
            if name is None or name == "default":
                context = None  # the default session
            else:
                context = replay_sessions.get(name)
                if context is None:
                    context = db.connect(
                        user=record.entries[0][0] if record.entries else None,
                        name=name,
                    )
                    replay_sessions[name] = context
            for user, text in record.entries:
                try:
                    db.interpreter.execute(text, user=user, session=context)
                except Exception as exc:
                    raise StorageError(
                        f"WAL replay failed at LSN {record.lsn} for "
                        f"statement {text!r}: {exc}"
                    ) from exc
            next_lsn = record.lsn + 1
        for context in replay_sessions.values():
            context.close()

    wal = WriteAheadLog(
        wal_path, fsync=fsync, next_lsn=next_lsn, existing_records=on_disk
    )
    db.durability = DurabilityManager(db, directory, wal)
    store = db.store
    if cache_capacity is not None and hasattr(store, "cache_capacity"):
        store.cache_capacity = cache_capacity
    disk = getattr(store, "disk", None)
    if disk is not None and hasattr(disk, "lsn_provider"):
        # stamp written pages with the current durable WAL position
        disk.lsn_provider = lambda: wal.next_lsn - 1
    return db
