"""A pinning buffer pool with LRU replacement.

The buffer pool mediates all page access for heap files. Pages are pinned
while in use and unpinned afterwards; only unpinned pages are eligible for
eviction, and dirty pages are written back on eviction and at
:meth:`BufferPool.flush_all`. Hit/miss/eviction statistics feed the
storage benchmarks (experiment P4 in DESIGN.md).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import StorageError
from repro.storage.disk import DiskManager
from repro.storage.pages import Page

__all__ = ["BufferStats", "Frame", "BufferPool"]


@dataclass
class BufferStats:
    """Cache behaviour counters for one buffer pool."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_writebacks: int = 0

    @property
    def accesses(self) -> int:
        """Total page requests."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of requests served from the pool (0.0 when idle)."""
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_writebacks = 0


@dataclass
class Frame:
    """A buffer frame: a cached page plus its pin count."""

    page: Page
    pin_count: int = 0


class BufferPool:
    """Caches up to ``capacity`` pages with LRU replacement.

    Typical use::

        page = pool.fetch_page(page_no)   # pins the page
        ... read/modify page ...
        pool.unpin(page_no, dirty=True)
    """

    def __init__(self, disk: DiskManager, capacity: int = 64):
        if capacity < 1:
            raise StorageError(f"buffer pool capacity must be positive: {capacity}")
        self.disk = disk
        self.capacity = capacity
        #: LRU order: oldest first. Re-inserting on access keeps recency.
        self._frames: "OrderedDict[int, Frame]" = OrderedDict()
        self.stats = BufferStats()

    # -- page access -----------------------------------------------------------

    def fetch_page(self, page_no: int) -> Page:
        """Return the page, pinned. Faults it in from disk on a miss."""
        frame = self._frames.get(page_no)
        if frame is not None:
            self.stats.hits += 1
            self._frames.move_to_end(page_no)
            frame.pin_count += 1
            return frame.page
        self.stats.misses += 1
        self._make_room()
        page = self.disk.read_page(page_no)
        self._frames[page_no] = Frame(page=page, pin_count=1)
        return page

    def new_page(self, size: int | None = None) -> Page:
        """Allocate a fresh page on disk and cache it, pinned.

        ``size`` requests oversized geometry for large records; the
        allocation still routes through the pool so the page reaches the
        disk on eviction/flush like any other.
        """
        self._make_room()
        page = self.disk.allocate_page(size)
        self._frames[page.page_no] = Frame(page=page, pin_count=1)
        return page

    def unpin(self, page_no: int, dirty: bool = False) -> None:
        """Release one pin on ``page_no``; mark dirty when modified."""
        frame = self._frames.get(page_no)
        if frame is None:
            raise StorageError(f"unpin of page {page_no} not in pool")
        if frame.pin_count <= 0:
            raise StorageError(f"unpin of unpinned page {page_no}")
        frame.pin_count -= 1
        if dirty:
            frame.page.dirty = True

    # -- replacement -------------------------------------------------------------

    def _make_room(self) -> None:
        """Evict the LRU unpinned page when the pool is full."""
        if len(self._frames) < self.capacity:
            return
        for page_no, frame in self._frames.items():
            if frame.pin_count == 0:
                if frame.page.dirty:
                    self.disk.write_page(frame.page)
                    self.stats.dirty_writebacks += 1
                del self._frames[page_no]
                self.stats.evictions += 1
                return
        raise StorageError(
            f"buffer pool exhausted: all {self.capacity} frames are pinned"
        )

    def flush_all(self) -> None:
        """Write every dirty cached page back to disk."""
        for frame in self._frames.values():
            if frame.page.dirty:
                self.disk.write_page(frame.page)
                self.stats.dirty_writebacks += 1

    def clear(self) -> None:
        """Flush and drop every frame (used between benchmark runs)."""
        self.flush_all()
        for frame in self._frames.values():
            if frame.pin_count:
                raise StorageError("cannot clear buffer pool with pinned pages")
        self._frames.clear()

    def discard(self, page_no: int) -> None:
        """Drop a frame *without* write-back (the page is being freed)."""
        frame = self._frames.get(page_no)
        if frame is None:
            return
        if frame.pin_count:
            raise StorageError(f"cannot discard pinned page {page_no}")
        del self._frames[page_no]

    # -- pickling ---------------------------------------------------------------

    def __getstate__(self):
        # Frames are a cache over the disk: flush dirty pages (so the
        # disk — pickled alongside us — holds current bytes) and drop
        # them; a loaded pool faults pages back on demand.
        self.flush_all()
        state = dict(self.__dict__)
        state["_frames"] = OrderedDict()
        return state

    # -- introspection -------------------------------------------------------------

    def dirty_pages(self) -> list[int]:
        """Page numbers of currently-dirty frames (incremental-checkpoint
        candidates; everything evicted earlier is already on disk)."""
        return [no for no, f in self._frames.items() if f.page.dirty]

    def cached_pages(self) -> list[int]:
        """Page numbers currently in the pool, LRU-first."""
        return list(self._frames)

    def pin_count(self, page_no: int) -> int:
        """Current pin count for ``page_no`` (0 when not cached)."""
        frame = self._frames.get(page_no)
        return frame.pin_count if frame else 0

    def __len__(self) -> int:
        return len(self._frames)
