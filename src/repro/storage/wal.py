"""An append-only logical write-ahead log of committed statements.

The EXODUS storage manager owned logging and recovery (paper §2/§7);
this module reproduces the contract at the statement level. Durable
databases (:func:`repro.storage.recovery.open_database`) append one
**commit record** per commit unit — an auto-committed statement, or all
statements of an explicit transaction as a single record, so a torn
write can never half-apply a transaction on replay.

Record format (after a one-line file magic)::

    <length: u32 LE> <crc32(payload): u32 LE> <payload>

where the payload is UTF-8 JSON ``{"lsn": n, "entries": [[user,
statement_text], ...]}``. LSNs increase monotonically across rotations
so a checkpoint snapshot can record the last LSN it contains and replay
skips everything at or below it.

Torn-tail handling: :func:`read_wal` scans records until the first
short or CRC-mismatching record and reports the valid prefix length;
recovery truncates the file there. Only the *final* record can be torn
(earlier corruption means the file was damaged after the fact and is
reported as an error by the caller's policy — here we stop at the first
bad record either way, which is the standard ARIES tail rule).

``fsync`` is configurable per log: with it on (the default) a commit
returns only after the record reaches the disk; with it off, the record
reaches the OS page cache (surviving process death but not power loss).
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
import zlib
from dataclasses import dataclass
from typing import Optional

from repro.errors import StorageError
from repro.util import faultinject

__all__ = ["WalRecord", "WriteAheadLog", "read_wal", "WAL_MAGIC"]

WAL_MAGIC = b"EXTRA-EXCESS-WAL-v1\n"

_HEADER = struct.Struct("<II")  # payload length, crc32(payload)

#: guard against interpreting garbage as a gigantic record length
_MAX_RECORD = 64 * 1024 * 1024

faultinject.register("wal.append.before_write")
faultinject.register("wal.append.torn_write", torn=True)
faultinject.register("wal.append.before_sync")
faultinject.register("wal.append.after_sync")


@dataclass
class WalRecord:
    """One commit unit: every statement of one transaction (or one
    auto-committed statement).

    ``txn`` and ``session`` stamp records written by multi-session
    databases (the transaction id and originating session name), so
    recovery can replay each session's statements in a matching
    per-session context. Records written before these fields existed
    decode with both ``None`` — replay then uses the default session.
    """

    lsn: int
    entries: list  # [(user, statement_text), ...]
    txn: Optional[int] = None
    session: Optional[str] = None

    def encode(self) -> bytes:
        doc: dict = {"lsn": self.lsn, "entries": [list(e) for e in self.entries]}
        if self.txn is not None:
            doc["txn"] = self.txn
        if self.session is not None:
            doc["session"] = self.session
        payload = json.dumps(doc, ensure_ascii=False).encode("utf-8")
        return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _decode_payload(payload: bytes) -> WalRecord:
    doc = json.loads(payload.decode("utf-8"))
    txn = doc.get("txn")
    return WalRecord(
        lsn=int(doc["lsn"]),
        entries=[(user, text) for user, text in doc["entries"]],
        txn=int(txn) if txn is not None else None,
        session=doc.get("session"),
    )


class WriteAheadLog:
    """Appends commit records to one log file.

    ``next_lsn`` continues a numbering established by recovery (LSNs
    are monotonic across rotations, never per-file).
    """

    def __init__(self, path: str, fsync: bool = True, next_lsn: int = 1,
                 existing_records: int = 0):
        self.path = path
        self.fsync_enabled = fsync
        self.next_lsn = next_lsn
        #: commit records in the file since the last checkpoint rotation
        #: (diagnostics); recovery seeds it with what it found on disk
        self.appended = existing_records
        self._file = open(path, "ab")
        if self._file.tell() == 0:
            self._file.write(WAL_MAGIC)
            self._file.flush()
            self._sync()

    # -- appending -----------------------------------------------------------

    def commit(self, entries: list, txn: Optional[int] = None,
               session: Optional[str] = None) -> int:
        """Append one commit record; returns its LSN.

        The record is flushed to the OS unconditionally and fsynced
        when the log was opened with ``fsync=True``. Statements of one
        transaction always travel in one record (atomic on replay).
        """
        lsn = self.next_lsn
        record = WalRecord(lsn=lsn, entries=entries, txn=txn, session=session)
        blob = record.encode()
        faultinject.crash_point("wal.append.before_write")
        cut = faultinject.torn_cut("wal.append.torn_write", len(blob))
        if cut is not None:
            # simulated power loss mid-write: persist a prefix, then die
            self._file.write(blob[:cut])
            self._file.flush()
            self._sync()
            raise faultinject.SimulatedCrash("wal.append.torn_write", 0)
        self._file.write(blob)
        self._file.flush()
        faultinject.crash_point("wal.append.before_sync")
        self._sync()
        faultinject.crash_point("wal.append.after_sync")
        self.next_lsn = lsn + 1
        self.appended += 1
        return lsn

    def _sync(self) -> None:
        if self.fsync_enabled:
            os.fsync(self._file.fileno())

    # -- rotation ------------------------------------------------------------

    def rotate(self) -> None:
        """Atomically replace the log with a fresh (empty) one.

        Called by checkpointing after the snapshot is durable: records
        up to the snapshot's LSN are no longer needed. LSN numbering
        continues — the snapshot footer is what makes replay skip
        already-applied records if a crash lands between snapshot and
        rotation.
        """
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        fd, tmp_path = tempfile.mkstemp(prefix=".wal-", dir=directory)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(WAL_MAGIC)
                handle.flush()
                os.fsync(handle.fileno())
            self._file.close()
            os.replace(tmp_path, self.path)
            _fsync_directory(directory)
        except OSError as exc:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise StorageError(f"WAL rotation failed: {exc}") from exc
        self._file = open(self.path, "ab")
        self.appended = 0

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._sync()
            self._file.close()

    def status(self) -> dict:
        """Diagnostics for the CLI's ``\\wal`` command."""
        return {
            "path": self.path,
            "fsync": self.fsync_enabled,
            "next_lsn": self.next_lsn,
            "records_since_checkpoint": self.appended,
            "bytes": os.path.getsize(self.path) if os.path.exists(self.path) else 0,
        }


def read_wal(path: str) -> tuple[list[WalRecord], int]:
    """Scan a log file; returns ``(records, valid_length)``.

    Stops at the first torn or corrupt record: a truncated header, a
    length running past end-of-file, a CRC mismatch, or undecodable
    JSON all end the scan, and ``valid_length`` is the byte offset of
    the last good record's end — the caller truncates the file there.
    A file that is a strict prefix of the magic (torn header) reads as
    an empty log; anything else that fails the magic check is not a WAL
    and raises :class:`StorageError`.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        raise StorageError(f"cannot read WAL {path!r}: {exc}") from exc
    if not data.startswith(WAL_MAGIC):
        if WAL_MAGIC.startswith(data):  # torn header: treat as empty
            return [], 0
        raise StorageError(
            f"{path!r} is not an EXTRA/EXCESS write-ahead log "
            f"(expected magic {WAL_MAGIC!r})"
        )
    records: list[WalRecord] = []
    offset = len(WAL_MAGIC)
    total = len(data)
    while offset < total:
        if offset + _HEADER.size > total:
            break  # torn header
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        if length > _MAX_RECORD or start + length > total:
            break  # torn or garbage length
        payload = data[start:start + length]
        if zlib.crc32(payload) != crc:
            break  # torn payload (CRC catches the partial write)
        try:
            record = _decode_payload(payload)
        except (ValueError, KeyError, TypeError):
            break
        records.append(record)
        offset = start + length
    return records, offset


def repair_torn_tail(path: str) -> Optional[int]:
    """Truncate ``path`` at the end of its last valid record.

    Returns the number of bytes removed, or ``None`` when the file was
    already clean. A file with a torn *header* is reset to empty (the
    magic is rewritten by the next :class:`WriteAheadLog` open).
    """
    _records, valid_length = read_wal(path)
    size = os.path.getsize(path)
    if size == valid_length:
        return None
    with open(path, "r+b") as handle:
        handle.truncate(valid_length)
        handle.flush()
        os.fsync(handle.fileno())
    return size - valid_length


def _fsync_directory(directory: str) -> None:
    """Flush a directory entry (makes a rename durable on POSIX)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # platforms without directory fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
