"""Access-method registry and tabular optimizer information.

Paper §4.1.3: "optimizer-specific information will not be specified via
the EXCESS/EXTRA interface. Instead, it will be given in tabular form to a
utility responsible for managing optimizer information. The EXCESS query
optimizer ... will do table lookup to determine method applicability for
ADTs (so that ADTs can be easily added dynamically). ... expression-level
optimizer information (e.g., associativity, commutativity, complementary
function pairs, etc.) will also be represented in tabular form."

This module is that utility. It holds:

* :class:`AccessMethodTable` — which index kinds can evaluate which
  operator over which type (extensible at runtime when an ADT is added);
* :class:`OperatorProperties` — expression-level facts (commutativity,
  complement pairs, selectivity estimates) used by rewrite rules;
* :class:`IndexManager` — the physical indexes maintained over named sets,
  kept in sync by the database layer on every append/delete/replace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from repro.errors import CatalogError, StorageError
from repro.storage.index import BTreeIndex, HashIndex

__all__ = [
    "OperatorProperties",
    "AccessMethodTable",
    "IndexDescriptor",
    "IndexManager",
]


@dataclass(frozen=True)
class OperatorProperties:
    """Expression-level optimizer facts for one operator.

    ``complement`` names the operator with the complementary truth value
    (``=`` ↔ ``!=``); ``converse`` names the operator with swapped
    operands (``<`` ↔ ``>``), used to normalize constant-on-left
    predicates so that index selection can fire.
    """

    name: str
    commutative: bool = False
    associative: bool = False
    complement: Optional[str] = None
    converse: Optional[str] = None
    #: crude selectivity estimate in [0, 1] used to order selections
    selectivity: float = 0.5


#: Built-in expression-level table (extended per-ADT at registration time).
_DEFAULT_OPERATOR_PROPERTIES: dict[str, OperatorProperties] = {
    "=": OperatorProperties("=", commutative=True, complement="!=", converse="=", selectivity=0.05),
    "!=": OperatorProperties("!=", commutative=True, complement="=", converse="!=", selectivity=0.95),
    "<": OperatorProperties("<", complement=">=", converse=">", selectivity=0.33),
    "<=": OperatorProperties("<=", complement=">", converse=">=", selectivity=0.33),
    ">": OperatorProperties(">", complement="<=", converse="<", selectivity=0.33),
    ">=": OperatorProperties(">=", complement="<", converse="<=", selectivity=0.33),
    "+": OperatorProperties("+", commutative=True, associative=True),
    "*": OperatorProperties("*", commutative=True, associative=True),
    "and": OperatorProperties("and", commutative=True, associative=True),
    "or": OperatorProperties("or", commutative=True, associative=True),
}


class AccessMethodTable:
    """Table mapping ``(type_tag, operator)`` to applicable index kinds.

    Base types come pre-registered: equality is answerable by hash or
    B+-tree, ordering comparisons by B+-tree only. Registering an ADT adds
    rows for whichever of its operators are hashable/ordered, which is how
    "ADTs can be easily added dynamically" without touching the optimizer.
    """

    _ORDERED = ("<", "<=", ">", ">=")

    def __init__(self) -> None:
        self._rows: dict[tuple[str, str], list[str]] = {}
        self._operator_properties: dict[str, OperatorProperties] = dict(
            _DEFAULT_OPERATOR_PROPERTIES
        )
        for tag in ("int1", "int2", "int4", "int8", "float4", "float8",
                    "boolean", "text"):
            self.register_hashable(tag)
            if tag != "boolean":
                self.register_ordered(tag)
        # char(n) rows are registered per-length on demand via normalize.

    @staticmethod
    def _normalize_tag(tag: str) -> str:
        """Collapse parameterized tags (char(20) → char) for table rows."""
        return tag.split("(")[0]

    def register_hashable(self, type_tag: str) -> None:
        """Declare that equality over ``type_tag`` can use hash or B+-tree."""
        tag = self._normalize_tag(type_tag)
        self._rows[(tag, "=")] = ["hash", "btree"]

    def register_ordered(self, type_tag: str) -> None:
        """Declare that ordering comparisons over ``type_tag`` can use a
        B+-tree (and register the range row for equality too)."""
        tag = self._normalize_tag(type_tag)
        self._rows.setdefault((tag, "="), ["btree"])
        for op in self._ORDERED:
            self._rows[(tag, op)] = ["btree"]

    def register_row(self, type_tag: str, operator: str, methods: Iterable[str]) -> None:
        """Add an explicit applicability row (expert/DBI extension hook)."""
        self._rows[(self._normalize_tag(type_tag), operator)] = list(methods)

    def applicable(self, type_tag: str, operator: str) -> list[str]:
        """Index kinds able to evaluate ``operator`` over ``type_tag``
        (empty when the predicate can only be evaluated by scanning)."""
        tag = self._normalize_tag(type_tag)
        if tag == "char":
            # Fixed-length strings behave like text for access purposes.
            tag = "text"
        return list(self._rows.get((tag, operator), ()))

    def set_operator_properties(self, props: OperatorProperties) -> None:
        """Install expression-level facts for an operator."""
        self._operator_properties[props.name] = props

    def operator_properties(self, name: str) -> OperatorProperties:
        """Expression-level facts for ``name`` (defaults when unknown)."""
        return self._operator_properties.get(name, OperatorProperties(name))


@dataclass
class IndexDescriptor:
    """Catalog entry for one physical index over a named set."""

    set_name: str
    attribute: str
    kind: str  # "hash" | "btree"
    index: Any = field(repr=False)

    @property
    def name(self) -> str:
        """Canonical index name, e.g. ``Employees.salary:btree``."""
        return f"{self.set_name}.{self.attribute}:{self.kind}"


class IndexManager:
    """Creates and maintains physical indexes over named sets.

    The database layer calls :meth:`on_insert` / :meth:`on_delete` /
    :meth:`on_update` with extracted key values whenever members of an
    indexed set change; the planner asks :meth:`find` for a usable index.
    """

    #: the open transaction's undo log (attached by ``Database.begin``);
    #: class attribute so snapshots from before this field existed load
    undo = None

    def __init__(self) -> None:
        self._indexes: dict[tuple[str, str, str], IndexDescriptor] = {}
        #: invoked after every create/drop so the catalog can invalidate
        #: cached query plans (set by Catalog; None when standalone)
        self.on_change: Optional[Callable[[], None]] = None

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("undo", None)  # undo logs never survive pickling
        return state

    def _notify(self) -> None:
        if self.on_change is not None:
            self.on_change()

    def create(self, set_name: str, attribute: str, kind: str = "btree") -> IndexDescriptor:
        """Create an (initially empty) index of ``kind`` over
        ``set_name.attribute``; the caller backfills existing members."""
        if kind not in ("hash", "btree"):
            raise StorageError(f"unknown index kind {kind!r}")
        key = (set_name, attribute, kind)
        if key in self._indexes:
            raise CatalogError(
                f"index on {set_name}.{attribute} of kind {kind} already exists"
            )
        index = HashIndex() if kind == "hash" else BTreeIndex()
        descriptor = IndexDescriptor(set_name, attribute, kind, index)
        if self.undo is not None:
            self.undo.note_map_set(self._indexes, key)
        self._indexes[key] = descriptor
        self._notify()
        return descriptor

    def drop(self, set_name: str, attribute: str, kind: str) -> None:
        """Remove an index."""
        key = (set_name, attribute, kind)
        if self.undo is not None and key in self._indexes:
            self.undo.note_map_set(self._indexes, key)
        try:
            del self._indexes[key]
        except KeyError:
            raise CatalogError(
                f"no index on {set_name}.{attribute} of kind {kind}"
            ) from None
        self._notify()

    def find(self, set_name: str, attribute: str, kinds: Iterable[str]) -> Optional[IndexDescriptor]:
        """The first existing index over ``set_name.attribute`` whose kind
        appears in ``kinds`` (the applicability row from the table)."""
        for kind in kinds:
            descriptor = self._indexes.get((set_name, attribute, kind))
            if descriptor is not None:
                return descriptor
        return None

    def indexes_on(self, set_name: str) -> list[IndexDescriptor]:
        """All indexes over members of ``set_name``."""
        return [d for (s, _a, _k), d in self._indexes.items() if s == set_name]

    def all_indexes(self) -> list[IndexDescriptor]:
        """Every index in the system."""
        return list(self._indexes.values())

    # -- maintenance hooks ---------------------------------------------------------

    def on_insert(self, set_name: str, oid: int, key_of: Callable[[str], Any]) -> None:
        """Index a new member; ``key_of(attribute)`` extracts key values.
        Null keys are skipped (nulls never satisfy indexed predicates)."""
        for descriptor in self.indexes_on(set_name):
            key = key_of(descriptor.attribute)
            if key is not None:
                descriptor.index.insert(key, oid)
                self._note_entry(descriptor, key, oid, added=True)

    def on_delete(self, set_name: str, oid: int, key_of: Callable[[str], Any]) -> None:
        """Remove a member from all indexes over its set."""
        for descriptor in self.indexes_on(set_name):
            key = key_of(descriptor.attribute)
            if key is not None:
                descriptor.index.delete(key, oid)
                self._note_entry(descriptor, key, oid, added=False)

    def _note_entry(
        self, descriptor: IndexDescriptor, key: Any, oid: int, added: bool
    ) -> None:
        """Record the entry-level inverse on the open undo log: O(1) per
        mutation instead of before-imaging whole index structures."""
        if self.undo is None:
            return
        # no conflict key: the member-list before-image of the indexed
        # set already covers the write for conflict-detection purposes
        index = descriptor.index
        if added:
            self.undo.op(
                lambda: index.delete(key, oid),
                redo=lambda: index.insert(key, oid),
            )
        else:
            self.undo.op(
                lambda: index.insert(key, oid),
                redo=lambda: index.delete(key, oid),
            )

    def on_update(
        self,
        set_name: str,
        oid: int,
        old_key_of: Callable[[str], Any],
        new_key_of: Callable[[str], Any],
    ) -> None:
        """Re-index a member whose attributes changed."""
        for descriptor in self.indexes_on(set_name):
            old_key = old_key_of(descriptor.attribute)
            new_key = new_key_of(descriptor.attribute)
            if old_key == new_key:
                continue
            if old_key is not None:
                descriptor.index.delete(old_key, oid)
                self._note_entry(descriptor, old_key, oid, added=False)
            if new_key is not None:
                descriptor.index.insert(new_key, oid)
                self._note_entry(descriptor, new_key, oid, added=True)
