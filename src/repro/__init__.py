"""EXTRA/EXCESS — a full reimplementation of the EXODUS data model and
query language (Carey, DeWitt, Vandenberg, SIGMOD 1988).

Quickstart::

    from repro import Database

    db = Database()
    db.execute('''
        define type Person as (name: char(30), age: int4)
        create {own ref Person} People
        append to People (name = "Sue", age = 40)
    ''')
    result = db.execute('retrieve (P.name) from P in People where P.age > 30')
    print(result.pretty())

Public surface:

* :class:`Database` — the engine facade (Python API + ``execute``);
* :class:`Result` — query results;
* the EXTRA type constructors (``own``/``ref``/``own_ref``, base types,
  ``SetType``/``ArrayType``/``TupleType``) for the Python-level API;
* the built-in ADTs ``Date`` and ``Complex``;
* the exception hierarchy under :class:`~repro.errors.ExtraError`.
"""

from repro.core.database import Database, Session
from repro.core.schema import Rename, SchemaType
from repro.core.types import (
    ArrayType,
    BOOLEAN,
    ComponentSpec,
    EnumType,
    FLOAT4,
    FLOAT8,
    INT1,
    INT2,
    INT4,
    Semantics,
    SetType,
    TEXT,
    TupleType,
    Type,
    char,
    enumeration,
    own,
    own_ref,
    ref,
)
from repro.core.values import (
    NULL,
    ArrayInstance,
    Ref,
    SetInstance,
    TupleInstance,
)
from repro.adt.builtin import Complex, Date
from repro.errors import (
    AuthorizationError,
    BindError,
    CatalogError,
    EvaluationError,
    ExcessError,
    ExtraError,
    IntegrityError,
    LexicalError,
    OwnershipError,
    ParseError,
    SchemaError,
    StorageError,
    TypeSystemError,
)
from repro.excess.result import Result

__version__ = "1.0.0"

__all__ = [
    "Database",
    "Session",
    "Result",
    "SchemaType",
    "Rename",
    "ArrayType",
    "SetType",
    "TupleType",
    "Type",
    "ComponentSpec",
    "EnumType",
    "Semantics",
    "BOOLEAN",
    "FLOAT4",
    "FLOAT8",
    "INT1",
    "INT2",
    "INT4",
    "TEXT",
    "char",
    "enumeration",
    "own",
    "own_ref",
    "ref",
    "NULL",
    "Ref",
    "TupleInstance",
    "SetInstance",
    "ArrayInstance",
    "Date",
    "Complex",
    "ExtraError",
    "TypeSystemError",
    "SchemaError",
    "CatalogError",
    "IntegrityError",
    "OwnershipError",
    "ExcessError",
    "LexicalError",
    "ParseError",
    "BindError",
    "EvaluationError",
    "StorageError",
    "AuthorizationError",
    "__version__",
]
