"""``python -m repro`` — the EXTRA/EXCESS interactive shell."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
