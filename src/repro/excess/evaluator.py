"""The EXCESS evaluator: nested-loop execution over range bindings.

Executes bound (and optimized) statements against a
:class:`~repro.core.database.Database`:

* range bindings become nested loops (set scans, index scans, nested-set
  expansions, iterator functions), with optimizer-pushed residual
  predicates applied as soon as their variable is bound;
* universal (``every``) bindings are checked with ∀ semantics per
  surviving existential binding;
* aggregates are precomputed into partition tables (global and
  partitioned modes) or evaluated per-row with memoization (correlated
  mode);
* comparison and boolean logic follow QUEL-style three-valued semantics:
  any comparison with null is unknown, Kleene logic connects unknowns,
  and a row qualifies only when the where clause is definitely true;
* dangling references (targets deleted since the reference was stored)
  read as null everywhere, implementing GEM referential integrity.

Update statements collect their qualifying bindings first and apply
mutations afterwards, so an update never observes its own effects
(QUEL's snapshot semantics) and iteration never races with mutation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.core.database import Database
from repro.core.schema import SchemaType
from repro.core.types import (
    BOOLEAN,
    ComponentSpec,
    FLOAT8,
    IntegerType,
    Semantics,
    SetType,
    TEXT,
    TupleType,
    Type,
    own,
    ref as ref_spec,
)
from repro.core.values import (
    NULL,
    ArrayInstance,
    Ref,
    SetInstance,
    TupleInstance,
    check_slot,
    copy_value,
    value_equal,
)
from repro.errors import EvaluationError, IntegrityError
from repro.excess.binder import (
    AdtCall,
    AggregateRef,
    AttrStep,
    Binary,
    BoundAggregate,
    BoundAppend,
    BoundDelete,
    BoundExpr,
    BoundQuery,
    BoundReplace,
    BoundRetrieve,
    BoundSetStatement,
    CollectionTarget,
    Const,
    ExcessCall,
    IndexStepB,
    IteratorSource,
    Membership,
    NamedSetSource,
    NamedValue,
    PathSource,
    RangeBinding,
    Unary,
    VarRef,
)
from repro.excess.result import Result

__all__ = ["Evaluator", "ExecMetrics", "canonical_key"]

Env = dict

#: sentinel distinguishing "binding name absent from env" from a None value
_MISSING = object()


@dataclass
class ExecMetrics:
    """Per-statement execution counters surfaced by EXPLAIN and ``--time``."""

    #: candidate members enumerated from binding sources (all loops)
    rows_scanned: int = 0
    #: hash tables built for hash-join build sides
    hash_builds: int = 0
    #: probe-side lookups into hash-join tables
    hash_probes: int = 0
    #: member-key sets materialized for semi-join memberships
    semi_builds: int = 0
    #: plan-cache outcome ("hit" | "miss" | "" when caching not involved)
    cache: str = ""
    #: end-to-end statement wall time (filled in by the interpreter)
    wall_ms: float = 0.0

    def as_dict(self) -> dict:
        return {
            "rows_scanned": self.rows_scanned,
            "hash_builds": self.hash_builds,
            "hash_probes": self.hash_probes,
            "semi_builds": self.semi_builds,
            "cache": self.cache,
            "wall_ms": round(self.wall_ms, 3),
        }

    def describe(self) -> str:
        return (
            f"rows_scanned={self.rows_scanned} hash_builds={self.hash_builds} "
            f"hash_probes={self.hash_probes} semi_builds={self.semi_builds}"
        )


def canonical_key(value: Any) -> Any:
    """A hashable canonical form for grouping and duplicate elimination."""
    if value is NULL:
        return ("null",)
    if isinstance(value, Ref):
        return ("ref", value.oid)
    if isinstance(value, TupleInstance):
        if value.oid is not None:
            return ("ref", value.oid)
        return tuple(
            (name, canonical_key(slot))
            for name, slot in value.attributes().items()
        )
    if isinstance(value, SetInstance):
        return ("set",) + tuple(sorted(canonical_key(m) for m in value))
    if isinstance(value, ArrayInstance):
        return ("array",) + tuple(canonical_key(s) for s in value)
    try:
        hash(value)
    except TypeError:
        return ("repr", repr(value))
    return value


class Evaluator:
    """Executes bound statements against one database."""

    MAX_FUNCTION_DEPTH = 32

    def __init__(self, database: Database, user: str = "dba"):
        self.db = database
        self.user = user
        self._function_depth = 0
        self.metrics = ExecMetrics()
        #: id(binding) → hash-join build table; valid until data mutates
        self._hash_tables: dict[int, dict] = {}
        #: id(membership node) → materialized member-key set (semi-join)
        self._semi_sets: dict[int, set] = {}

    def _invalidate_exec_caches(self) -> None:
        """Drop memoized hash tables and semi-join key sets.

        Called before an update statement applies its pending mutations so
        a later statement executed by this same evaluator (procedures,
        EXCESS functions) never sees stale build tables.
        """
        self._hash_tables.clear()
        self._semi_sets.clear()

    # ------------------------------------------------------------------
    # Retrieve
    # ------------------------------------------------------------------

    def run_retrieve(
        self, bound: BoundRetrieve, base_env: Optional[Env] = None
    ) -> Result:
        """Execute a retrieve; returns rows (and creates the ``into``
        result object when requested)."""
        env0: Env = dict(base_env or {})
        tables = self._precompute_aggregates(bound.query, env0)
        rows: list[tuple] = []
        sort_keys: list[tuple] = []
        seen: set = set()
        for env in self._iterate(bound.query, env0, tables):
            row = tuple(
                self._eval(t.expression, env, tables) for t in bound.targets
            )
            if bound.unique:
                key = tuple(canonical_key(v) for v in row)
                if key in seen:
                    continue
                seen.add(key)
            if bound.order:
                sort_keys.append(
                    tuple(
                        self._eval(expr, env, tables)
                        for expr, _desc in bound.order
                    )
                )
            rows.append(row)
        if bound.order:
            rows = self._sort_rows(rows, sort_keys, bound.order)
        columns = [t.label for t in bound.targets]
        result = Result(kind="retrieve", columns=columns, rows=rows)
        if bound.into:
            self._store_into(bound, result)
        return result

    @staticmethod
    def _sort_rows(
        rows: list[tuple], sort_keys: list[tuple], order: list
    ) -> list[tuple]:
        """Stable multi-key sort; nulls sort last regardless of direction
        (sorting is applied key by key, least significant first)."""
        decorated = list(zip(sort_keys, rows))
        for position in reversed(range(len(order))):
            _expr, descending = order[position]
            nulls = [pair for pair in decorated if pair[0][position] is NULL]
            rest = [pair for pair in decorated if pair[0][position] is not NULL]

            def key_of(pair, position=position):
                value = pair[0][position]
                if isinstance(value, Ref):
                    return value.oid
                if isinstance(value, bool):
                    return int(value)
                return value

            try:
                rest.sort(key=key_of, reverse=descending)
            except TypeError as exc:
                raise EvaluationError(
                    f"sort keys are not mutually comparable: {exc}"
                ) from exc
            decorated = rest + nulls
        return [row for _keys, row in decorated]

    def _store_into(self, bound: BoundRetrieve, result: Result) -> None:
        """Materialize a retrieve-into result as a named set of tuples."""
        specs: list[tuple[str, ComponentSpec]] = []
        for index, target in enumerate(bound.targets):
            expr = target.expression
            if expr.is_object and isinstance(expr.type, SchemaType):
                spec = ref_spec(expr.type)
            elif expr.type is not None:
                spec = own(expr.type)
            else:
                spec = own(self._infer_type(result.rows, index))
            specs.append((target.label, spec))
        row_type = TupleType(specs)
        named = self.db.create_named(
            bound.into, own(SetType(own(row_type))), user=self.user
        )
        collection: SetInstance = named.value
        for row in result.rows:
            instance = TupleInstance(row_type)
            for (label, spec), value in zip(specs, row):
                instance._slots[label] = (
                    copy_value(value)
                    if spec.semantics is Semantics.OWN and value is not NULL
                    else value
                )
            collection.insert(instance)
        result.message = f"stored {len(result.rows)} row(s) into {bound.into!r}"

    @staticmethod
    def _infer_type(rows: list[tuple], index: int) -> Type:
        for row in rows:
            value = row[index]
            if value is NULL:
                continue
            if isinstance(value, bool):
                return BOOLEAN
            if isinstance(value, int):
                return IntegerType(8)
            if isinstance(value, float):
                return FLOAT8
            if isinstance(value, str):
                return TEXT
            break
        return TEXT

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def run_append(
        self, bound: BoundAppend, base_env: Optional[Env] = None
    ) -> Result:
        """Execute an append statement."""
        env0: Env = dict(base_env or {})
        tables = self._precompute_aggregates(bound.query, env0)
        pending: list[tuple[Env, Any]] = []
        for env in self._iterate(bound.query, env0, tables):
            if bound.assignments:
                raw = {
                    attribute: self._eval(expression, env, tables)
                    for attribute, expression in bound.assignments
                }
                raw = {k: v for k, v in raw.items() if v is not NULL}
                pending.append((env, raw))
            else:
                assert bound.expression is not None
                pending.append((env, self._eval(bound.expression, env, tables)))
        count = 0
        self._invalidate_exec_caches()
        for env, payload in pending:
            if self._append_one(bound.target, payload, env, tables):
                count += 1
        return Result(kind="append", count=count, message=f"appended {count}")

    def _append_one(
        self, target: CollectionTarget, payload: Any, env: Env, tables: dict
    ) -> bool:
        if target.kind == "named":
            named = self.db.named(target.name)
            collection = named.value
            if isinstance(collection, ArrayInstance):
                collection.append(self._array_payload(collection, payload))
                return True
            if isinstance(payload, dict):
                return self.db.insert(target.name, **payload) is not None
            return self.db.insert(target.name, payload) is not None
        # path collection: resolve the owner instance per env
        owner, collection = self._resolve_collection(target, env, tables)
        if collection is None:
            return False
        if isinstance(collection, ArrayInstance):
            collection.append(self._array_payload(collection, payload))
            self._mark_owner_dirty(owner)
            return True
        element = collection.element
        if element.semantics is Semantics.OWN:
            member = self.db.integrity._build_own_value(element.type, payload)
            added = collection.insert(member)
        elif isinstance(payload, dict):
            if element.semantics is Semantics.REF:
                raise IntegrityError(
                    "inline construction requires an own ref collection"
                )
            assert isinstance(element.type, SchemaType)
            owner_oid = owner.oid if isinstance(owner, TupleInstance) else None
            member = self.db.integrity.create_object(
                element.type, payload, owner=owner_oid
            )
            added = collection.insert(member)
        else:
            if not isinstance(payload, Ref):
                raise EvaluationError(
                    f"cannot append {payload!r} to a reference collection"
                )
            self.db.integrity.check_ref_target(element, payload)
            if element.semantics is Semantics.OWN_REF:
                owner_oid = owner.oid if isinstance(owner, TupleInstance) else None
                if owner_oid is not None:
                    self.db.objects.claim(payload.oid, owner=owner_oid)
            added = collection.insert(payload)
        self._mark_owner_dirty(owner)
        return added

    def _array_payload(self, collection: ArrayInstance, payload: Any) -> Any:
        if isinstance(payload, dict):
            element = collection.element
            if element.semantics is Semantics.OWN:
                return self.db.integrity._build_own_value(element.type, payload)
            raise EvaluationError(
                "inline construction into reference arrays is not supported"
            )
        return payload

    def _mark_owner_dirty(self, owner: Any) -> None:
        if isinstance(owner, TupleInstance) and owner.oid is not None:
            self.db.objects.mark_dirty(owner.oid)

    def _resolve_collection(
        self, target: CollectionTarget, env: Env, tables: dict
    ) -> tuple[Any, Optional[Any]]:
        """Resolve a path collection target to (owner_instance, collection)."""
        assert target.base is not None
        base_value = self._eval(target.base, env, tables)
        instance = self._resolve_instance(base_value)
        if instance is None:
            return None, None
        current: Any = instance
        owner: Any = instance
        for index, step in enumerate(target.steps):
            if not isinstance(current, TupleInstance):
                return None, None
            owner = current
            value = current.get(step)
            if value is NULL:
                return None, None
            if isinstance(value, Ref):
                value = self._deref(value)
                if value is None:
                    return None, None
            current = value
        if isinstance(current, (SetInstance, ArrayInstance)):
            return owner, current
        return None, None

    def run_delete(
        self, bound: BoundDelete, base_env: Optional[Env] = None
    ) -> Result:
        """Execute a delete statement."""
        env0: Env = dict(base_env or {})
        tables = self._precompute_aggregates(bound.query, env0)
        binding = next(
            b for b in bound.query.bindings if b.name == bound.variable
        )
        victims: list[tuple[Any, Optional[SetInstance], Optional[str]]] = []
        seen: set = set()
        for env in self._iterate(bound.query, env0, tables):
            member = env[bound.variable]
            key = canonical_key(member)
            if key in seen:
                continue
            seen.add(key)
            collection, set_name = self._binding_collection(binding, env)
            victims.append((member, collection, set_name))
        deleted = 0
        self._invalidate_exec_caches()
        for member, collection, set_name in victims:
            if isinstance(member, Ref):
                deleted += 1 if self.db.delete(member) else 0
            elif collection is not None:
                if set_name is not None:
                    named = self.db.named(set_name)
                    self.db.integrity.remove_member(named, collection, member)
                else:
                    collection.remove(member)
                deleted += 1
        return Result(kind="delete", count=deleted, message=f"deleted {deleted}")

    def _binding_collection(
        self, binding: RangeBinding, env: Env
    ) -> tuple[Optional[SetInstance], Optional[str]]:
        source = binding.source
        if isinstance(source, NamedSetSource):
            named = self.db.named(source.set_name)
            value = named.value
            return (value if isinstance(value, SetInstance) else None), source.set_name
        if isinstance(source, PathSource):
            parent = env.get(source.parent)
            instance = self._resolve_instance(parent)
            current: Any = instance
            for step in source.steps:
                if not isinstance(current, TupleInstance):
                    return None, None
                value = current.get(step)
                if isinstance(value, Ref):
                    value = self._deref(value)
                current = value
            if isinstance(current, SetInstance):
                return current, None
        return None, None

    def run_replace(
        self, bound: BoundReplace, base_env: Optional[Env] = None
    ) -> Result:
        """Execute a replace statement."""
        env0: Env = dict(base_env or {})
        tables = self._precompute_aggregates(bound.query, env0)
        pending: list[tuple[Any, dict[str, Any]]] = []
        for env in self._iterate(bound.query, env0, tables):
            target_value = self._eval(bound.target, env, tables)
            if target_value is NULL:
                continue
            changes = {
                attribute: self._eval(expression, env, tables)
                for attribute, expression in bound.assignments
            }
            pending.append((target_value, changes))
        count = 0
        self._invalidate_exec_caches()
        for target_value, changes in pending:
            if isinstance(target_value, Ref):
                self._apply_indexed_changes(target_value, changes)
                count += 1
            elif isinstance(target_value, TupleInstance):
                self.db.apply_changes(target_value, changes)
                count += 1
        return Result(kind="replace", count=count, message=f"replaced {count}")

    def _apply_indexed_changes(self, reference: Ref, changes: dict) -> None:
        """Apply changes to an object, maintaining indexes of every named
        set the object belongs to."""
        instance = self._deref(reference)
        if instance is None:
            return
        containing: list[str] = []
        for descriptor in self.db.catalog.indexes.all_indexes():
            named = self.db.named(descriptor.set_name)
            if isinstance(named.value, SetInstance) and named.value.contains(reference):
                if descriptor.set_name not in containing:
                    containing.append(descriptor.set_name)
        snapshots = {
            name: self.db._key_snapshot(name, instance) for name in containing
        }
        self.db.apply_changes(instance, changes)
        for name in containing:
            new_snapshot = self.db._key_snapshot(name, instance)
            self.db.catalog.indexes.on_update(
                name, reference.oid, snapshots[name].get, new_snapshot.get
            )

    def run_set(
        self, bound: BoundSetStatement, base_env: Optional[Env] = None
    ) -> Result:
        """Execute a set (slot assignment) statement."""
        env0: Env = dict(base_env or {})
        tables = self._precompute_aggregates(bound.query, env0)
        pending: list[tuple[Env, Any]] = []
        for env in self._iterate(bound.query, env0, tables):
            pending.append((env, self._eval(bound.expression, env, tables)))
        count = 0
        self._invalidate_exec_caches()
        for env, value in pending:
            kind = bound.location[0]
            if kind == "named":
                named = self.db.named(bound.location[1])
                canonical = check_slot(named.spec, value)
                if named.spec.semantics is Semantics.OWN and canonical is not NULL:
                    canonical = copy_value(canonical)
                if isinstance(canonical, Ref):
                    self.db.integrity.check_ref_target(named.spec, canonical)
                named.value = canonical
                count += 1
            elif kind == "slot":
                base = self._eval(bound.location[1], env, tables)
                instance = self._resolve_instance(base)
                if instance is None:
                    continue
                self.db.apply_changes(
                    instance, {bound.location[2]: value}
                )
                count += 1
            else:  # index
                base = self._eval(bound.location[1], env, tables)
                index = self._eval(bound.location[2], env, tables)
                if base is NULL or index is NULL:
                    continue
                if not isinstance(base, ArrayInstance):
                    raise EvaluationError("set target is not an array")
                if isinstance(value, Ref):
                    self.db.integrity.check_ref_target(base.element, value)
                base.set(index, value)
                count += 1
        return Result(kind="set", count=count, message=f"set {count}")

    # ------------------------------------------------------------------
    # Binding iteration
    # ------------------------------------------------------------------

    def _iterate(
        self, query: BoundQuery, base_env: Env, tables: dict
    ) -> Iterator[Env]:
        existential = [b for b in query.bindings if not b.universal]
        universal = [b for b in query.bindings if b.universal]
        metrics = self.metrics

        def qualifies(env: Env) -> bool:
            if query.where is None:
                # vacuously true — ∀ bindings need not be iterated at all
                return True
            if universal:
                return self._check_universal(universal, 0, env, query, tables)
            return self._eval(query.where, env, tables) is True

        # One shared env mutated in place; a snapshot is taken only for
        # qualifying rows (consumers keep yielded envs in pending lists).
        env: Env = dict(base_env)

        def recurse(index: int) -> Iterator[Env]:
            if index == len(existential):
                if qualifies(env):
                    yield dict(env)
                return
            binding = existential[index]
            saved = env.get(binding.name, _MISSING)
            try:
                if (
                    binding.join_strategy == "hash"
                    and binding.hash_probe_key is not None
                ):
                    table = self._hash_table_for(binding, tables)
                    probe_value = self._eval(
                        binding.hash_probe_key, env, tables
                    )
                    metrics.hash_probes += 1
                    key = self._join_key(probe_value, binding.hash_join_op)
                    matches = () if key is None else table.get(key, ())
                    # residuals were applied while building the table
                    for member in matches:
                        env[binding.name] = member
                        yield from recurse(index + 1)
                    return
                for member in self._source_values(binding, env, tables):
                    metrics.rows_scanned += 1
                    env[binding.name] = member
                    if all(
                        self._eval(residual, env, tables) is True
                        for residual in binding.residual
                    ):
                        yield from recurse(index + 1)
            finally:
                if saved is _MISSING:
                    env.pop(binding.name, None)
                else:
                    env[binding.name] = saved

        yield from recurse(0)

    # -- hash joins ---------------------------------------------------------

    def _join_key(self, value: Any, op: str) -> Optional[Any]:
        """The hash key for one side of a join conjunct.

        Returns None when the row cannot match anything: a null value
        under ``=`` is unknown against every member (3VL), so it neither
        enters the build table nor probes. Under ``is``, null keys *do*
        participate — ``null is null`` is true (both denote no object) —
        and non-objects raise exactly as nested-loop ``is`` would.
        """
        if op == "is":
            if value is NULL:
                return ("null",)
            return ("ref", self._object_oid(value))
        if value is NULL:
            return None
        return canonical_key(value)

    def _hash_table_for(self, binding: RangeBinding, tables: dict) -> dict:
        table = self._hash_tables.get(id(binding))
        if table is None:
            table = self._build_hash_table(binding, tables)
            self._hash_tables[id(binding)] = table
        return table

    def _build_hash_table(self, binding: RangeBinding, tables: dict) -> dict:
        """Load the build side once: scan its named set, apply residuals,
        key surviving members by the build expression."""
        self.metrics.hash_builds += 1
        table: dict[Any, list] = {}
        env: Env = {}
        for member in self._source_values(binding, env, tables):
            self.metrics.rows_scanned += 1
            env[binding.name] = member
            if not all(
                self._eval(residual, env, tables) is True
                for residual in binding.residual
            ):
                continue
            key_value = self._eval(binding.hash_build_key, env, tables)
            key = self._join_key(key_value, binding.hash_join_op)
            if key is None:
                continue
            table.setdefault(key, []).append(member)
        return table

    def _check_universal(
        self,
        universal: list[RangeBinding],
        index: int,
        env: Env,
        query: BoundQuery,
        tables: dict,
    ) -> bool:
        if index == len(universal):
            if query.where is None:
                return True
            return self._eval(query.where, env, tables) is True
        binding = universal[index]
        for member in self._source_values(binding, env, tables):
            self.metrics.rows_scanned += 1
            child = dict(env)
            child[binding.name] = member
            if not self._check_universal(universal, index + 1, child, query, tables):
                return False
        return True

    def _source_values(
        self, binding: RangeBinding, env: Env, tables: dict
    ) -> Iterator[Any]:
        source = binding.source
        if isinstance(source, NamedSetSource):
            named = self.db.named(source.set_name)
            collection = named.value
            if isinstance(collection, ArrayInstance):
                # named arrays iterate their non-null, live slots in order
                for slot in collection:
                    if slot is NULL:
                        continue
                    if isinstance(slot, Ref) and not self.db.objects.is_live(
                        slot.oid
                    ):
                        continue
                    yield slot
                return
            if not isinstance(collection, SetInstance):
                raise EvaluationError(
                    f"{source.set_name!r} is not a collection"
                )
            if binding.access == "index" and binding.index_descriptor is not None:
                yield from self._index_scan(binding, env, tables)
                return
            yield from self.db.integrity.live_members(collection)
            return
        if isinstance(source, PathSource):
            parent_value = env.get(source.parent)
            instance = self._resolve_instance(parent_value)
            current: Any = instance
            for step in source.steps:
                if not isinstance(current, TupleInstance):
                    return
                value = current.get(step)
                if value is NULL:
                    return
                if isinstance(value, Ref):
                    value = self._deref(value)
                    if value is None:
                        return
                current = value
            if isinstance(current, SetInstance):
                yield from self.db.integrity.live_members(current)
            elif isinstance(current, ArrayInstance):
                for slot in current:
                    if slot is NULL:
                        continue
                    if isinstance(slot, Ref) and not self.db.objects.is_live(slot.oid):
                        continue
                    yield slot
            return
        if isinstance(source, IteratorSource):
            args = [self._eval(a, env, tables) for a in source.args]
            if any(a is NULL for a in args):
                return
            yield from source.function.impl(*args)
            return
        raise EvaluationError(f"unknown binding source {type(source).__name__}")

    def _index_scan(
        self, binding: RangeBinding, env: Env, tables: dict
    ) -> Iterator[Ref]:
        descriptor = binding.index_descriptor
        key = self._eval(binding.index_key, env, tables)
        if key is NULL:
            return
        index = descriptor.index
        op = binding.index_op
        if op == "=":
            oids = index.search(key)
        else:
            if not getattr(index, "supports_range", False):
                raise EvaluationError("index does not support range scans")
            if op in ("<", "<="):
                pairs = index.range_scan(None, key, include_high=(op == "<="))
            else:
                pairs = index.range_scan(key, None, include_low=(op == ">="))
            oids = [oid for _key, oid in pairs]
        for oid in oids:
            if self.db.objects.is_live(oid):
                yield Ref(oid)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    def _precompute_aggregates(self, query: BoundQuery, base_env: Env) -> dict:
        """Build evaluation tables for global and partitioned aggregates;
        correlated ones get a memo dict filled on demand."""
        tables: dict[int, Any] = {}
        for aggregate in query.aggregates:
            if aggregate.mode == "correlated":
                tables[aggregate.aggregate_id] = ("correlated", aggregate, {})
                continue
            groups: dict[Any, list] = {}
            inner = BoundQuery(
                bindings=aggregate.inner_bindings, where=aggregate.where
            )
            for env in self._iterate(inner, dict(base_env), tables):
                value = self._eval(aggregate.argument, env, tables)
                if value is NULL:
                    continue
                if aggregate.mode == "partition":
                    assert aggregate.inner_key is not None
                    key = canonical_key(
                        self._eval(aggregate.inner_key, env, tables)
                    )
                else:
                    key = ()
                groups.setdefault(key, []).append(value)
            computed = {
                key: aggregate.function.impl(values)
                for key, values in groups.items()
            }
            tables[aggregate.aggregate_id] = (aggregate.mode, aggregate, computed)
        return tables

    def _eval_aggregate_ref(
        self, node: AggregateRef, env: Env, tables: dict
    ) -> Any:
        mode, aggregate, computed = tables[node.aggregate_id]
        if mode == "global":
            if () in computed:
                return self._null_if_none(computed[()])
            return self._empty_aggregate(aggregate)
        if mode == "partition":
            assert node.outer_key is not None
            key = canonical_key(self._eval(node.outer_key, env, tables))
            if key in computed:
                return self._null_if_none(computed[key])
            return self._empty_aggregate(aggregate)
        # correlated: evaluate over nested sets under the current env
        memo_key = tuple(
            canonical_key(env.get(dep, NULL)) for dep in aggregate.outer_deps
        )
        memo = computed
        if memo_key in memo:
            return memo[memo_key]
        values: list = []
        inner = BoundQuery(bindings=aggregate.inner_bindings, where=aggregate.where)
        for inner_env in self._iterate(inner, dict(env), tables):
            value = self._eval(aggregate.argument, inner_env, tables)
            if value is not NULL:
                values.append(value)
        if values:
            result = self._null_if_none(aggregate.function.impl(values))
        else:
            result = self._empty_aggregate(aggregate)
        memo[memo_key] = result
        return result

    def _empty_aggregate(self, aggregate: BoundAggregate) -> Any:
        if aggregate.function.empty_value is not None:
            return aggregate.function.empty_value
        return NULL

    @staticmethod
    def _null_if_none(value: Any) -> Any:
        return NULL if value is None else value

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------

    def _deref(self, reference: Ref) -> Optional[TupleInstance]:
        return self.db.objects.deref(reference.oid)

    def _resolve_instance(self, value: Any) -> Optional[TupleInstance]:
        if isinstance(value, Ref):
            return self._deref(value)
        if isinstance(value, TupleInstance):
            return value
        return None

    def _normalize_ref(self, value: Any) -> Any:
        """A dangling reference reads as null (GEM semantics)."""
        if isinstance(value, Ref) and not self.db.objects.is_live(value.oid):
            return NULL
        return value

    def _eval(self, node: BoundExpr, env: Env, tables: dict) -> Any:
        """Evaluate a bound expression; unknowns surface as NULL."""
        if isinstance(node, Const):
            return node.value
        if isinstance(node, VarRef):
            value = env.get(node.name, NULL)
            return self._normalize_ref(value)
        if isinstance(node, NamedValue):
            named = self.db.named(node.name)
            return self._normalize_ref(named.value)
        if isinstance(node, AttrStep):
            base = self._eval(node.base, env, tables)
            instance = self._resolve_instance(base)
            if instance is None:
                return NULL
            value = instance.get(node.attribute)
            return self._normalize_ref(value)
        if isinstance(node, IndexStepB):
            base = self._eval(node.base, env, tables)
            index = self._eval(node.index, env, tables)
            if base is NULL or index is NULL:
                return NULL
            if not isinstance(base, ArrayInstance):
                raise EvaluationError(f"indexing a non-array value {base!r}")
            if not isinstance(index, int) or isinstance(index, bool):
                raise EvaluationError(f"array index must be an integer")
            if index < 1 or index > len(base):
                return NULL  # reads beyond the end are null; writes error
            return self._normalize_ref(base.get(index))
        if isinstance(node, Binary):
            return self._eval_binary(node, env, tables)
        if isinstance(node, Unary):
            return self._eval_unary(node, env, tables)
        if isinstance(node, AdtCall):
            return self._eval_adt_call(node, env, tables)
        if isinstance(node, ExcessCall):
            return self._eval_excess_call(node, env, tables)
        if isinstance(node, AggregateRef):
            return self._eval_aggregate_ref(node, env, tables)
        if isinstance(node, Membership):
            return self._eval_membership(node, env, tables)
        raise EvaluationError(f"cannot evaluate {type(node).__name__}")

    def _eval_binary(self, node: Binary, env: Env, tables: dict) -> Any:
        if node.kind == "bool":
            return self._eval_bool(node, env, tables)
        if node.kind == "object":
            return self._eval_object_equality(node, env, tables)
        left = self._eval(node.left, env, tables)
        right = self._eval(node.right, env, tables)
        if node.kind == "concat":
            if left is NULL or right is NULL:
                return NULL
            return str(left) + str(right)
        if left is NULL or right is NULL:
            return NULL
        if node.kind == "compare":
            if node.enum_labels is not None:
                left, right = self._enum_ordinals(node.enum_labels, left, right)
            return self._compare(node.op, left, right)
        # arithmetic
        try:
            if node.op == "+":
                return left + right
            if node.op == "-":
                return left - right
            if node.op == "*":
                return left * right
            if node.op == "/":
                if right == 0:
                    raise EvaluationError("division by zero")
                if isinstance(left, int) and isinstance(right, int):
                    return left // right if left % right == 0 else left / right
                return left / right
            if node.op == "%":
                if right == 0:
                    raise EvaluationError("modulo by zero")
                return left % right
        except TypeError as exc:
            raise EvaluationError(f"bad arithmetic operands: {exc}") from exc
        raise EvaluationError(f"unknown arithmetic operator {node.op!r}")

    @staticmethod
    def _enum_ordinals(labels: tuple, left: Any, right: Any) -> tuple:
        """Map enum labels to their declaration-order ordinals so that
        comparisons follow the enumeration's order."""
        def ordinal(value: Any) -> Any:
            if isinstance(value, str):
                try:
                    return labels.index(value)
                except ValueError:
                    raise EvaluationError(
                        f"{value!r} is not a label of the enumeration"
                    ) from None
            return value

        return ordinal(left), ordinal(right)

    def _compare(self, op: str, left: Any, right: Any) -> Any:
        try:
            if op == "=":
                return value_equal(left, right)
            if op == "!=":
                return not value_equal(left, right)
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            if op == ">=":
                return left >= right
        except TypeError as exc:
            raise EvaluationError(f"incomparable values: {exc}") from exc
        raise EvaluationError(f"unknown comparison {op!r}")

    def _eval_bool(self, node: Binary, env: Env, tables: dict) -> Any:
        """Kleene three-valued and/or (NULL = unknown)."""
        left = self._as_truth(self._eval(node.left, env, tables))
        if node.op == "and":
            if left is False:
                return False
            right = self._as_truth(self._eval(node.right, env, tables))
            if right is False:
                return False
            if left is None or right is None:
                return NULL
            return True
        if node.op == "or":
            if left is True:
                return True
            right = self._as_truth(self._eval(node.right, env, tables))
            if right is True:
                return True
            if left is None or right is None:
                return NULL
            return False
        raise EvaluationError(f"unknown boolean operator {node.op!r}")

    @staticmethod
    def _as_truth(value: Any) -> Optional[bool]:
        if value is NULL:
            return None
        if isinstance(value, bool):
            return value
        raise EvaluationError(f"boolean operand expected, got {value!r}")

    def _eval_object_equality(self, node: Binary, env: Env, tables: dict) -> Any:
        left = self._normalize_ref(self._eval(node.left, env, tables))
        right = self._normalize_ref(self._eval(node.right, env, tables))
        if left is NULL or right is NULL:
            # `X is null` tests for null-ness; two nulls are the same
            # (both denote no object), a null and anything else are not.
            same = left is NULL and right is NULL
        else:
            same = self._object_oid(left) == self._object_oid(right)
        return same if node.op == "is" else not same

    @staticmethod
    def _object_oid(value: Any) -> Optional[int]:
        if value is NULL:
            return None
        if isinstance(value, Ref):
            return value.oid
        if isinstance(value, TupleInstance) and value.oid is not None:
            return value.oid
        raise EvaluationError(
            f"'is'/'isnot' compares object references, got {value!r}"
        )

    def _eval_unary(self, node: Unary, env: Env, tables: dict) -> Any:
        value = self._eval(node.operand, env, tables)
        if node.op == "not":
            truth = self._as_truth(value)
            if truth is None:
                return NULL
            return not truth
        if node.op == "-":
            if value is NULL:
                return NULL
            try:
                return -value
            except TypeError as exc:
                raise EvaluationError(f"cannot negate {value!r}") from exc
        raise EvaluationError(f"unknown unary operator {node.op!r}")

    def _eval_adt_call(self, node: AdtCall, env: Env, tables: dict) -> Any:
        args = [self._eval(a, env, tables) for a in node.args]
        if any(a is NULL for a in args):
            return NULL
        try:
            result = node.function.impl(*args)
        except EvaluationError:
            raise
        except Exception as exc:
            raise EvaluationError(
                f"ADT function {node.function.name!r} failed: {exc}"
            ) from exc
        return NULL if result is None else result

    def _eval_excess_call(self, node: ExcessCall, env: Env, tables: dict) -> Any:
        from repro.excess.functions import call_function

        args = [self._eval(a, env, tables) for a in node.args]
        if self._function_depth >= self.MAX_FUNCTION_DEPTH:
            raise EvaluationError(
                f"EXCESS function recursion deeper than {self.MAX_FUNCTION_DEPTH}"
            )
        self._function_depth += 1
        try:
            return call_function(self, node.name, node.fixed_function, args)
        finally:
            self._function_depth -= 1

    def _eval_membership(self, node: Membership, env: Env, tables: dict) -> Any:
        element = self._normalize_ref(self._eval(node.element, env, tables))
        if node.semi_join and node.collection.kind == "named":
            keys = self._semi_keys(node)
            if keys is not None:
                if element is NULL:
                    return NULL
                probe = element
                if isinstance(element, TupleInstance) and element.oid is not None:
                    probe = Ref(element.oid)
                if isinstance(probe, Ref):
                    found = canonical_key(
                        probe
                    ) in keys and self.db.objects.is_live(probe.oid)
                else:
                    found = canonical_key(probe) in keys
                return (not found) if node.negated else found
        collection = self._membership_collection(node.collection, env, tables)
        if collection is None:
            return NULL
        if element is NULL:
            return NULL
        found = self._collection_contains(collection, element)
        return (not found) if node.negated else found

    def _semi_keys(self, node: Membership) -> Optional[set]:
        """The memoized member-key set for a semi-join membership over a
        named set; None when the named object is not a set (the caller
        falls back to the direct containment scan)."""
        keys = self._semi_sets.get(id(node))
        if keys is not None:
            return keys
        value = self.db.named(node.collection.name).value
        if not isinstance(value, SetInstance):
            return None
        self.metrics.semi_builds += 1
        keys = {canonical_key(member) for member in value}
        self._semi_sets[id(node)] = keys
        return keys

    def _membership_collection(
        self, target: CollectionTarget, env: Env, tables: dict
    ) -> Optional[Any]:
        if target.kind == "named":
            value = self.db.named(target.name).value
            return value if isinstance(value, (SetInstance, ArrayInstance)) else None
        _owner, collection = self._resolve_collection(target, env, tables)
        return collection

    def _collection_contains(self, collection: Any, element: Any) -> bool:
        probe = element
        if isinstance(element, TupleInstance) and element.oid is not None:
            probe = Ref(element.oid)
        if isinstance(collection, SetInstance):
            if isinstance(probe, Ref):
                return collection.contains(probe) and self.db.objects.is_live(
                    probe.oid
                )
            return collection.contains(probe)
        if isinstance(collection, ArrayInstance):
            for slot in collection:
                if isinstance(probe, Ref):
                    if isinstance(slot, Ref) and slot.oid == probe.oid:
                        return self.db.objects.is_live(probe.oid)
                elif value_equal(slot, probe):
                    return True
            return False
        return False
