"""The EXCESS evaluator: a thin executor over the physical plan IR.

Executes bound (and optimized) statements against a
:class:`~repro.core.database.Database`. All iteration strategy lives in
:mod:`repro.excess.plan`: the bound query is lowered to a Volcano-style
operator pipeline (scans, index probes, path expansions, filters,
nested-loop/hash joins, semi-join probes, universal checks, aggregate
table building) and this module merely opens/next/closes that tree,
evaluates expressions for the operators, and aggregates per-operator
counters into :class:`ExecMetrics`. What remains here:

* **expression evaluation** — comparison and boolean logic follow
  QUEL-style three-valued semantics: any comparison with null is
  unknown, Kleene logic connects unknowns, and a row qualifies only when
  the where clause is definitely true; dangling references (targets
  deleted since the reference was stored) read as null everywhere,
  implementing GEM referential integrity;
* **aggregate tables** — global and partitioned aggregates are
  precomputed by running their (separately lowered) inner pipelines;
  correlated aggregates evaluate per-row with memoization;
* **mutation application** — update statements collect their qualifying
  environments from the shared row-source pipeline first and apply
  mutations afterwards, so an update never observes its own effects
  (QUEL's snapshot semantics) and iteration never races with mutation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.core.database import Database
from repro.core.schema import SchemaType
from repro.core.types import (
    BOOLEAN,
    ComponentSpec,
    FLOAT8,
    IntegerType,
    Semantics,
    SetType,
    TEXT,
    TupleType,
    Type,
    own,
    ref as ref_spec,
)
from repro.core.values import (
    NULL,
    ArrayInstance,
    Ref,
    SetInstance,
    TupleInstance,
    check_slot,
    copy_value,
    value_equal,
)
from repro.errors import EvaluationError, IntegrityError
from repro.excess.binder import (
    AdtCall,
    AggregateRef,
    AttrStep,
    Binary,
    BoundAggregate,
    BoundAppend,
    BoundDelete,
    BoundExpr,
    BoundQuery,
    BoundReplace,
    BoundRetrieve,
    BoundSetStatement,
    CollectionTarget,
    Const,
    ExcessCall,
    IndexStepB,
    Membership,
    NamedSetSource,
    NamedValue,
    PathSource,
    RangeBinding,
    Unary,
    VarRef,
)
from repro.core.governor import ResourceGovernor, row_footprint
from repro.excess.plan import (
    HashJoin,
    PlanContext,
    PlanOp,
    SCAN_OPS,
    SPILL_PARTITIONS,
    ensure_query_plan,
    ensure_retrieve_plan,
    partition_hash,
    plan_ops,
    reset_stats,
)
from repro.storage.spill import SpillFile
from repro.excess.result import Result

__all__ = ["Evaluator", "ExecMetrics", "canonical_key"]

Env = dict


@dataclass
class ExecMetrics:
    """Per-statement execution counters surfaced by EXPLAIN and ``--time``."""

    #: candidate members enumerated from binding sources (all loops)
    rows_scanned: int = 0
    #: hash tables built for hash-join build sides
    hash_builds: int = 0
    #: probe-side lookups into hash-join tables
    hash_probes: int = 0
    #: member-key sets materialized for semi-join memberships
    semi_builds: int = 0
    #: plan-cache outcome ("hit" | "miss" | "" when caching not involved)
    cache: str = ""
    #: end-to-end statement wall time (filled in by the interpreter)
    wall_ms: float = 0.0

    def as_dict(self) -> dict:
        return {
            "rows_scanned": self.rows_scanned,
            "hash_builds": self.hash_builds,
            "hash_probes": self.hash_probes,
            "semi_builds": self.semi_builds,
            "cache": self.cache,
            "wall_ms": round(self.wall_ms, 3),
        }

    def describe(self) -> str:
        return (
            f"rows_scanned={self.rows_scanned} hash_builds={self.hash_builds} "
            f"hash_probes={self.hash_probes} semi_builds={self.semi_builds}"
        )


def canonical_key(value: Any) -> Any:
    """A hashable canonical form for grouping and duplicate elimination."""
    if value is NULL:
        return ("null",)
    if isinstance(value, Ref):
        return ("ref", value.oid)
    if isinstance(value, TupleInstance):
        if value.oid is not None:
            return ("ref", value.oid)
        return tuple(
            (name, canonical_key(slot))
            for name, slot in value.attributes().items()
        )
    if isinstance(value, SetInstance):
        return ("set",) + tuple(sorted(canonical_key(m) for m in value))
    if isinstance(value, ArrayInstance):
        return ("array",) + tuple(canonical_key(s) for s in value)
    try:
        hash(value)
    except TypeError:
        return ("repr", repr(value))
    return value


class Evaluator:
    """Executes bound statements against one database."""

    MAX_FUNCTION_DEPTH = 32

    def __init__(
        self,
        database: Database,
        user: str = "dba",
        compile_mode: str = "closure",
        exec_mode: str = "fused",
        batch_size: int = 1024,
        session: Any = None,
        statement_timeout_ms: int = 0,
        memory_budget: int = 0,
    ):
        self.db = database
        self.user = user
        self.session = session
        #: snapshot component of the hash-build memo stamp: executions
        #: inside a transaction key their memoized build tables by
        #: (snapshot timestamp, transaction id) so a table built against
        #: one snapshot is never served to a different one (the data
        #: version alone does not move when versions rewind)
        if session is not None and session.txn is not None:
            txn = session.txn
            self.session_stamp = (txn.snapshot_ts, txn.txn_id)
        else:
            self.session_stamp = (None, None)
        self._function_depth = 0
        self.metrics = ExecMetrics()
        #: id(membership node) → materialized member-key set (semi-join)
        self._semi_sets: dict[int, set] = {}
        #: "closure" runs compiled expression closures on plan hot
        #: paths; "off" forces the recursive interpreter (ablation)
        self.compile_mode = compile_mode
        #: "fused" runs generated whole-pipeline functions where regions
        #: allow, "batch" exchanges row batches operator to operator,
        #: "row" keeps the tuple-at-a-time Volcano path (ablation)
        self.exec_mode = exec_mode
        #: target rows per exchanged batch (batch/fused modes)
        self.batch_size = batch_size
        #: id(bound node) → compiled closure (aggregate hot paths; nodes
        #: stay alive on the bound statement for this evaluator's life)
        self._compiled_memo: dict[int, Any] = {}
        self._compiled_ctx: Optional[PlanContext] = None
        #: parent-side worker-pool dispatcher (interpreter-attached when
        #: parallel_mode=process; exchange merges and aggregate
        #: precompute consult it, everything else ignores it)
        self.parallel: Any = None
        #: worker-side shard descriptor (set only inside pool workers:
        #: restricts ExchangePartition — and fused scans — to one part)
        self.exchange: Any = None
        #: per-statement resource governor (deadline + memory budget);
        #: None when neither flag is active, so ungoverned execution
        #: pays nothing — operators read it through PlanContext
        self.governor: Optional[ResourceGovernor] = (
            ResourceGovernor(statement_timeout_ms, memory_budget)
            if statement_timeout_ms or memory_budget
            else None
        )

    def _eval_compiled(self, node: BoundExpr, env: Env, tables: dict) -> Any:
        """Evaluate through the compiled-closure memo (used by the
        aggregate machinery, which evaluates outside the plan operators'
        own compiled caches)."""
        from repro.excess.compile import compile_expr

        fn = self._compiled_memo.get(id(node))
        if fn is None:
            fn = compile_expr(node).fn
            self._compiled_memo[id(node)] = fn
        ctx = self._compiled_ctx
        if ctx is None or ctx.tables is not tables:
            ctx = PlanContext(self, tables)
            self._compiled_ctx = ctx
        return fn(env, ctx)

    def _invalidate_exec_caches(self) -> None:
        """Invalidate memoized execution state before data mutates.

        Called before an update statement applies its pending mutations.
        Bumping the database's data version invalidates every hash-join
        build table memoized on cached plans (they are keyed by it), and
        the semi-join key sets of this evaluator are dropped so a later
        statement executed by it (procedures, EXCESS functions) never
        sees stale members.
        """
        self.db.data_version += 1
        self._semi_sets.clear()

    # ------------------------------------------------------------------
    # Retrieve
    # ------------------------------------------------------------------

    def run_retrieve(
        self, bound: BoundRetrieve, base_env: Optional[Env] = None
    ) -> Result:
        """Execute a retrieve by draining its lowered operator pipeline
        (``StoreInto?(Sort?(Project(row source)))``)."""
        env0: Env = dict(base_env or {})
        ctx = PlanContext(self)
        pipeline = ensure_retrieve_plan(bound, self.db.catalog)
        rows = list(self._run_plan(pipeline, env0, ctx))
        columns = [t.label for t in bound.targets]
        result = Result(kind="retrieve", columns=columns, rows=rows)
        if bound.into:
            # the pipeline root is the StoreInto operator
            result.message = pipeline.message
        return result

    def _store_rows(self, bound: BoundRetrieve, rows: list[tuple]) -> str:
        """Materialize finished rows as a named set of tuples
        (``retrieve ... into``); returns the status message."""
        specs: list[tuple[str, ComponentSpec]] = []
        for index, target in enumerate(bound.targets):
            expr = target.expression
            if expr.is_object and isinstance(expr.type, SchemaType):
                spec = ref_spec(expr.type)
            elif expr.type is not None:
                spec = own(expr.type)
            else:
                spec = own(self._infer_type(rows, index))
            specs.append((target.label, spec))
        row_type = TupleType(specs)
        named = self.db.create_named(
            bound.into, own(SetType(own(row_type))), user=self.user
        )
        collection: SetInstance = named.value
        for row in rows:
            instance = TupleInstance(row_type)
            for (label, spec), value in zip(specs, row):
                instance._slots[label] = (
                    copy_value(value)
                    if spec.semantics is Semantics.OWN and value is not NULL
                    else value
                )
            collection.insert(instance)
        return f"stored {len(rows)} row(s) into {bound.into!r}"

    @staticmethod
    def _infer_type(rows: list[tuple], index: int) -> Type:
        for row in rows:
            value = row[index]
            if value is NULL:
                continue
            if isinstance(value, bool):
                return BOOLEAN
            if isinstance(value, int):
                return IntegerType(8)
            if isinstance(value, float):
                return FLOAT8
            if isinstance(value, str):
                return TEXT
            break
        return TEXT

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def run_append(
        self, bound: BoundAppend, base_env: Optional[Env] = None
    ) -> Result:
        """Execute an append statement."""
        tables: dict = {}
        pending: list[tuple[Env, Any]] = []
        evaluate = (
            self._eval_compiled if self.compile_mode == "closure" else self._eval
        )
        for env in self.env_stream(bound.query, base_env, tables):
            if bound.assignments:
                raw = {
                    attribute: evaluate(expression, env, tables)
                    for attribute, expression in bound.assignments
                }
                raw = {k: v for k, v in raw.items() if v is not NULL}
                pending.append((env, raw))
            else:
                assert bound.expression is not None
                pending.append((env, evaluate(bound.expression, env, tables)))
        count = 0
        self._invalidate_exec_caches()
        for env, payload in pending:
            if self._append_one(bound.target, payload, env, tables):
                count += 1
        return Result(kind="append", count=count, message=f"appended {count}")

    def _append_one(
        self, target: CollectionTarget, payload: Any, env: Env, tables: dict
    ) -> bool:
        undo = self.db.objects.undo
        if target.kind == "named":
            named = self.db.named(target.name)
            collection = named.value
            if isinstance(collection, ArrayInstance):
                if undo is not None:
                    undo.save_array(collection)
                collection.append(self._array_payload(collection, payload))
                return True
            if isinstance(payload, dict):
                return self.db.insert(target.name, **payload) is not None
            return self.db.insert(target.name, payload) is not None
        # path collection: resolve the owner instance per env
        owner, collection = self._resolve_collection(target, env, tables)
        if collection is None:
            return False
        if undo is not None:
            undo.save_value(collection)
            if isinstance(owner, TupleInstance):
                undo.note_dirty(owner.oid)
        if isinstance(collection, ArrayInstance):
            collection.append(self._array_payload(collection, payload))
            self._mark_owner_dirty(owner)
            return True
        element = collection.element
        if element.semantics is Semantics.OWN:
            member = self.db.integrity._build_own_value(element.type, payload)
            added = collection.insert(member)
        elif isinstance(payload, dict):
            if element.semantics is Semantics.REF:
                raise IntegrityError(
                    "inline construction requires an own ref collection"
                )
            assert isinstance(element.type, SchemaType)
            owner_oid = owner.oid if isinstance(owner, TupleInstance) else None
            member = self.db.integrity.create_object(
                element.type, payload, owner=owner_oid
            )
            added = collection.insert(member)
        else:
            if not isinstance(payload, Ref):
                raise EvaluationError(
                    f"cannot append {payload!r} to a reference collection"
                )
            self.db.integrity.check_ref_target(element, payload)
            if element.semantics is Semantics.OWN_REF:
                owner_oid = owner.oid if isinstance(owner, TupleInstance) else None
                if owner_oid is not None:
                    self.db.objects.claim(payload.oid, owner=owner_oid)
            added = collection.insert(payload)
        self._mark_owner_dirty(owner)
        return added

    def _array_payload(self, collection: ArrayInstance, payload: Any) -> Any:
        if isinstance(payload, dict):
            element = collection.element
            if element.semantics is Semantics.OWN:
                return self.db.integrity._build_own_value(element.type, payload)
            raise EvaluationError(
                "inline construction into reference arrays is not supported"
            )
        return payload

    def _mark_owner_dirty(self, owner: Any) -> None:
        if isinstance(owner, TupleInstance) and owner.oid is not None:
            self.db.objects.mark_dirty(owner.oid)

    def _resolve_collection(
        self, target: CollectionTarget, env: Env, tables: dict
    ) -> tuple[Any, Optional[Any]]:
        """Resolve a path collection target to (owner_instance, collection)."""
        assert target.base is not None
        base_value = self._eval(target.base, env, tables)
        instance = self._resolve_instance(base_value)
        if instance is None:
            return None, None
        current: Any = instance
        owner: Any = instance
        for index, step in enumerate(target.steps):
            if not isinstance(current, TupleInstance):
                return None, None
            owner = current
            value = current.get(step)
            if value is NULL:
                return None, None
            if isinstance(value, Ref):
                value = self._deref(value)
                if value is None:
                    return None, None
            current = value
        if isinstance(current, (SetInstance, ArrayInstance)):
            return owner, current
        return None, None

    def run_delete(
        self, bound: BoundDelete, base_env: Optional[Env] = None
    ) -> Result:
        """Execute a delete statement."""
        binding = next(
            b for b in bound.query.bindings if b.name == bound.variable
        )
        victims: list[tuple[Any, Optional[SetInstance], Optional[str]]] = []
        seen: set = set()
        for env in self.env_stream(bound.query, base_env):
            member = env[bound.variable]
            key = canonical_key(member)
            if key in seen:
                continue
            seen.add(key)
            collection, set_name = self._binding_collection(binding, env)
            victims.append((member, collection, set_name))
        deleted = 0
        self._invalidate_exec_caches()
        for member, collection, set_name in victims:
            if isinstance(member, Ref):
                deleted += 1 if self.db.delete(member) else 0
            elif collection is not None:
                if set_name is not None:
                    named = self.db.named(set_name)
                    self.db.integrity.remove_member(named, collection, member)
                else:
                    undo = self.db.objects.undo
                    if undo is not None:
                        undo.save_set(collection)
                    collection.remove(member)
                deleted += 1
        return Result(kind="delete", count=deleted, message=f"deleted {deleted}")

    def _binding_collection(
        self, binding: RangeBinding, env: Env
    ) -> tuple[Optional[SetInstance], Optional[str]]:
        source = binding.source
        if isinstance(source, NamedSetSource):
            named = self.db.named(source.set_name)
            value = named.value
            return (value if isinstance(value, SetInstance) else None), source.set_name
        if isinstance(source, PathSource):
            parent = env.get(source.parent)
            instance = self._resolve_instance(parent)
            current: Any = instance
            for step in source.steps:
                if not isinstance(current, TupleInstance):
                    return None, None
                value = current.get(step)
                if isinstance(value, Ref):
                    value = self._deref(value)
                current = value
            if isinstance(current, SetInstance):
                return current, None
        return None, None

    def run_replace(
        self, bound: BoundReplace, base_env: Optional[Env] = None
    ) -> Result:
        """Execute a replace statement."""
        tables: dict = {}
        pending: list[tuple[Any, dict[str, Any]]] = []
        evaluate = (
            self._eval_compiled if self.compile_mode == "closure" else self._eval
        )
        for env in self.env_stream(bound.query, base_env, tables):
            target_value = evaluate(bound.target, env, tables)
            if target_value is NULL:
                continue
            changes = {
                attribute: evaluate(expression, env, tables)
                for attribute, expression in bound.assignments
            }
            pending.append((target_value, changes))
        count = 0
        self._invalidate_exec_caches()
        for target_value, changes in pending:
            if isinstance(target_value, Ref):
                self._apply_indexed_changes(target_value, changes)
                count += 1
            elif isinstance(target_value, TupleInstance):
                self.db.apply_changes(target_value, changes)
                count += 1
        return Result(kind="replace", count=count, message=f"replaced {count}")

    def _apply_indexed_changes(self, reference: Ref, changes: dict) -> None:
        """Apply changes to an object, maintaining indexes of every named
        set the object belongs to."""
        instance = self._deref(reference)
        if instance is None:
            return
        containing: list[str] = []
        for descriptor in self.db.catalog.indexes.all_indexes():
            named = self.db.named(descriptor.set_name)
            if isinstance(named.value, SetInstance) and named.value.contains(reference):
                if descriptor.set_name not in containing:
                    containing.append(descriptor.set_name)
        snapshots = {
            name: self.db._key_snapshot(name, instance) for name in containing
        }
        old_row = {name: instance.get(name) for name in changes}
        self.db.apply_changes(instance, changes)
        for name in containing:
            new_snapshot = self.db._key_snapshot(name, instance)
            self.db.catalog.indexes.on_update(
                name, reference.oid, snapshots[name].get, new_snapshot.get
            )
        new_row = {name: instance.get(name) for name in changes}
        self.db.note_member_update(reference, old_row, new_row)

    def run_set(
        self, bound: BoundSetStatement, base_env: Optional[Env] = None
    ) -> Result:
        """Execute a set (slot assignment) statement."""
        tables: dict = {}
        pending: list[tuple[Env, Any]] = []
        evaluate = (
            self._eval_compiled if self.compile_mode == "closure" else self._eval
        )
        for env in self.env_stream(bound.query, base_env, tables):
            pending.append((env, evaluate(bound.expression, env, tables)))
        count = 0
        self._invalidate_exec_caches()
        for env, value in pending:
            kind = bound.location[0]
            if kind == "named":
                named = self.db.named(bound.location[1])
                canonical = check_slot(named.spec, value)
                if named.spec.semantics is Semantics.OWN and canonical is not NULL:
                    canonical = copy_value(canonical)
                if isinstance(canonical, Ref):
                    self.db.integrity.check_ref_target(named.spec, canonical)
                undo = self.db.objects.undo
                if undo is not None:
                    undo.save_named_binding(named)
                named.value = canonical
                count += 1
            elif kind == "slot":
                base = self._eval(bound.location[1], env, tables)
                instance = self._resolve_instance(base)
                if instance is None:
                    continue
                attribute = bound.location[2]
                old_row = {attribute: instance.get(attribute)}
                self.db.apply_changes(instance, {attribute: value})
                if isinstance(base, Ref):
                    self.db.note_member_update(
                        base, old_row, {attribute: instance.get(attribute)}
                    )
                count += 1
            else:  # index
                base = self._eval(bound.location[1], env, tables)
                index = self._eval(bound.location[2], env, tables)
                if base is NULL or index is NULL:
                    continue
                if not isinstance(base, ArrayInstance):
                    raise EvaluationError("set target is not an array")
                if isinstance(value, Ref):
                    self.db.integrity.check_ref_target(base.element, value)
                undo = self.db.objects.undo
                if undo is not None:
                    undo.save_array(base)
                base.set(index, value)
                count += 1
        return Result(kind="set", count=count, message=f"set {count}")

    # ------------------------------------------------------------------
    # Plan execution
    # ------------------------------------------------------------------

    def _run_plan(
        self, root: PlanOp, env: Env, ctx: PlanContext
    ) -> Iterator[Any]:
        """Drain one operator tree: reset its counters, open/next/close,
        then absorb the counters into this statement's metrics.

        Plans are shared (they live on cached bound statements), so a
        recursive EXCESS function can re-enter a tree that is already
        running; the nested run skips the reset/absorb — its rows simply
        accumulate into the outer run's counters.
        """
        nested = root.running > 0
        if not nested:
            reset_stats(root)
        root.running += 1
        governor = ctx.governor
        if ctx.exec_mode != "row":
            # batch/fused execution: drain batches (the root's rows_out
            # is counted here, per the batch stats contract)
            root_stats = root.stats
            try:
                for batch in root.batches(ctx, env, ctx.batch_size):
                    if governor is not None:
                        governor.check_timeout("root")
                    root_stats.rows_out += len(batch)
                    yield from batch
            finally:
                root.running -= 1
                if not nested:
                    self._absorb_stats(root)
            return
        root.open(ctx, env)
        root_iter = root._iters[-1]
        root_stats = root.stats
        try:
            for row in root_iter:
                if governor is not None:
                    governor.check_timeout("root")
                root_stats.rows_out += 1
                yield row
        finally:
            root.close()
            root.running -= 1
            if not nested:
                self._absorb_stats(root)

    def _absorb_stats(self, root: PlanOp) -> None:
        """Fold per-operator counters into the statement metrics."""
        metrics = self.metrics
        for op in plan_ops(root):
            if isinstance(op, SCAN_OPS):
                metrics.rows_scanned += op.stats.rows_out
            elif isinstance(op, HashJoin):
                metrics.hash_builds += op.stats.builds
                metrics.hash_probes += op.stats.probes

    def _query_rows(
        self, query: BoundQuery, base_env: Env, tables: dict
    ) -> Iterator[Env]:
        """Stream the *shared* environment of a query's binding pipeline
        (callers must not retain yielded envs — see :meth:`env_stream`)."""
        plan = ensure_query_plan(query, self.db.catalog)
        yield from self._run_plan(plan, dict(base_env), PlanContext(self, tables))

    def env_stream(
        self,
        query: BoundQuery,
        base_env: Optional[Env] = None,
        tables: Optional[dict] = None,
    ) -> Iterator[Env]:
        """The shared row-source layer: one snapshot environment per
        qualifying row of the query's lowered binding pipeline.

        Retrieve, append, delete, replace, set, and procedure invocation
        all consume this stream, so every strategy decision (access
        methods, join order, hash vs nested-loop) lives in the plan IR.
        ``tables`` receives the aggregate tables the pipeline builds; pass
        the same dict to later ``_eval`` calls over the yielded envs.
        """
        if tables is None:
            tables = {}
        if self.exec_mode != "row":
            # batch/fused rows are already private per-row snapshots —
            # consumers may retain them without copying
            yield from self._query_rows(query, base_env or {}, tables)
            return
        for env in self._query_rows(query, base_env or {}, tables):
            yield dict(env)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    def _aggregate_query(self, aggregate: BoundAggregate) -> BoundQuery:
        """The aggregate's inner iteration as a (plan-carrying) query."""
        if aggregate.inner_query is None:
            aggregate.inner_query = BoundQuery(
                bindings=aggregate.inner_bindings, where=aggregate.where
            )
        return aggregate.inner_query

    def _precompute_aggregates(
        self,
        query: BoundQuery,
        base_env: Env,
        tables: dict,
        stats: Any = None,
    ) -> dict:
        """Fill ``tables`` for global and partitioned aggregates by
        running their inner pipelines; correlated ones get a memo dict
        filled on demand (the :class:`~repro.excess.plan.Aggregate`
        operator calls this at open, before any downstream evaluation).

        ``stats`` is the calling Aggregate operator's counters (spill
        accounting for EXPLAIN); an active governor adds cooperative
        timeout checks per inner row and may spill the accumulating
        groups to disk partitions (:meth:`_governed_aggregate`).
        """
        evaluate = (
            self._eval_compiled if self.compile_mode == "closure" else self._eval
        )
        governor = self.governor
        for aggregate in query.aggregates:
            if aggregate.mode == "correlated":
                tables[aggregate.aggregate_id] = ("correlated", aggregate, {})
                continue
            if self.parallel is not None and not base_env:
                # partial→final on the worker pool; None = stay serial
                computed = self.parallel.run_aggregate(self, aggregate, tables)
                if computed is not None:
                    tables[aggregate.aggregate_id] = (
                        aggregate.mode, aggregate, computed
                    )
                    continue
            inner = self._aggregate_query(aggregate)
            if governor is not None:
                computed = self._governed_aggregate(
                    aggregate, inner, base_env, tables, evaluate,
                    governor, stats,
                )
            else:
                groups: dict[Any, list] = {}
                for env in self._query_rows(inner, base_env, tables):
                    value = evaluate(aggregate.argument, env, tables)
                    if value is NULL:
                        continue
                    if aggregate.mode == "partition":
                        assert aggregate.inner_key is not None
                        key = canonical_key(
                            evaluate(aggregate.inner_key, env, tables)
                        )
                    else:
                        key = ()
                    groups.setdefault(key, []).append(value)
                computed = {
                    key: aggregate.function.impl(values)
                    for key, values in groups.items()
                }
            tables[aggregate.aggregate_id] = (aggregate.mode, aggregate, computed)
        return tables

    def _governed_aggregate(
        self,
        aggregate: BoundAggregate,
        inner: BoundQuery,
        base_env: Env,
        tables: dict,
        evaluate: Any,
        governor: ResourceGovernor,
        stats: Any,
    ) -> dict:
        """The governed accumulation path: timeout checks per inner row,
        and group values spilled to hash partitions past the budget.

        Spilling preserves per-key value order (a key's values land in
        one partition file, flushed prefix first, then streamed in
        encounter order), so non-commutative aggregate functions see the
        exact sequence the in-memory path feeds them. The computed table
        is only ever read by key lookup, so its (partition-major) dict
        order is unobservable.
        """
        groups: dict[Any, list] = {}
        parts: Optional[list] = None
        reserved = 0
        partitioned = aggregate.mode == "partition"
        if partitioned:
            assert aggregate.inner_key is not None
        try:
            for env in self._query_rows(inner, base_env, tables):
                governor.check_timeout("aggregate")
                value = evaluate(aggregate.argument, env, tables)
                if value is NULL:
                    continue
                if partitioned:
                    key = canonical_key(
                        evaluate(aggregate.inner_key, env, tables)
                    )
                else:
                    key = ()
                if parts is None:
                    cost = row_footprint(value)
                    if governor.reserve(cost):
                        reserved += cost
                        groups.setdefault(key, []).append(value)
                        continue
                    # over budget: spill what accumulated, then stream
                    parts = [SpillFile() for _ in range(SPILL_PARTITIONS)]
                    for gkey, values in groups.items():
                        part = parts[partition_hash(gkey) % SPILL_PARTITIONS]
                        for held in values:
                            part.append((gkey, held))
                    groups = {}
                    governor.release(reserved)
                    reserved = 0
                    governor.spilled()
                parts[partition_hash(key) % SPILL_PARTITIONS].append(
                    (key, value)
                )
            if parts is None:
                return {
                    key: aggregate.function.impl(values)
                    for key, values in groups.items()
                }
            computed: dict = {}
            for part in parts:
                pgroups: dict[Any, list] = {}
                for key, value in part:
                    pgroups.setdefault(key, []).append(value)
                for key, values in pgroups.items():
                    computed[key] = aggregate.function.impl(values)
            if stats is not None:
                stats.spill_partitions += len(parts)
                stats.spill_bytes += sum(p.bytes_written for p in parts)
            return computed
        finally:
            if parts is not None:
                for part in parts:
                    part.close()

    def _eval_aggregate_ref(
        self, node: AggregateRef, env: Env, tables: dict
    ) -> Any:
        mode, aggregate, computed = tables[node.aggregate_id]
        evaluate = (
            self._eval_compiled if self.compile_mode == "closure" else self._eval
        )
        if mode == "global":
            if () in computed:
                return self._null_if_none(computed[()])
            return self._empty_aggregate(aggregate)
        if mode == "partition":
            assert node.outer_key is not None
            key = canonical_key(evaluate(node.outer_key, env, tables))
            if key in computed:
                return self._null_if_none(computed[key])
            return self._empty_aggregate(aggregate)
        # correlated: evaluate over nested sets under the current env
        memo_key = tuple(
            canonical_key(env.get(dep, NULL)) for dep in aggregate.outer_deps
        )
        memo = computed
        if memo_key in memo:
            return memo[memo_key]
        values: list = []
        inner = self._aggregate_query(aggregate)
        for inner_env in self._query_rows(inner, env, tables):
            value = evaluate(aggregate.argument, inner_env, tables)
            if value is not NULL:
                values.append(value)
        if values:
            result = self._null_if_none(aggregate.function.impl(values))
        else:
            result = self._empty_aggregate(aggregate)
        memo[memo_key] = result
        return result

    def _empty_aggregate(self, aggregate: BoundAggregate) -> Any:
        if aggregate.function.empty_value is not None:
            return aggregate.function.empty_value
        return NULL

    @staticmethod
    def _null_if_none(value: Any) -> Any:
        return NULL if value is None else value

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------

    def _deref(self, reference: Ref) -> Optional[TupleInstance]:
        return self.db.objects.deref(reference.oid)

    def _resolve_instance(self, value: Any) -> Optional[TupleInstance]:
        if isinstance(value, Ref):
            return self._deref(value)
        if isinstance(value, TupleInstance):
            return value
        return None

    def _normalize_ref(self, value: Any) -> Any:
        """A dangling reference reads as null (GEM semantics)."""
        if isinstance(value, Ref) and not self.db.objects.is_live(value.oid):
            return NULL
        return value

    def _eval(self, node: BoundExpr, env: Env, tables: dict) -> Any:
        """Evaluate a bound expression; unknowns surface as NULL."""
        if isinstance(node, Const):
            return node.value
        if isinstance(node, VarRef):
            value = env.get(node.name, NULL)
            return self._normalize_ref(value)
        if isinstance(node, NamedValue):
            named = self.db.named(node.name)
            return self._normalize_ref(named.value)
        if isinstance(node, AttrStep):
            base = self._eval(node.base, env, tables)
            instance = self._resolve_instance(base)
            if instance is None:
                return NULL
            value = instance.get(node.attribute)
            return self._normalize_ref(value)
        if isinstance(node, IndexStepB):
            base = self._eval(node.base, env, tables)
            index = self._eval(node.index, env, tables)
            if base is NULL or index is NULL:
                return NULL
            if not isinstance(base, ArrayInstance):
                raise EvaluationError(f"indexing a non-array value {base!r}")
            if not isinstance(index, int) or isinstance(index, bool):
                raise EvaluationError("array index must be an integer")
            if index < 1 or index > len(base):
                return NULL  # reads beyond the end are null; writes error
            return self._normalize_ref(base.get(index))
        if isinstance(node, Binary):
            return self._eval_binary(node, env, tables)
        if isinstance(node, Unary):
            return self._eval_unary(node, env, tables)
        if isinstance(node, AdtCall):
            return self._eval_adt_call(node, env, tables)
        if isinstance(node, ExcessCall):
            return self._eval_excess_call(node, env, tables)
        if isinstance(node, AggregateRef):
            return self._eval_aggregate_ref(node, env, tables)
        if isinstance(node, Membership):
            return self._eval_membership(node, env, tables)
        raise EvaluationError(f"cannot evaluate {type(node).__name__}")

    def _eval_binary(self, node: Binary, env: Env, tables: dict) -> Any:
        if node.kind == "bool":
            return self._eval_bool(node, env, tables)
        if node.kind == "object":
            return self._eval_object_equality(node, env, tables)
        left = self._eval(node.left, env, tables)
        right = self._eval(node.right, env, tables)
        if node.kind == "concat":
            if left is NULL or right is NULL:
                return NULL
            return str(left) + str(right)
        if left is NULL or right is NULL:
            return NULL
        if node.kind == "compare":
            if node.enum_labels is not None:
                left, right = self._enum_ordinals(node.enum_labels, left, right)
            return self._compare(node.op, left, right)
        # arithmetic
        try:
            if node.op == "+":
                return left + right
            if node.op == "-":
                return left - right
            if node.op == "*":
                return left * right
            if node.op == "/":
                if right == 0:
                    raise EvaluationError("division by zero")
                if isinstance(left, int) and isinstance(right, int):
                    return left // right if left % right == 0 else left / right
                return left / right
            if node.op == "%":
                if right == 0:
                    raise EvaluationError("modulo by zero")
                return left % right
        except TypeError as exc:
            raise EvaluationError(f"bad arithmetic operands: {exc}") from exc
        raise EvaluationError(f"unknown arithmetic operator {node.op!r}")

    @staticmethod
    def _enum_ordinals(labels: tuple, left: Any, right: Any) -> tuple:
        """Map enum labels to their declaration-order ordinals so that
        comparisons follow the enumeration's order."""
        def ordinal(value: Any) -> Any:
            if isinstance(value, str):
                try:
                    return labels.index(value)
                except ValueError:
                    raise EvaluationError(
                        f"{value!r} is not a label of the enumeration"
                    ) from None
            return value

        return ordinal(left), ordinal(right)

    def _compare(self, op: str, left: Any, right: Any) -> Any:
        try:
            if op == "=":
                return value_equal(left, right)
            if op == "!=":
                return not value_equal(left, right)
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            if op == ">=":
                return left >= right
        except TypeError as exc:
            raise EvaluationError(f"incomparable values: {exc}") from exc
        raise EvaluationError(f"unknown comparison {op!r}")

    def _eval_bool(self, node: Binary, env: Env, tables: dict) -> Any:
        """Kleene three-valued and/or (NULL = unknown)."""
        left = self._as_truth(self._eval(node.left, env, tables))
        if node.op == "and":
            if left is False:
                return False
            right = self._as_truth(self._eval(node.right, env, tables))
            if right is False:
                return False
            if left is None or right is None:
                return NULL
            return True
        if node.op == "or":
            if left is True:
                return True
            right = self._as_truth(self._eval(node.right, env, tables))
            if right is True:
                return True
            if left is None or right is None:
                return NULL
            return False
        raise EvaluationError(f"unknown boolean operator {node.op!r}")

    @staticmethod
    def _as_truth(value: Any) -> Optional[bool]:
        if value is NULL:
            return None
        if isinstance(value, bool):
            return value
        raise EvaluationError(f"boolean operand expected, got {value!r}")

    def _eval_object_equality(self, node: Binary, env: Env, tables: dict) -> Any:
        left = self._normalize_ref(self._eval(node.left, env, tables))
        right = self._normalize_ref(self._eval(node.right, env, tables))
        if left is NULL or right is NULL:
            # `X is null` tests for null-ness; two nulls are the same
            # (both denote no object), a null and anything else are not.
            same = left is NULL and right is NULL
        else:
            same = self._object_oid(left) == self._object_oid(right)
        return same if node.op == "is" else not same

    @staticmethod
    def _object_oid(value: Any) -> Optional[int]:
        if value is NULL:
            return None
        if isinstance(value, Ref):
            return value.oid
        if isinstance(value, TupleInstance) and value.oid is not None:
            return value.oid
        raise EvaluationError(
            f"'is'/'isnot' compares object references, got {value!r}"
        )

    def _eval_unary(self, node: Unary, env: Env, tables: dict) -> Any:
        value = self._eval(node.operand, env, tables)
        if node.op == "not":
            truth = self._as_truth(value)
            if truth is None:
                return NULL
            return not truth
        if node.op == "-":
            if value is NULL:
                return NULL
            try:
                return -value
            except TypeError as exc:
                raise EvaluationError(f"cannot negate {value!r}") from exc
        raise EvaluationError(f"unknown unary operator {node.op!r}")

    def _eval_adt_call(self, node: AdtCall, env: Env, tables: dict) -> Any:
        args = [self._eval(a, env, tables) for a in node.args]
        if any(a is NULL for a in args):
            return NULL
        try:
            result = node.function.impl(*args)
        except EvaluationError:
            raise
        except Exception as exc:
            raise EvaluationError(
                f"ADT function {node.function.name!r} failed: {exc}"
            ) from exc
        return NULL if result is None else result

    def _eval_excess_call(self, node: ExcessCall, env: Env, tables: dict) -> Any:
        from repro.excess.functions import call_function

        args = [self._eval(a, env, tables) for a in node.args]
        if self._function_depth >= self.MAX_FUNCTION_DEPTH:
            raise EvaluationError(
                f"EXCESS function recursion deeper than {self.MAX_FUNCTION_DEPTH}"
            )
        self._function_depth += 1
        try:
            return call_function(self, node.name, node.fixed_function, args)
        finally:
            self._function_depth -= 1

    def _eval_membership(self, node: Membership, env: Env, tables: dict) -> Any:
        element = self._normalize_ref(self._eval(node.element, env, tables))
        if node.semi_join and node.collection.kind == "named":
            keys = self._semi_keys(node)
            if keys is not None:
                if element is NULL:
                    return NULL
                probe = element
                if isinstance(element, TupleInstance) and element.oid is not None:
                    probe = Ref(element.oid)
                if isinstance(probe, Ref):
                    found = canonical_key(
                        probe
                    ) in keys and self.db.objects.is_live(probe.oid)
                else:
                    found = canonical_key(probe) in keys
                return (not found) if node.negated else found
        collection = self._membership_collection(node.collection, env, tables)
        if collection is None:
            return NULL
        if element is NULL:
            return NULL
        found = self._collection_contains(collection, element)
        return (not found) if node.negated else found

    def _semi_keys(self, node: Membership) -> Optional[set]:
        """The memoized member-key set for a semi-join membership over a
        named set; None when the named object is not a set (the caller
        falls back to the direct containment scan)."""
        keys = self._semi_sets.get(id(node))
        if keys is not None:
            return keys
        value = self.db.named(node.collection.name).value
        if not isinstance(value, SetInstance):
            return None
        self.metrics.semi_builds += 1
        keys = {canonical_key(member) for member in value}
        self._semi_sets[id(node)] = keys
        return keys

    def _membership_collection(
        self, target: CollectionTarget, env: Env, tables: dict
    ) -> Optional[Any]:
        if target.kind == "named":
            value = self.db.named(target.name).value
            return value if isinstance(value, (SetInstance, ArrayInstance)) else None
        _owner, collection = self._resolve_collection(target, env, tables)
        return collection

    def _collection_contains(self, collection: Any, element: Any) -> bool:
        probe = element
        if isinstance(element, TupleInstance) and element.oid is not None:
            probe = Ref(element.oid)
        if isinstance(collection, SetInstance):
            if isinstance(probe, Ref):
                return collection.contains(probe) and self.db.objects.is_live(
                    probe.oid
                )
            return collection.contains(probe)
        if isinstance(collection, ArrayInstance):
            for slot in collection:
                if isinstance(probe, Ref):
                    if isinstance(slot, Ref) and slot.oid == probe.oid:
                        return self.db.objects.is_live(probe.oid)
                elif value_equal(slot, probe):
                    return True
            return False
        return False
