"""Process-parallel execution: the worker pool behind the exchange
operators.

The plan layer (:mod:`repro.excess.plan`) stays declarative — a
parallelized pipeline is an ordinary operator tree whose
:class:`~repro.excess.plan.ExchangeMerge` root *asks* this module to run
its fragment, and whose :class:`~repro.excess.plan.ExchangePartition`
leaves restrict each worker to one shard.  This module owns everything
process-shaped:

Worker lifecycle
    A :class:`WorkerPool` holds N daemon processes, each with its own
    pipe.  Workers are started with the ``fork`` method where available,
    so they inherit the database snapshot through copy-on-write page
    tables at near-zero cost (the ``spawn`` fallback pickles the
    database once per worker).  Workers never mutate user data; a
    worker's snapshot — and with it every cache it built — is valid for
    its whole lifetime.

Epoch-based invalidation
    The pool is stamped with the ``(catalog.epoch, data_version)`` token
    it was forked at.  The runner re-checks the token before every
    dispatch and **restarts the pool** when it moved — re-forking is the
    snapshot-refresh mechanism (O(page tables), no data copied).  The
    worker re-checks the token inside every task message as a backstop
    and answers ``("stale",)`` instead of computing against an old
    snapshot, which also invalidates its fragment cache.

Fragment shipping
    Plan fragments are pickled once per (fragment, pool) and cached on
    both sides: the parent caches the pickle bytes, each worker caches
    the revived tree keyed by the parent-assigned fragment id.  Per-node
    runtime caches (``_compiled`` closures, ``_fused`` functions,
    memoized hash builds) are dropped by ``PlanOp.__getstate__`` —
    workers recompile lazily on first execution and keep the result for
    the pool's lifetime.

Error propagation
    A worker exception is pickled back and, for range-partitioned
    fragments, re-raised from the **lowest erroring part** — which is
    exactly the first erroring row of the serial stream, so parallel
    errors are byte-identical to serial ones.  Hash-partitioned
    fragments (where part order no longer follows row order) and any
    infrastructure failure (dead worker, unpicklable payload, timeout)
    instead decline the parallel path entirely: the merge falls back to
    in-process execution, which raises the serial error — or succeeds,
    if the failure was environmental.

Everything here is **process-local by design**: the pool lives in the
parent interpreter, `multiprocessing` pipes are the only channel, and
workers reset :mod:`repro.util.faultinject` at startup so armed crash
points never leak across the process boundary (see that module's
process-locality note).
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
from typing import Any, Optional

from repro.core.values import NULL
from repro.excess.plan import (
    PlanContext,
    PlanOp,
    parallelize_query_block,
    plan_ops,
    reset_stats,
)
from repro.util import faultinject

__all__ = [
    "Shard",
    "WorkerPool",
    "ParallelRunner",
    "run_fragment_task",
    "run_aggregate_task",
]

#: seconds the parent waits for one worker reply before declaring the
#: pool dead and falling back to serial execution
REPLY_TIMEOUT = 300.0

#: handed to fork children through module state (never set in workers)
_FORK_STATE: Optional[tuple] = None


class Shard:
    """Worker-side shard descriptor: which partition of how many this
    process executes.  Read by :class:`~repro.excess.plan.
    ExchangePartition` and by the fused scan codegen via
    ``ctx.exchange``."""

    __slots__ = ("part", "dop")

    def __init__(self, part: int, dop: int) -> None:
        self.part = part
        self.dop = dop


def _stats_tuple(stats: Any) -> tuple:
    return (
        stats.opens,
        stats.rows_in,
        stats.rows_out,
        stats.builds,
        stats.build_rows,
        stats.probes,
        stats.spill_partitions,
        stats.spill_bytes,
    )


def _fold_stats(root: PlanOp, replies: list) -> None:
    """Accumulate worker-side per-operator counters onto the parent's
    plan tree (same pickled structure ⇒ same pre-order)."""
    ops = plan_ops(root)
    for reply_stats in replies:
        for op, tup in zip(ops, reply_stats):
            stats = op.stats
            stats.opens += tup[0]
            stats.rows_in += tup[1]
            stats.rows_out += tup[2]
            stats.builds += tup[3]
            stats.build_rows += tup[4]
            stats.probes += tup[5]
            stats.spill_partitions += tup[6]
            stats.spill_bytes += tup[7]


def _worker_evaluator(db: Any, flags: tuple) -> Any:
    from repro.excess.evaluator import Evaluator

    # tolerate the pre-governor 4-tuple (tests drive the task functions
    # directly); the runner always ships the full 6-tuple
    user, compile_mode, exec_mode, batch_size = flags[:4]
    remaining_ms = flags[4] if len(flags) > 4 else None
    budget = flags[5] if len(flags) > 5 else 0
    if exec_mode == "row":
        # workers always run fragments batch-at-a-time; results are
        # mode-independent (pinned by the exec_mode equivalence suite)
        exec_mode = "batch"
    # the parent ships its *remaining* statement time (floored at 1ms
    # when already expired, so the worker's own first cooperative check
    # raises the timeout) and the memory budget; each worker governs
    # its shard independently
    return Evaluator(
        db,
        user=user,
        compile_mode=compile_mode,
        exec_mode=exec_mode,
        batch_size=batch_size,
        statement_timeout_ms=remaining_ms or 0,
        memory_budget=budget or 0,
    )


def run_fragment_task(
    db: Any, frag: PlanOp, part: int, dop: int, mode: str, flags: tuple
) -> tuple[list, list]:
    """Execute one shard of a pipeline fragment against ``db``.

    A pure function of its arguments (also exercised in-process by the
    test suite): builds a worker evaluator carrying the shard
    descriptor, drains the fragment, and returns ``(rows, stats)``.

    ``mode="range"`` runs the fragment as-is — its projection emits
    result tuples (or ``(row, sort_keys)`` pairs) for this shard's
    contiguous member slice.  ``mode="hash"`` runs the projection
    manually so each output row is paired with the ``"#pos"`` stamp the
    hash partition tagged its input row with: the parent restores serial
    order by a stable sort on those positions.
    """
    evaluator = _worker_evaluator(db, flags)
    evaluator.exchange = Shard(part, dop)
    ctx = PlanContext(evaluator)
    reset_stats(frag)
    rows: list = []
    if mode == "range":
        frag_stats = frag.stats
        governor = ctx.governor
        for batch in frag.batches(ctx, {}, ctx.batch_size):
            if governor is not None:
                governor.check_timeout("worker")
            frag_stats.rows_out += len(batch)
            rows.extend(batch)
    else:
        rows = _run_hash_projection(frag, ctx)
    return rows, [_stats_tuple(op.stats) for op in plan_ops(frag)]


def _run_hash_projection(project: Any, ctx: PlanContext) -> list:
    """Mirror ``Project.run_batches`` (sans ``unique``, which the
    parallelizer excludes), keeping each input row's ``"#pos"`` tag:
    returns ``[(pos, row)]`` or ``[(pos, (row, sort_keys))]``."""
    out: list = []
    size = ctx.batch_size
    project.stats.opens += 1
    if ctx.compiled:
        target_fns, order_fns, _full = project._compiled_targets()
        for batch in project._pull_batches(project.children[0], ctx, {}, size):
            for row_env in batch:
                pos = row_env.pop("#pos")
                row = tuple(fn(row_env, ctx) for fn in target_fns)
                if order_fns:
                    keys = tuple(fn(row_env, ctx) for fn in order_fns)
                    out.append((pos, (row, keys)))
                else:
                    out.append((pos, row))
        project.stats.rows_out += len(out)
        return out
    for batch in project._pull_batches(project.children[0], ctx, {}, size):
        for row_env in batch:
            pos = row_env.pop("#pos")
            row = tuple(
                ctx.eval(t.expression, row_env) for t in project.targets
            )
            if project.order:
                keys = tuple(
                    ctx.eval(expr, row_env) for expr, _desc in project.order
                )
                out.append((pos, (row, keys)))
            else:
                out.append((pos, row))
    project.stats.rows_out += len(out)
    return out


def run_aggregate_task(
    db: Any, payload: tuple, part: int, dop: int, flags: tuple
) -> tuple[dict, list]:
    """Compute one shard's **partial** aggregate groups.

    ``payload`` is ``(inner_query, argument, inner_key, agg_mode)`` —
    the aggregate's range-partitioned inner pipeline plus the
    expressions to evaluate per row.  Returns ``({canonical_key: [raw
    values, in row order]}, stats)``; the parent concatenates the value
    lists in part order and applies the aggregate function **once**, so
    even order-sensitive folds (float summation) are byte-identical to
    serial execution.
    """
    inner, argument, inner_key, agg_mode = payload
    evaluator = _worker_evaluator(db, flags)
    evaluator.exchange = Shard(part, dop)
    evaluate = (
        evaluator._eval_compiled
        if evaluator.compile_mode == "closure"
        else evaluator._eval
    )
    from repro.excess.evaluator import canonical_key

    groups: dict[Any, list] = {}
    tables: dict = {}
    root = inner.plan
    if root is not None:
        # workers cache revived payloads across statements
        reset_stats(root)
    for env in evaluator._query_rows(inner, {}, tables):
        value = evaluate(argument, env, tables)
        if value is NULL:
            continue
        if agg_mode == "partition":
            key = canonical_key(evaluate(inner_key, env, tables))
        else:
            key = ()
        groups.setdefault(key, []).append(value)
    stats = [_stats_tuple(op.stats) for op in plan_ops(root)] if root else []
    return groups, stats


def _worker_main(  # pragma: no cover — runs only in child processes
    conn: Any, db: Any = None, token: Any = None
) -> None:
    """Worker process loop: revive fragments, run shards, reply.

    Runs only in child processes (excluded from coverage — the parent's
    tracer does not follow forks); the task bodies it calls are the
    pure functions above, covered in-process.
    """
    global _FORK_STATE
    if db is None:
        db, token = _FORK_STATE  # type: ignore[misc]
    _FORK_STATE = None
    # crash points and ablation state are process-local: a worker must
    # behave as a clean interpreter even if the parent armed fault
    # injection after this process forked
    faultinject.reset()
    cache: dict[int, Any] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        kind = message[0]
        if kind == "stop":
            return
        try:
            if message[1] != token:
                # stale snapshot: refuse (and implicitly invalidate the
                # fragment cache — the parent restarts the pool)
                conn.send(("stale",))
                continue
            if kind == "frag":
                _k, _t, fkey, blob, part, dop, mode, flags = message
                if blob is not None:
                    cache[fkey] = pickle.loads(blob)
                rows, stats = run_fragment_task(
                    db, cache[fkey], part, dop, mode, flags
                )
                conn.send(("ok", rows, stats))
            elif kind == "agg":
                _k, _t, fkey, blob, part, dop, flags = message
                if blob is not None:
                    cache[fkey] = pickle.loads(blob)
                groups, stats = run_aggregate_task(
                    db, cache[fkey], part, dop, flags
                )
                conn.send(("ok", groups, stats))
            else:
                conn.send(("err", None, f"unknown message {kind!r}"))
        except Exception as exc:
            try:
                blob = pickle.dumps(exc)
            except Exception:
                blob = None
            try:
                conn.send(("err", blob, repr(exc)))
            except Exception:
                return


class WorkerPool:
    """``size`` daemon worker processes, one pipe each, stamped with the
    snapshot token they were started at."""

    def __init__(self, db: Any, token: tuple, size: int, start_method: str):
        global _FORK_STATE
        self.token = token
        self.size = size
        self.workers: list[tuple[Any, Any]] = []
        context = multiprocessing.get_context(start_method)
        fork = start_method == "fork"
        if fork:
            _FORK_STATE = (db, token)
        try:
            for _ in range(size):
                parent_conn, child_conn = context.Pipe()
                args = (child_conn,) if fork else (child_conn, db, token)
                process = context.Process(
                    target=_worker_main, args=args, daemon=True
                )
                process.start()
                child_conn.close()
                self.workers.append((process, parent_conn))
        finally:
            if fork:
                _FORK_STATE = None

    def stop(self) -> None:
        for process, conn in self.workers:
            try:
                conn.send(("stop",))
            except (OSError, ValueError):
                pass
            conn.close()
        for process, _conn in self.workers:
            process.join(timeout=2.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=2.0)
        self.workers = []


class _Stale(Exception):
    """A worker refused a task: its snapshot token no longer matches."""


class _PoolFailure(Exception):
    """Infrastructure failure (dead worker, timeout, bad payload)."""


class ParallelRunner:
    """Parent-side dispatcher: owns the pool, the pickled-fragment
    cache, and the gather/merge logic.  One per interpreter, shared
    across statements; thread-safe (one dispatch at a time)."""

    def __init__(self, db: Any, start_method: Optional[str] = None):
        self.db = db
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self.start_method = start_method
        #: worker budget (the interpreter re-stamps this from its
        #: ``workers`` flag before each statement)
        self.workers = 1
        self.pool: Optional[WorkerPool] = None
        self._lock = threading.Lock()
        self._next_key = 0
        #: id(obj) → (key, obj) — the obj ref pins ids against reuse
        self._keys: dict[int, tuple[int, Any]] = {}
        self._blobs: dict[int, bytes] = {}
        self._shipped: set[tuple[int, int]] = set()

    # -- lifecycle -------------------------------------------------------

    def token(self) -> tuple:
        return (self.db.catalog.epoch, self.db.data_version)

    def stop(self) -> None:
        with self._lock:
            self._stop_pool()

    def _stop_pool(self) -> None:
        if self.pool is not None:
            self.pool.stop()
            self.pool = None
        self._shipped.clear()

    def _ensure_pool(self, dop: int) -> WorkerPool:
        token = self.token()
        pool = self.pool
        if pool is not None and (pool.token != token or pool.size < dop):
            self._stop_pool()
            pool = None
        if pool is None:
            pool = WorkerPool(self.db, token, dop, self.start_method)
            self.pool = pool
        return pool

    # -- gating ----------------------------------------------------------

    def _eligible(self, ctx_or_evaluator: Any) -> bool:
        """Parallel execution requires the parent's plain, current
        snapshot: inside a transaction (or with any other session's
        snapshot open) the forked workers could not see the same state
        the statement must see, so the plan runs serially instead."""
        stamp = getattr(ctx_or_evaluator, "session_stamp", (None, None))
        if stamp != (None, None):
            return False
        transactions = getattr(self.db, "transactions", None)
        if transactions is not None and getattr(transactions, "versions", None):
            return False
        return True

    # -- shipping --------------------------------------------------------

    def _blob_for(self, obj: Any, payload: Any) -> tuple[int, bytes]:
        entry = self._keys.get(id(obj))
        if entry is not None:
            key = entry[0]
            return key, self._blobs[key]
        if len(self._keys) >= 256:
            # plan-cache churn: drop the pickle cache (workers keep
            # their copies keyed by id, which stay valid until restart)
            self._keys.clear()
            self._blobs.clear()
        key = self._next_key
        self._next_key += 1
        blob = pickle.dumps(payload)
        self._keys[id(obj)] = (key, obj)
        self._blobs[key] = blob
        return key, blob

    def _dispatch(self, pool: WorkerPool, messages: list[tuple]) -> list:
        """Send one message per part, collect one reply per part (in
        part order); raises :class:`_Stale` / :class:`_PoolFailure`."""
        for part, message in enumerate(messages):
            _process, conn = pool.workers[part]
            try:
                conn.send(message)
            except (OSError, ValueError) as exc:
                raise _PoolFailure(str(exc)) from exc
        replies = []
        stale = False
        failure: Optional[str] = None
        for part in range(len(messages)):
            process, conn = pool.workers[part]
            try:
                if not conn.poll(REPLY_TIMEOUT):
                    failure = failure or f"worker {part} timed out"
                    replies.append(None)
                    continue
                reply = conn.recv()
            except (EOFError, OSError) as exc:
                failure = failure or f"worker {part} died: {exc!r}"
                replies.append(None)
                continue
            if reply[0] == "stale":
                stale = True
                replies.append(None)
            else:
                replies.append(reply)
        if failure is not None:
            raise _PoolFailure(failure)
        if stale:
            raise _Stale
        return replies

    def _run_parts(
        self, key: int, blob: bytes, kind: str, dop: int, extra: tuple
    ) -> list:
        """Ship + run one task on parts 0..dop-1, restarting the pool
        once on a stale-token reply."""
        for attempt in (0, 1):
            pool = self._ensure_pool(dop)
            messages = []
            for part in range(dop):
                send_blob = blob if (part, key) not in self._shipped else None
                if kind == "frag":
                    mode, flags = extra
                    messages.append(
                        ("frag", pool.token, key, send_blob, part, dop, mode, flags)
                    )
                else:
                    (flags,) = extra
                    messages.append(
                        ("agg", pool.token, key, send_blob, part, dop, flags)
                    )
            try:
                replies = self._dispatch(pool, messages)
            except _Stale:
                self._stop_pool()
                if attempt == 1:
                    raise _PoolFailure("stale token after pool restart")
                continue
            for part in range(dop):
                self._shipped.add((part, key))
            return replies
        raise _PoolFailure("unreachable")  # pragma: no cover

    @staticmethod
    def _flags(ctx: PlanContext) -> tuple:
        evaluator = ctx.evaluator
        governor = getattr(evaluator, "governor", None)
        return (
            evaluator.user,
            getattr(evaluator, "compile_mode", "closure"),
            getattr(evaluator, "exec_mode", "fused"),
            ctx.batch_size,
            governor.remaining_ms() if governor is not None else None,
            governor.memory_budget if governor is not None else 0,
        )

    # -- exchange fragments ----------------------------------------------

    def run_exchange(self, merge: Any, ctx: PlanContext) -> Optional[list]:
        """Run an :class:`~repro.excess.plan.ExchangeMerge` fragment on
        the pool; returns the gathered rows in serial order, or None to
        make the merge fall back to in-process execution."""
        with self._lock:
            if not self._eligible(ctx):
                return None
            frag = merge.children[0]
            dop = merge.dop
            try:
                key, blob = self._blob_for(frag, frag)
                replies = self._run_parts(
                    key, blob, "frag", dop, (merge.mode, self._flags(ctx))
                )
            except _PoolFailure:
                self._stop_pool()
                return None
            except Exception:
                # unpicklable fragment or similar — decline, run serially
                return None
            errors = [
                (part, reply)
                for part, reply in enumerate(replies)
                if reply[0] == "err"
            ]
            if errors:
                if merge.mode != "range":
                    # hash parts no longer follow row order, so the
                    # lowest-part error may not be the serial one:
                    # re-run serially for byte-identical error behavior
                    return None
                part, reply = errors[0]
                if reply[1] is None:
                    return None
                try:
                    exc = pickle.loads(reply[1])
                except Exception:
                    return None
                # the lowest erroring range part holds the first
                # erroring row of the serial stream
                raise exc
            _fold_stats(frag, [reply[2] for reply in replies])
            if merge.mode == "range":
                rows: list = []
                for reply in replies:
                    rows.extend(reply[1])
                return rows
            tagged: list = []
            for reply in replies:
                tagged.extend(reply[1])
            tagged.sort(key=lambda entry: entry[0])  # stable: ties stay put
            return [item for _pos, item in tagged]

    # -- partial aggregates ----------------------------------------------

    def run_aggregate(
        self, evaluator: Any, aggregate: Any, tables: dict
    ) -> Optional[dict]:
        """Compute a global/partition aggregate's table on the pool
        (partial groups per shard, combined in part order, the aggregate
        function applied once by the parent).  Returns the computed
        table, or None to make the evaluator run the serial path."""
        with self._lock:
            if aggregate.mode not in ("global", "partition"):
                return None
            if not self._eligible(evaluator):
                return None
            inner = evaluator._aggregate_query(aggregate)
            try:
                dop = parallelize_query_block(
                    inner, self.db.catalog, self.workers
                )
            except Exception:
                return None
            if dop < 2:
                return None
            governor = getattr(evaluator, "governor", None)
            flags = (
                evaluator.user,
                getattr(evaluator, "compile_mode", "closure"),
                getattr(evaluator, "exec_mode", "fused"),
                getattr(evaluator, "batch_size", 1024),
                governor.remaining_ms() if governor is not None else None,
                governor.memory_budget if governor is not None else 0,
            )
            payload = (
                inner,
                aggregate.argument,
                aggregate.inner_key,
                aggregate.mode,
            )
            try:
                key, blob = self._blob_for(aggregate, payload)
                replies = self._run_parts(key, blob, "agg", dop, (flags,))
            except _PoolFailure:
                self._stop_pool()
                return None
            except Exception:
                return None
            if any(reply[0] == "err" for reply in replies):
                # deterministic errors re-raise identically on the
                # serial path; environmental ones heal there
                return None
            root = inner.plan
            if root is not None:
                reset_stats(root)
                _fold_stats(root, [reply[2] for reply in replies])
                evaluator._absorb_stats(root)
            groups: dict[Any, list] = {}
            for reply in replies:
                for group_key, values in reply[1].items():
                    groups.setdefault(group_key, []).extend(values)
            return {
                group_key: aggregate.function.impl(values)
                for group_key, values in groups.items()
            }
