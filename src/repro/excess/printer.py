"""An unparser for EXCESS syntax trees.

``unparse(node)`` renders any statement or expression back to concrete
EXCESS syntax that re-parses to an equivalent tree (verified by the
round-trip property tests). Expression operands are parenthesized
conservatively, so output is unambiguous regardless of user-registered
operator precedences.
"""

from __future__ import annotations

from typing import Union

from repro.errors import ExcessError
from repro.excess import ast_nodes as ast

__all__ = ["unparse"]


def unparse(node: ast.Node) -> str:
    """Render an AST node as EXCESS source text."""
    handler = _HANDLERS.get(type(node))
    if handler is None:
        raise ExcessError(f"cannot unparse {type(node).__name__}")
    return handler(node)


# -- expressions ---------------------------------------------------------------


def _string_literal(value: str) -> str:
    escaped = value.replace("\\", "\\\\").replace('"', '\\"')
    escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
    return f'"{escaped}"'


def _literal(node: ast.Literal) -> str:
    value = node.value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return _string_literal(value)
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _null(_node: ast.NullLiteral) -> str:
    return "null"


def _steps(steps: list[ast.PathStep]) -> str:
    out = []
    for step in steps:
        if isinstance(step, ast.AttributeStep):
            out.append(f".{step.name}")
        else:
            assert isinstance(step, ast.IndexStep)
            out.append(f"[{_expr(step.index)}]")
    return "".join(out)


def _path(node: ast.Path) -> str:
    return node.root + _steps(node.steps)


def _suffix_path(node: ast.SuffixPath) -> str:
    return _operand(node.base) + _steps(node.steps)


def _expr(node: ast.Expression) -> str:
    return unparse(node)


def _operand(node: ast.Expression) -> str:
    """Render a subexpression, parenthesized unless atomic."""
    text = _expr(node)
    if isinstance(
        node,
        (ast.Literal, ast.NullLiteral, ast.Path, ast.FunctionCall,
         ast.Aggregate, ast.SuffixPath),
    ):
        return text
    return f"({text})"


def _binary(node: ast.BinaryOp) -> str:
    return f"{_operand(node.left)} {node.op} {_operand(node.right)}"


def _unary(node: ast.UnaryOp) -> str:
    separator = " " if node.op[0].isalpha() else ""
    return f"{node.op}{separator}{_operand(node.operand)}"


def _call(node: ast.FunctionCall) -> str:
    return f"{node.name}({', '.join(_expr(a) for a in node.args)})"


def _aggregate(node: ast.Aggregate) -> str:
    inner = _expr(node.argument)
    if node.over is not None:
        inner += f" over {_path(node.over)}"
    if node.where is not None:
        inner += f" where {_expr(node.where)}"
    return f"{node.name}({inner})"


def _membership(node: ast.SetMembership) -> str:
    keyword = "not in" if node.negated else "in"
    return f"{_operand(node.element)} {keyword} {_path(node.collection)}"


# -- type expressions -------------------------------------------------------------


def _component(node: ast.ComponentExpr) -> str:
    prefix = "" if node.semantics == "own" else f"{node.semantics} "
    return prefix + _type_expr(node.type)


def _type_expr(node: ast.TypeExpr) -> str:
    if isinstance(node, ast.BaseTypeExpr):
        if node.name == "char":
            return f"char({node.param})"
        return node.name
    if isinstance(node, ast.NamedTypeExpr):
        return node.name
    if isinstance(node, ast.EnumTypeExpr):
        return "enum (" + ", ".join(node.labels) + ")"
    if isinstance(node, ast.SetTypeExpr):
        return "{" + _component(node.element) + "}"
    if isinstance(node, ast.ArrayTypeExpr):
        bracket = f"[{node.length}]" if node.length is not None else "[]"
        return f"{bracket} {_component(node.element)}"
    if isinstance(node, ast.TupleTypeExpr):
        inner = ", ".join(
            f"{decl.name}: {_component(decl.component)}"
            for decl in node.attributes
        )
        return f"({inner})"
    raise ExcessError(f"cannot unparse type {type(node).__name__}")


# -- clauses -----------------------------------------------------------------------


def _from_where(
    from_clauses: list[ast.FromClause],
    where: Union[ast.Expression, None],
) -> str:
    out = ""
    if from_clauses:
        rendered = []
        for clause in from_clauses:
            source = unparse(clause.source)
            every = "every " if clause.universal else ""
            rendered.append(f"{clause.variable} in {every}{source}")
        out += " from " + ", ".join(rendered)
    if where is not None:
        out += f" where {_expr(where)}"
    return out


def _assignments(assignments: list[ast.Assignment]) -> str:
    return ", ".join(
        f"{a.attribute} = {_expr(a.expression)}" for a in assignments
    )


# -- statements ----------------------------------------------------------------------


def _define_type(node: ast.DefineType) -> str:
    attrs = ", ".join(
        f"{decl.name}: {_component(decl.component)}"
        for decl in node.attributes
    )
    out = f"define type {node.name} as ({attrs})"
    if node.parents:
        out += " inherits " + ", ".join(node.parents)
    if node.renames:
        clauses = ", ".join(
            f"rename {r.parent}.{r.attribute} to {r.new_name}"
            for r in node.renames
        )
        out += f" with {clauses}"
    return out


def _create_named(node: ast.CreateNamed) -> str:
    out = f"create {_component(node.component)} {node.name}"
    if node.key:
        out += " key (" + ", ".join(node.key) + ")"
    return out


def _retrieve(node: ast.Retrieve) -> str:
    out = "retrieve"
    if node.unique:
        out += " unique"
    if node.into:
        out += f" into {node.into}"
    targets = ", ".join(
        (f"{t.label} = " if t.label else "") + _expr(t.expression)
        for t in node.targets
    )
    out += f" ({targets})"
    out += _from_where(node.from_clauses, node.where)
    if node.order:
        keys = ", ".join(
            _expr(key.expression) + (" desc" if key.descending else "")
            for key in node.order
        )
        out += f" sort by {keys}"
    return out


def _set_operation(node: ast.SetOperation) -> str:
    out = _retrieve(node.left)
    for op, term in node.terms:
        out += f" {op} {_retrieve(term)}"
    return out


def _append(node: ast.Append) -> str:
    body = (
        _assignments(node.assignments)
        if node.assignments
        else _expr(node.expression)
    )
    return (
        f"append to {_path(node.target)} ({body})"
        + _from_where(node.from_clauses, node.where)
    )


def _delete(node: ast.Delete) -> str:
    return f"delete {node.variable}" + _from_where(
        node.from_clauses, node.where
    )


def _replace(node: ast.Replace) -> str:
    return (
        f"replace {_path(node.target)} ({_assignments(node.assignments)})"
        + _from_where(node.from_clauses, node.where)
    )


def _set_statement(node: ast.SetStatement) -> str:
    return (
        f"set {_path(node.target)} = {_expr(node.expression)}"
        + _from_where(node.from_clauses, node.where)
    )


def _params(params: list[ast.ParamDecl]) -> str:
    rendered = []
    for param in params:
        if param.type_name is not None:
            rendered.append(f"{param.name} in {param.type_name}")
        else:
            rendered.append(f"{param.name}: {_component(param.component)}")
    return ", ".join(rendered)


def _define_function(node: ast.DefineFunction) -> str:
    fixed = "fixed " if node.fixed else ""
    return (
        f"define {fixed}function {node.name} ({_params(node.params)}) "
        f"returns {_component(node.returns)} as {_retrieve(node.body)}"
    )


def _define_procedure(node: ast.DefineProcedure) -> str:
    return (
        f"define procedure {node.name} ({_params(node.params)}) as "
        f"{unparse(node.body)}"
    )


def _execute(node: ast.ExecuteProcedure) -> str:
    args = ", ".join(_expr(a) for a in node.args)
    return f"execute {node.name} ({args})" + _from_where(
        node.from_clauses, node.where
    )


def _range_decl(node: ast.RangeDecl) -> str:
    every = "every " if node.universal else ""
    return f"range of {node.variable} is {every}{unparse(node.source)}"


def _destroy(node: ast.DestroyNamed) -> str:
    return f"destroy {node.name}"


def _create_index(node: ast.CreateIndex) -> str:
    return (
        f"create index on {node.set_name} ({node.attribute}) "
        f"using {node.kind}"
    )


def _drop_index(node: ast.DropIndex) -> str:
    return (
        f"drop index on {node.set_name} ({node.attribute}) using {node.kind}"
    )


def _grant(node: ast.GrantStatement) -> str:
    return f"grant {node.privilege} on {node.object_name} to {node.principal}"


def _revoke(node: ast.RevokeStatement) -> str:
    return (
        f"revoke {node.privilege} on {node.object_name} from {node.principal}"
    )


def _create_user(node: ast.CreateUser) -> str:
    return f"create user {node.name}"


def _create_group(node: ast.CreateGroup) -> str:
    return f"create group {node.name}"


def _add_to_group(node: ast.AddToGroup) -> str:
    return f"add {node.member} to group {node.group}"


def _alter_type(node: ast.AlterType) -> str:
    out = f"alter type {node.name}"
    if node.adds:
        attrs = ", ".join(
            f"{decl.name}: {_component(decl.component)}"
            for decl in node.adds
        )
        out += f" add ({attrs})"
    if node.drops:
        out += " drop (" + ", ".join(node.drops) + ")"
    return out


def _begin(_node: ast.BeginTransaction) -> str:
    return "begin transaction"


def _commit(_node: ast.CommitTransaction) -> str:
    return "commit"


def _abort(_node: ast.AbortTransaction) -> str:
    return "abort"


def _explain(node: ast.Explain) -> str:
    return f"explain {unparse(node.statement)}"


def _analyze(node: ast.Analyze) -> str:
    return f"analyze {node.set_name}" if node.set_name else "analyze"


def _script(node: ast.Script) -> str:
    return "\n".join(unparse(s) for s in node.statements)


_HANDLERS = {
    ast.Literal: _literal,
    ast.NullLiteral: _null,
    ast.Path: _path,
    ast.SuffixPath: _suffix_path,
    ast.BinaryOp: _binary,
    ast.UnaryOp: _unary,
    ast.FunctionCall: _call,
    ast.Aggregate: _aggregate,
    ast.SetMembership: _membership,
    ast.DefineType: _define_type,
    ast.CreateNamed: _create_named,
    ast.DestroyNamed: _destroy,
    ast.CreateIndex: _create_index,
    ast.DropIndex: _drop_index,
    ast.RangeDecl: _range_decl,
    ast.Retrieve: _retrieve,
    ast.SetOperation: _set_operation,
    ast.Append: _append,
    ast.Delete: _delete,
    ast.Replace: _replace,
    ast.SetStatement: _set_statement,
    ast.DefineFunction: _define_function,
    ast.DefineProcedure: _define_procedure,
    ast.ExecuteProcedure: _execute,
    ast.GrantStatement: _grant,
    ast.RevokeStatement: _revoke,
    ast.CreateUser: _create_user,
    ast.CreateGroup: _create_group,
    ast.AddToGroup: _add_to_group,
    ast.AlterType: _alter_type,
    ast.Explain: _explain,
    ast.Analyze: _analyze,
    ast.BeginTransaction: _begin,
    ast.CommitTransaction: _commit,
    ast.AbortTransaction: _abort,
    ast.Script: _script,
}
