"""Semantic analysis for EXCESS: name resolution, implicit-join and
nested-set expansion, aggregate scoping, and type checking.

The binder turns parsed AST into *bound* trees the planner and evaluator
consume. The semantically interesting work, all from paper §3:

* **Implicit joins** (GEM/DAPLEX heritage): a path step through a ``ref``
  or ``own ref`` attribute silently dereferences — ``E.dept.floor``
  expands to a traversal, not a user-visible join.
* **Nested sets / path syntax**: a path rooted at a *named set* used in
  an expression introduces an implicit range variable over that set,
  shared by every path with the same root in the query — this is exactly
  how ``retrieve (C.name) from C in Employees.kids where
  Employees.dept.floor = 2`` correlates ``C`` with its employee.
  Traversing a set-valued attribute mid-path introduces an implicit
  variable over the nested set.
* **Aggregates**: ``agg(expr)`` is a QUEL *simple* aggregate — its range
  variables are local (decoupled from the outer query). ``agg(expr over
  path [where p])`` is a partitioned aggregate: partitions are computed
  over local clones of the variables, and the outer query looks its
  partition up by evaluating the ``over`` path in the *outer* binding —
  giving the paper's "partitioning on attributes from one level of a
  complex object while partitioning on attributes from other levels".
  A set-valued path argument (``count(E.kids)``) makes the aggregate
  *correlated*: computed per outer binding over the nested set.
* **Universal quantification**: ``every`` range variables may appear only
  in the where clause; the query keeps a binding of the remaining
  variables iff the predicate holds for *all* values of the universal
  variables.
* **Object vs value comparison**: ``is``/``isnot`` are the only legal
  comparisons on references; ``=`` on references is rejected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.adt.generics import GenericSetFunction, IteratorFunction
from repro.core.catalog import Catalog
from repro.core.schema import SchemaType
from repro.core.types import (
    ArrayType,
    BOOLEAN,
    ComponentSpec,
    FLOAT8,
    INT4,
    Semantics,
    SetType,
    TEXT,
    TupleType,
    Type,
    common_numeric_type,
    is_numeric,
)
from repro.errors import BindError
from repro.excess import ast_nodes as ast

__all__ = [
    "BoundExpr",
    "Const",
    "VarRef",
    "NamedValue",
    "StepExpr",
    "AttrStep",
    "IndexStepB",
    "Binary",
    "Unary",
    "AdtCall",
    "ExcessCall",
    "AggregateRef",
    "Membership",
    "BindingSource",
    "NamedSetSource",
    "PathSource",
    "IteratorSource",
    "RangeBinding",
    "BoundAggregate",
    "BoundQuery",
    "BoundTarget",
    "BoundRetrieve",
    "CollectionTarget",
    "BoundAppend",
    "BoundDelete",
    "BoundReplace",
    "BoundSetStatement",
    "Binder",
    "Scope",
]


# ---------------------------------------------------------------------------
# Bound expression nodes
# ---------------------------------------------------------------------------


@dataclass
class BoundExpr:
    """Base bound expression; ``type`` is the static type when known."""

    type: Optional[Type] = field(default=None, kw_only=True)
    #: True when the expression denotes a first-class object (a reference)
    is_object: bool = field(default=False, kw_only=True)


@dataclass
class Const(BoundExpr):
    """A literal constant (value is the Python value, or NULL)."""

    value: Any = None


@dataclass
class VarRef(BoundExpr):
    """The current member of a range binding."""

    name: str = ""


@dataclass
class NamedValue(BoundExpr):
    """The stored value of a named non-set database object."""

    name: str = ""


@dataclass
class AttrStep(BoundExpr):
    """Attribute access (with implicit dereference of references)."""

    base: BoundExpr = None  # type: ignore[assignment]
    attribute: str = ""


@dataclass
class IndexStepB(BoundExpr):
    """1-based array indexing."""

    base: BoundExpr = None  # type: ignore[assignment]
    index: BoundExpr = None  # type: ignore[assignment]


#: alias used by planner/evaluator pattern matching
StepExpr = (AttrStep, IndexStepB)


@dataclass
class Binary(BoundExpr):
    """A built-in binary operation (arithmetic, comparison, boolean,
    string concatenation, or object equality)."""

    op: str = ""
    left: BoundExpr = None  # type: ignore[assignment]
    right: BoundExpr = None  # type: ignore[assignment]
    #: "arith" | "compare" | "bool" | "object" | "concat"
    kind: str = "arith"
    #: for comparisons over enumeration values: the labels in declaration
    #: order (enums order by ordinal, not lexicographically)
    enum_labels: Optional[tuple[str, ...]] = None


@dataclass
class Unary(BoundExpr):
    """``not`` or numeric negation."""

    op: str = ""
    operand: BoundExpr = None  # type: ignore[assignment]


@dataclass
class AdtCall(BoundExpr):
    """A resolved ADT function (or operator) invocation."""

    function: Any = None  # AdtFunction
    args: list[BoundExpr] = field(default_factory=list)


@dataclass
class ExcessCall(BoundExpr):
    """An EXCESS function invocation (dispatched through the lattice at
    run time unless the resolved function is ``fixed``)."""

    name: str = ""
    args: list[BoundExpr] = field(default_factory=list)
    #: statically resolved function for fixed dispatch (else None)
    fixed_function: Any = None


@dataclass
class AggregateRef(BoundExpr):
    """A reference to a bound aggregate; evaluation looks the value up in
    the precomputed partition table (or computes inline when correlated)."""

    aggregate_id: int = 0
    #: over-path evaluated in the *outer* environment (partitioned mode)
    outer_key: Optional[BoundExpr] = None


@dataclass
class Membership(BoundExpr):
    """``expr in collection`` / ``collection contains expr``."""

    element: BoundExpr = None  # type: ignore[assignment]
    collection: "CollectionTarget" = None  # type: ignore[assignment]
    negated: bool = False
    #: set by the optimizer: the collection is a named set whose member
    #: keys the evaluator may materialize once per execution (semi-join)
    semi_join: bool = False


# ---------------------------------------------------------------------------
# Range bindings
# ---------------------------------------------------------------------------


@dataclass
class BindingSource:
    """Base class for range binding sources."""


@dataclass
class NamedSetSource(BindingSource):
    """Iterate the live members of a named set."""

    set_name: str = ""


@dataclass
class PathSource(BindingSource):
    """Iterate a set-valued path under a parent binding.

    ``steps`` are attribute names leading from the parent's member to the
    nested set; intermediate references are dereferenced; intermediate
    *sets* are not allowed here (they get their own binding instead).
    """

    parent: str = ""
    steps: list[str] = field(default_factory=list)


@dataclass
class IteratorSource(BindingSource):
    """Iterate the values produced by a registered iterator function."""

    function: IteratorFunction = None  # type: ignore[assignment]
    args: list[BoundExpr] = field(default_factory=list)


@dataclass
class RangeBinding:
    """One iteration unit of a query."""

    name: str
    source: BindingSource
    element: ComponentSpec
    universal: bool = False
    implicit: bool = False
    #: single-variable predicates pushed down by the optimizer
    residual: list[BoundExpr] = field(default_factory=list)
    #: chosen access method ("scan" | "index"), set by the optimizer
    access: str = "scan"
    index_descriptor: Any = None
    index_op: str = ""
    index_key: Optional[BoundExpr] = None
    index_high: Optional[BoundExpr] = None
    #: join strategy for this binding ("loop" | "hash"), set by the
    #: optimizer; "hash" means the evaluator builds a hash table over this
    #: binding's source keyed by ``hash_build_key`` and probes it with
    #: ``hash_probe_key`` (evaluated in the outer environment) instead of
    #: rescanning the source per outer row
    join_strategy: str = "loop"
    hash_build_key: Optional[BoundExpr] = None
    hash_probe_key: Optional[BoundExpr] = None
    #: the join conjunct's operator ("=" value join, "is" object join) —
    #: decides null-key handling when building/probing the hash table
    hash_join_op: str = "="
    #: human-readable join annotation for EXPLAIN
    join_detail: str = ""
    #: cost-model annotations stamped by the optimizer and consumed by
    #: plan lowering (``None`` when the optimizer did not run — lowering
    #: then falls back to structural defaults): rows out of the access
    #: method, rows after residual filters, and cumulative rows at this
    #: binding's join operator
    est_base_rows: Optional[int] = None
    est_rows: Optional[int] = None
    est_cum_rows: Optional[int] = None

    @property
    def element_type(self) -> Type:
        """The member type this binding iterates over."""
        return self.element.type


@dataclass
class BoundAggregate:
    """One aggregate occurrence in a query.

    ``mode`` is ``"global"`` (simple aggregate, one value), ``"partition"``
    (over-aggregate: table keyed by the over expression), or
    ``"correlated"`` (computed per outer binding over nested sets).
    """

    aggregate_id: int
    function: GenericSetFunction
    mode: str
    argument: BoundExpr
    #: iteration local to the aggregate (clones / nested bindings)
    inner_bindings: list[RangeBinding] = field(default_factory=list)
    where: Optional[BoundExpr] = None
    #: grouping key evaluated in the aggregate's inner environment
    inner_key: Optional[BoundExpr] = None
    #: for correlated mode: outer variables the evaluation depends on
    outer_deps: list[str] = field(default_factory=list)
    #: the aggregate's inner iteration as a query (lazily built and
    #: lowered by the evaluator; reset when the optimizer re-annotates)
    inner_query: Optional["BoundQuery"] = field(
        default=None, repr=False, compare=False
    )


@dataclass
class BoundTarget:
    """One target-list column."""

    label: str
    expression: BoundExpr


@dataclass
class BoundQuery:
    """The bound core shared by retrieve and all update statements."""

    bindings: list[RangeBinding] = field(default_factory=list)
    where: Optional[BoundExpr] = None
    aggregates: list[BoundAggregate] = field(default_factory=list)
    #: the lowered physical plan (binding pipeline); attached lazily by
    #: the executor, reset by the optimizer when annotations change
    plan: Optional[Any] = field(default=None, repr=False, compare=False)
    #: cost-model estimate of the pipeline's final row count (after the
    #: remaining where clause), stamped by the optimizer
    est_rows: Optional[int] = None


@dataclass
class BoundRetrieve:
    """A bound ``retrieve`` statement."""

    query: BoundQuery
    targets: list[BoundTarget]
    into: Optional[str] = None
    unique: bool = False
    #: sort keys: (expression, descending)
    order: list[tuple[BoundExpr, bool]] = field(default_factory=list)
    #: the full lowered pipeline (StoreInto?/Sort?/Project over the
    #: query's binding pipeline); attached lazily, reset on re-optimize
    pipeline: Optional[Any] = field(default=None, repr=False, compare=False)


@dataclass
class CollectionTarget:
    """Locates a collection: a named set/array, or a set-valued path under
    a binding, or a named singleton's set attribute."""

    #: "named" | "path"
    kind: str
    name: str = ""
    base: Optional[BoundExpr] = None
    steps: list[str] = field(default_factory=list)
    element: Optional[ComponentSpec] = None


@dataclass
class BoundAppend:
    """A bound ``append`` statement."""

    query: BoundQuery
    target: CollectionTarget
    assignments: list[tuple[str, BoundExpr]] = field(default_factory=list)
    expression: Optional[BoundExpr] = None


@dataclass
class BoundDelete:
    """A bound ``delete`` statement."""

    query: BoundQuery
    variable: str = ""


@dataclass
class BoundReplace:
    """A bound ``replace`` statement."""

    query: BoundQuery
    target: BoundExpr = None  # type: ignore[assignment]
    assignments: list[tuple[str, BoundExpr]] = field(default_factory=list)


@dataclass
class BoundSetStatement:
    """A bound ``set`` statement; ``location`` describes the slot."""

    query: BoundQuery
    #: ("named", name) | ("slot", base_expr, attribute) | ("index", base_expr, index_expr)
    location: tuple = ()
    expression: BoundExpr = None  # type: ignore[assignment]


@dataclass
class BoundAnalyze:
    """A bound ``analyze`` statement (``set_name=None`` = every set)."""

    set_name: Optional[str] = None


# ---------------------------------------------------------------------------
# Scope
# ---------------------------------------------------------------------------


class Scope:
    """Names visible while binding one query: range variables (explicit,
    implicit, universal) and function/procedure parameters."""

    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self.bindings: dict[str, RangeBinding] = {}
        #: parameters: name → BoundExpr placeholder (ParamRef as VarRef)
        self.parameters: dict[str, BoundExpr] = {}
        self.order: list[RangeBinding] = []

    def declare(self, binding: RangeBinding) -> RangeBinding:
        """Add a range binding to this scope."""
        if binding.name in self.bindings:
            raise BindError(f"range variable {binding.name!r} declared twice")
        self.bindings[binding.name] = binding
        self.order.append(binding)
        return binding

    def lookup(self, name: str) -> Optional[RangeBinding]:
        """Find a binding here or in an enclosing scope."""
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.bindings:
                return scope.bindings[name]
            scope = scope.parent
        return None

    def lookup_parameter(self, name: str) -> Optional[BoundExpr]:
        """Find a parameter placeholder here or in an enclosing scope."""
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.parameters:
                return scope.parameters[name]
            scope = scope.parent
        return None

    def local_bindings(self) -> list[RangeBinding]:
        """Bindings declared in this scope, in declaration order."""
        return list(self.order)


# ---------------------------------------------------------------------------
# The binder
# ---------------------------------------------------------------------------


class Binder:
    """Binds AST statements against a catalog and session range table."""

    def __init__(
        self,
        catalog: Catalog,
        session_ranges: Optional[dict[str, ast.RangeDecl]] = None,
    ):
        self.catalog = catalog
        #: session-level `range of V is ...` declarations (QUEL keeps them
        #: until redefined)
        self.session_ranges = session_ranges if session_ranges is not None else {}
        self._aggregate_counter = 0

    # -- statement entry points ----------------------------------------------------

    def bind_analyze(self, statement: ast.Analyze) -> BoundAnalyze:
        """Validate an ``analyze`` statement's target."""
        if statement.set_name is not None:
            named = self.catalog.named(statement.set_name)  # raises if unknown
            if not named.is_set:
                raise BindError(
                    f"analyze: {statement.set_name!r} is not a named set"
                )
        return BoundAnalyze(set_name=statement.set_name)

    def bind_retrieve(
        self, statement: ast.Retrieve, outer_scope: Optional[Scope] = None
    ) -> BoundRetrieve:
        """Bind a retrieve statement (also used for function bodies)."""
        scope, query = self._new_query_scope(statement.from_clauses, outer_scope)
        targets: list[BoundTarget] = []
        for index, item in enumerate(statement.targets):
            expression = self.bind_expression(item.expression, scope, query)
            label = item.label or self._default_label(item.expression, index)
            targets.append(BoundTarget(label=label, expression=expression))
        if statement.where is not None:
            query.where = self._bind_predicate(statement.where, scope, query)
        order: list[tuple[BoundExpr, bool]] = []
        for key in statement.order:
            bound_key = self.bind_expression(key.expression, scope, query)
            order.append((bound_key, key.descending))
        self._finalize(scope, query)
        for target in targets:
            self._reject_universal(target.expression, scope, "a target list")
        for bound_key, _descending in order:
            self._reject_universal(bound_key, scope, "a sort clause")
        self._prune_bindings(
            query, [t.expression for t in targets] + [k for k, _d in order]
        )
        return BoundRetrieve(
            query=query,
            targets=targets,
            into=statement.into,
            unique=statement.unique,
            order=order,
        )

    def bind_append(
        self, statement: ast.Append, outer_scope: Optional[Scope] = None
    ) -> BoundAppend:
        """Bind an append statement."""
        scope, query = self._new_query_scope(statement.from_clauses, outer_scope)
        target = self._bind_collection_target(statement.target, scope, query)
        assignments: list[tuple[str, BoundExpr]] = []
        expression: Optional[BoundExpr] = None
        element_type = target.element.type if target.element else None
        if statement.assignments:
            if not isinstance(element_type, TupleType):
                raise BindError(
                    f"append with assignments requires a tuple-element "
                    f"collection, got {element_type}"
                )
            for assignment in statement.assignments:
                if not element_type.has_attribute(assignment.attribute):
                    raise BindError(
                        f"append: {element_type.describe()} has no attribute "
                        f"{assignment.attribute!r}"
                    )
                bound = self.bind_expression(assignment.expression, scope, query)
                assignments.append((assignment.attribute, bound))
        elif statement.expression is not None:
            expression = self.bind_expression(statement.expression, scope, query)
        else:
            raise BindError("append requires assignments or an expression")
        if statement.where is not None:
            query.where = self._bind_predicate(statement.where, scope, query)
        self._finalize(scope, query)
        return BoundAppend(
            query=query,
            target=target,
            assignments=assignments,
            expression=expression,
        )

    def bind_delete(
        self, statement: ast.Delete, outer_scope: Optional[Scope] = None
    ) -> BoundDelete:
        """Bind a delete statement."""
        scope, query = self._new_query_scope(statement.from_clauses, outer_scope)
        binding = self._resolve_range_variable(statement.variable, scope, query)
        if binding.universal:
            raise BindError("cannot delete through a universal range variable")
        if statement.where is not None:
            query.where = self._bind_predicate(statement.where, scope, query)
        self._finalize(scope, query)
        return BoundDelete(query=query, variable=binding.name)

    def bind_replace(
        self, statement: ast.Replace, outer_scope: Optional[Scope] = None
    ) -> BoundReplace:
        """Bind a replace statement."""
        scope, query = self._new_query_scope(statement.from_clauses, outer_scope)
        target = self.bind_expression(statement.target, scope, query)
        target_type = target.type
        if not isinstance(target_type, TupleType):
            raise BindError(
                f"replace target must denote tuple objects, got {target_type}"
            )
        assignments: list[tuple[str, BoundExpr]] = []
        for assignment in statement.assignments:
            if not target_type.has_attribute(assignment.attribute):
                raise BindError(
                    f"replace: {target_type.describe()} has no attribute "
                    f"{assignment.attribute!r}"
                )
            bound = self.bind_expression(assignment.expression, scope, query)
            spec = target_type.attribute(assignment.attribute)
            self._check_assignable(spec, bound, assignment.attribute)
            assignments.append((assignment.attribute, bound))
        if statement.where is not None:
            query.where = self._bind_predicate(statement.where, scope, query)
        self._finalize(scope, query)
        return BoundReplace(query=query, target=target, assignments=assignments)

    def bind_set(
        self, statement: ast.SetStatement, outer_scope: Optional[Scope] = None
    ) -> BoundSetStatement:
        """Bind a set (slot assignment) statement."""
        scope, query = self._new_query_scope(statement.from_clauses, outer_scope)
        location = self._bind_location(statement.target, scope, query)
        expression = self.bind_expression(statement.expression, scope, query)
        if statement.where is not None:
            query.where = self._bind_predicate(statement.where, scope, query)
        self._finalize(scope, query)
        return BoundSetStatement(
            query=query, location=location, expression=expression
        )

    # -- scopes and ranges ----------------------------------------------------------

    def _new_query_scope(
        self,
        from_clauses: Sequence[ast.FromClause],
        outer_scope: Optional[Scope],
    ) -> tuple[Scope, BoundQuery]:
        scope = Scope(parent=outer_scope)
        query = BoundQuery()
        for clause in from_clauses:
            self._declare_range(
                clause.variable, clause.source, clause.universal, scope, query
            )
        return scope, query

    def _declare_range(
        self,
        variable: str,
        source: ast.Expression,
        universal: bool,
        scope: Scope,
        query: BoundQuery,
    ) -> RangeBinding:
        binding_source, element = self._bind_range_source(source, scope, query)
        binding = RangeBinding(
            name=variable,
            source=binding_source,
            element=element,
            universal=universal,
        )
        return scope.declare(binding)

    def _bind_range_source(
        self, source: ast.Expression, scope: Scope, query: BoundQuery
    ) -> tuple[BindingSource, ComponentSpec]:
        """Resolve a range specification to a binding source."""
        if isinstance(source, ast.FunctionCall):
            iterator = self.catalog.set_functions.lookup_iterator(source.name)
            if iterator is None:
                raise BindError(
                    f"unknown iterator function {source.name!r} in range "
                    "specification"
                )
            if iterator.arity != len(source.args):
                raise BindError(
                    f"iterator {source.name!r} takes {iterator.arity} arguments"
                )
            args = [self.bind_expression(a, scope, query) for a in source.args]
            element = ComponentSpec(Semantics.OWN, iterator.element_type)
            return IteratorSource(function=iterator, args=args), element
        if not isinstance(source, ast.Path):
            raise BindError("range specification must be a path or iterator call")
        root = source.root
        steps = source.steps
        # Case 1: path rooted at a range variable (e.g. `range of C is E.kids`).
        # A bare named-set name always means the set itself, even when an
        # implicit variable over that set already exists in scope.
        root_binding = scope.lookup(root)
        if root_binding is not None and steps:
            return self._bind_nested_source(
                root_binding.name, root_binding.element_type, steps
            )
        if root_binding is not None and not self.catalog.has_named(root):
            raise BindError(
                f"range specification {root!r} is a range variable, not a set"
            )
        # Case 1b: rooted at a function/procedure parameter (e.g. the
        # body `retrieve (C.age) from C in P.kids`).
        parameter = scope.lookup_parameter(root)
        if parameter is not None and steps:
            param_type = parameter.type if parameter.type is not None else TEXT
            return self._bind_nested_source(f"@{root}", param_type, steps)
        # Case 2: rooted at a named object.
        if self.catalog.has_named(root):
            named = self.catalog.named(root)
            if isinstance(named.spec.type, (SetType, ArrayType)) and not steps:
                # named sets and named arrays both iterate directly
                return NamedSetSource(set_name=root), named.spec.type.element
            if isinstance(named.spec.type, SetType):
                # e.g. `Employees.kids`: implicit binding over Employees,
                # nested iteration over the remaining path.
                implicit = self._implicit_set_binding(root, scope, query)
                return self._bind_nested_source(
                    implicit.name, implicit.element_type, steps
                )
            raise BindError(
                f"range specification {root!r} does not denote a set"
            )
        # Case 3: a session-level range variable used before this query.
        if root in self.session_ranges:
            binding = self._declare_session_range(root, scope, query)
            if steps:
                return self._bind_nested_source(
                    binding.name, binding.element_type, steps
                )
            return binding.source, binding.element
        raise BindError(f"unknown range specification root {root!r}")

    def _bind_nested_source(
        self,
        parent_name: str,
        parent_type: Type,
        steps: Sequence[ast.PathStep],
    ) -> tuple[BindingSource, ComponentSpec]:
        """Bind ``parent.attr1.attr2...`` as a nested-set source."""
        if not steps:
            raise BindError("nested range specification requires a path")
        current: Type = parent_type
        names: list[str] = []
        element: Optional[ComponentSpec] = None
        for index, step in enumerate(steps):
            if not isinstance(step, ast.AttributeStep):
                raise BindError(
                    "array indexing is not supported in range specifications"
                )
            if not isinstance(current, TupleType):
                raise BindError(
                    f"path step {step.name!r} applies to a non-tuple type "
                    f"{current}"
                )
            spec = current.attribute(step.name)
            names.append(step.name)
            if isinstance(spec.type, (SetType, ArrayType)):
                if index != len(steps) - 1:
                    raise BindError(
                        "only the final step of a range path may be a "
                        f"collection (step {step.name!r} is not last); bind "
                        "intermediate collections to their own range variables"
                    )
                element = spec.type.element
            else:
                current = spec.type
        if element is None:
            raise BindError(
                "range specification path must end at a set- or array-valued "
                "attribute"
            )
        return PathSource(parent=parent_name, steps=names), element

    def _implicit_set_binding(
        self, set_name: str, scope: Scope, query: BoundQuery
    ) -> RangeBinding:
        """Find or create the implicit range variable for a named set used
        as a path root (shared across the query)."""
        existing = scope.lookup(set_name)
        if existing is not None:
            return existing
        named = self.catalog.named(set_name)
        assert isinstance(named.spec.type, SetType)
        binding = RangeBinding(
            name=set_name,
            source=NamedSetSource(set_name=set_name),
            element=named.spec.type.element,
            implicit=True,
        )
        return scope.declare(binding)

    def _declare_session_range(
        self, variable: str, scope: Scope, query: BoundQuery
    ) -> RangeBinding:
        """Materialize a session-level range declaration into this query."""
        declared = self.session_ranges[variable]
        return self._declare_range(
            variable, declared.source, declared.universal, scope, query
        )

    def _resolve_range_variable(
        self, variable: str, scope: Scope, query: BoundQuery
    ) -> RangeBinding:
        """A variable that *must* denote a range binding (delete target,
        paths), materializing session ranges on demand."""
        binding = scope.lookup(variable)
        if binding is not None:
            return binding
        if variable in self.session_ranges:
            return self._declare_session_range(variable, scope, query)
        raise BindError(f"unknown range variable {variable!r}")

    def _finalize(self, scope: Scope, query: BoundQuery) -> None:
        """Order the query's bindings: parents before dependents, in
        declaration order otherwise."""
        ordered: list[RangeBinding] = []
        placed: set[str] = set()
        pending = scope.local_bindings()
        while pending:
            progressed = False
            for binding in list(pending):
                parent = (
                    binding.source.parent
                    if isinstance(binding.source, PathSource)
                    else None
                )
                if parent is None or parent in placed or scope.lookup(parent) not in pending:
                    ordered.append(binding)
                    placed.add(binding.name)
                    pending.remove(binding)
                    progressed = True
            if not progressed:  # pragma: no cover - cycles are impossible
                raise BindError("cyclic range dependencies")
        query.bindings = ordered

    def _prune_bindings(
        self, query: BoundQuery, expressions: list[BoundExpr]
    ) -> None:
        """Drop outer bindings referenced only inside aggregates.

        QUEL semantics: a range variable appearing only within an
        aggregate is local to it — ``retrieve (count(E.salary))`` yields
        one row, not one per employee. Bindings referenced by the target
        list, the where clause, an aggregate's outer (``over``) key, or a
        correlated aggregate's outer dependencies stay, along with their
        (transitive) path parents.
        """
        used: set[str] = set()
        for expression in expressions:
            used |= self._bound_var_names(expression)
        if query.where is not None:
            used |= self._bound_var_names(query.where)
        for aggregate in query.aggregates:
            if aggregate.mode == "correlated":
                used |= set(aggregate.outer_deps)
        changed = True
        while changed:
            changed = False
            for binding in query.bindings:
                if binding.name in used and isinstance(binding.source, PathSource):
                    if binding.source.parent not in used:
                        used.add(binding.source.parent)
                        changed = True
        query.bindings = [b for b in query.bindings if b.name in used]

    # -- expressions -------------------------------------------------------------------

    def bind_expression(
        self, node: ast.Expression, scope: Scope, query: BoundQuery
    ) -> BoundExpr:
        """Bind one expression node."""
        if isinstance(node, ast.Literal):
            return Const(value=node.value, type=self._literal_type(node.value))
        if isinstance(node, ast.NullLiteral):
            from repro.core.values import NULL

            return Const(value=NULL, type=None)
        if isinstance(node, ast.Path):
            return self._bind_path(node, scope, query)
        if isinstance(node, ast.SuffixPath):
            base = self.bind_expression(node.base, scope, query)
            pseudo = ast.Path(root="<expr>", steps=list(node.steps),
                              line=node.line, column=node.column)
            semantics = Semantics.REF if base.is_object else Semantics.OWN
            base_type = base.type if base.type is not None else TEXT
            spec = (
                ComponentSpec(semantics, base_type)
                if not (semantics is Semantics.REF
                        and not isinstance(base_type, TupleType))
                else ComponentSpec(Semantics.OWN, base_type)
            )
            return self._apply_steps(base, spec, node.steps, scope, query, pseudo)
        if isinstance(node, ast.BinaryOp):
            return self._bind_binary(node, scope, query)
        if isinstance(node, ast.UnaryOp):
            return self._bind_unary(node, scope, query)
        if isinstance(node, ast.FunctionCall):
            return self._bind_call(node, scope, query)
        if isinstance(node, ast.Aggregate):
            return self._bind_aggregate(node, scope, query)
        if isinstance(node, ast.SetMembership):
            return self._bind_membership(node, scope, query)
        raise BindError(f"cannot bind expression node {type(node).__name__}")

    def _bind_predicate(
        self, node: ast.Expression, scope: Scope, query: BoundQuery
    ) -> BoundExpr:
        bound = self.bind_expression(node, scope, query)
        if bound.type is not None and bound.type != BOOLEAN:
            raise BindError(
                f"where clause must be boolean, got {bound.type}"
            )
        return bound

    @staticmethod
    def _literal_type(value: Any) -> Type:
        if isinstance(value, bool):
            return BOOLEAN
        if isinstance(value, int):
            return INT4
        if isinstance(value, float):
            return FLOAT8
        return TEXT

    @staticmethod
    def _default_label(expression: ast.Expression, index: int) -> str:
        if isinstance(expression, ast.Path):
            if expression.steps:
                last = expression.steps[-1]
                if isinstance(last, ast.AttributeStep):
                    return last.name
            return expression.root
        if isinstance(expression, (ast.FunctionCall, ast.Aggregate)):
            return expression.name
        return f"col{index + 1}"

    # -- paths -------------------------------------------------------------------------------

    def _bind_path(
        self, node: ast.Path, scope: Scope, query: BoundQuery
    ) -> BoundExpr:
        base, base_spec = self._bind_path_root(node, scope, query)
        return self._apply_steps(base, base_spec, node.steps, scope, query, node)

    def _bind_path_root(
        self, node: ast.Path, scope: Scope, query: BoundQuery
    ) -> tuple[BoundExpr, ComponentSpec]:
        root = node.root
        binding = scope.lookup(root)
        if binding is not None:
            return (
                VarRef(
                    name=root,
                    type=binding.element_type,
                    is_object=binding.element.semantics.is_object,
                ),
                binding.element,
            )
        parameter = scope.lookup_parameter(root)
        if parameter is not None:
            param_type = parameter.type if parameter.type is not None else TEXT
            semantics = Semantics.REF if parameter.is_object else Semantics.OWN
            return parameter, ComponentSpec(semantics, param_type)
        if self.catalog.has_named(root):
            named = self.catalog.named(root)
            if isinstance(named.spec.type, SetType):
                implicit = self._implicit_set_binding(root, scope, query)
                return (
                    VarRef(
                        name=implicit.name,
                        type=implicit.element_type,
                        is_object=implicit.element.semantics.is_object,
                    ),
                    implicit.element,
                )
            return (
                NamedValue(
                    name=root,
                    type=named.spec.type,
                    is_object=named.spec.semantics.is_object,
                ),
                named.spec,
            )
        if root in self.session_ranges:
            binding = self._declare_session_range(root, scope, query)
            return (
                VarRef(
                    name=binding.name,
                    type=binding.element_type,
                    is_object=binding.element.semantics.is_object,
                ),
                binding.element,
            )
        raise BindError(f"unknown name {root!r}")

    def _apply_steps(
        self,
        base: BoundExpr,
        base_spec: ComponentSpec,
        steps: Sequence[ast.PathStep],
        scope: Scope,
        query: BoundQuery,
        node: ast.Path,
    ) -> BoundExpr:
        current = base
        current_type: Optional[Type] = base.type
        for position, step in enumerate(steps):
            if isinstance(step, ast.IndexStep):
                if not isinstance(current_type, ArrayType):
                    raise BindError(
                        f"indexing a non-array value in {node.dotted()!r}"
                    )
                index = self.bind_expression(step.index, scope, query)
                element = current_type.element
                current = IndexStepB(
                    base=current,
                    index=index,
                    type=element.type,
                    is_object=element.semantics.is_object,
                )
                current_type = element.type
                continue
            assert isinstance(step, ast.AttributeStep)
            if isinstance(current_type, SetType):
                # Traversing a set mid-path in an expression: implicit
                # nested binding (existential semantics in predicates).
                current, current_type = self._nested_binding_for(
                    current, current_type, scope, query, node, position
                )
            if not isinstance(current_type, TupleType):
                raise BindError(
                    f"attribute {step.name!r} applied to non-tuple type "
                    f"{current_type} in {node.dotted()!r}"
                )
            if not current_type.has_attribute(step.name):
                raise BindError(
                    f"type {current_type.describe()} has no attribute "
                    f"{step.name!r} (in {node.dotted()!r})"
                )
            spec = current_type.attribute(step.name)
            current = AttrStep(
                base=current,
                attribute=step.name,
                type=spec.type,
                is_object=spec.semantics.is_object,
            )
            current_type = spec.type
        return current

    def _nested_binding_for(
        self,
        current: BoundExpr,
        current_type: SetType,
        scope: Scope,
        query: BoundQuery,
        node: ast.Path,
        position: int,
    ) -> tuple[BoundExpr, Type]:
        """Replace a set-valued sub-path with an implicit binding over it."""
        # Reconstruct the attribute chain from the nearest VarRef base.
        chain: list[str] = []
        probe = current
        while isinstance(probe, AttrStep):
            chain.append(probe.attribute)
            probe = probe.base
        if not isinstance(probe, VarRef):
            raise BindError(
                f"set-valued path in {node.dotted()!r} must be rooted at a "
                "range variable or named set"
            )
        chain.reverse()
        synthetic = f"${probe.name}.{'.'.join(chain)}" if chain else f"${probe.name}"
        existing = scope.lookup(synthetic)
        if existing is None:
            existing = scope.declare(
                RangeBinding(
                    name=synthetic,
                    source=PathSource(parent=probe.name, steps=chain),
                    element=current_type.element,
                    implicit=True,
                )
            )
        return (
            VarRef(
                name=synthetic,
                type=existing.element_type,
                is_object=existing.element.semantics.is_object,
            ),
            existing.element_type,
        )

    # -- operators --------------------------------------------------------------------------------

    _COMPARISONS = {"=", "!=", "<", "<=", ">", ">="}
    _BOOLEANS = {"and", "or"}
    _ARITHMETIC = {"+", "-", "*", "/", "%"}

    def _bind_binary(
        self, node: ast.BinaryOp, scope: Scope, query: BoundQuery
    ) -> BoundExpr:
        left = self.bind_expression(node.left, scope, query)
        right = self.bind_expression(node.right, scope, query)
        op = node.op
        if op in ("is", "isnot"):
            return self._bind_object_equality(op, left, right)
        if op in self._BOOLEANS:
            for operand in (left, right):
                if operand.type is not None and operand.type != BOOLEAN:
                    raise BindError(
                        f"{op!r} requires boolean operands, got {operand.type}"
                    )
            return Binary(op=op, left=left, right=right, kind="bool", type=BOOLEAN)
        if op in self._COMPARISONS:
            if left.is_object or right.is_object:
                raise BindError(
                    f"references compare only with 'is'/'isnot', not {op!r}"
                )
            adt = self._try_adt_operator(op, [left, right])
            if adt is not None:
                return adt
            self._check_comparable(left, right, op)
            enum_labels = self._enum_comparison_labels(left, right, op)
            return Binary(
                op=op, left=left, right=right, kind="compare", type=BOOLEAN,
                enum_labels=enum_labels,
            )
        if op in self._ARITHMETIC or op == "||":
            adt = self._try_adt_operator(op, [left, right])
            if adt is not None:
                return adt
            from repro.core.types import CharType, TextType

            is_stringy = lambda t: isinstance(t, (CharType, TextType))  # noqa: E731
            if op == "||" or (
                op == "+" and is_stringy(left.type) and is_stringy(right.type)
            ):
                return Binary(
                    op="||", left=left, right=right, kind="concat", type=TEXT
                )
            result = None
            if left.type is not None and right.type is not None:
                if is_numeric(left.type) and is_numeric(right.type):
                    result = common_numeric_type(left.type, right.type)
                else:
                    raise BindError(
                        f"operator {op!r} requires numeric operands, got "
                        f"{left.type} and {right.type}"
                    )
            return Binary(op=op, left=left, right=right, kind="arith", type=result)
        # user-registered operator
        adt = self._try_adt_operator(op, [left, right])
        if adt is not None:
            return adt
        raise BindError(f"unknown operator {op!r}")

    def _check_comparable(
        self, left: BoundExpr, right: BoundExpr, op: str
    ) -> None:
        """Static comparability: both numeric, both stringy, both boolean
        (equality only), the same enum/ADT, or either side untyped."""
        from repro.core.types import AdtType, CharType, EnumType, TextType

        lt, rt = left.type, right.type
        if lt is None or rt is None:
            return
        if is_numeric(lt) and is_numeric(rt):
            return
        stringy = (CharType, TextType)
        if isinstance(lt, stringy) and isinstance(rt, stringy):
            return
        if isinstance(lt, EnumType) or isinstance(rt, EnumType):
            return  # validated by _enum_comparison_labels
        if lt == BOOLEAN and rt == BOOLEAN and op in ("=", "!="):
            return
        if isinstance(lt, AdtType) and isinstance(rt, AdtType) and lt.name == rt.name:
            return
        raise BindError(
            f"cannot compare {lt} with {rt} using {op!r}"
        )

    def _enum_comparison_labels(
        self, left: BoundExpr, right: BoundExpr, op: str
    ) -> Optional[tuple[str, ...]]:
        """Enumeration values order by declaration position, not
        lexicographically (paper §2.1 lists enumerations among ordered
        base types). Returns the label order when either operand is an
        enum; validates literal operands against the labels."""
        from repro.core.types import EnumType
        from repro.core.values import NULL

        enum_type: Optional[EnumType] = None
        for operand in (left, right):
            if isinstance(operand.type, EnumType):
                if enum_type is not None and operand.type != enum_type:
                    raise BindError(
                        "cannot compare values of different enumerations"
                    )
                enum_type = operand.type
        if enum_type is None:
            return None
        for operand in (left, right):
            if (
                isinstance(operand, Const)
                and operand.value is not NULL
                and isinstance(operand.value, str)
                and operand.value not in enum_type.labels
            ):
                raise BindError(
                    f"{operand.value!r} is not a label of {enum_type}"
                )
        return enum_type.labels

    def _bind_object_equality(
        self, op: str, left: BoundExpr, right: BoundExpr
    ) -> BoundExpr:
        from repro.core.values import NULL

        null_test = (
            isinstance(right, Const) and right.value is NULL
        ) or (isinstance(left, Const) and left.value is NULL)
        if not null_test and not (left.is_object and right.is_object):
            raise BindError(
                f"{op!r} compares object references (or tests for null); "
                "use '=' for values"
            )
        return Binary(op=op, left=left, right=right, kind="object", type=BOOLEAN)

    def _try_adt_operator(
        self, symbol: str, operands: list[BoundExpr]
    ) -> Optional[BoundExpr]:
        types = [operand.type for operand in operands]
        if any(t is None for t in types):
            return None
        function = self.catalog.adts.resolve_operator(symbol, types)  # type: ignore[arg-type]
        if function is None:
            return None
        return AdtCall(
            function=function,
            args=operands,
            type=function.result_type,
            is_object=False,
        )

    def _bind_unary(
        self, node: ast.UnaryOp, scope: Scope, query: BoundQuery
    ) -> BoundExpr:
        operand = self.bind_expression(node.operand, scope, query)
        if node.op == "not":
            return Unary(op="not", operand=operand, type=BOOLEAN)
        if node.op == "-":
            if operand.type is not None and not is_numeric(operand.type):
                adt = self._try_adt_prefix(node.op, operand)
                if adt is not None:
                    return adt
                raise BindError("unary '-' requires a numeric operand")
            return Unary(op="-", operand=operand, type=operand.type)
        adt = self._try_adt_prefix(node.op, operand)
        if adt is not None:
            return adt
        raise BindError(f"unknown prefix operator {node.op!r}")

    def _try_adt_prefix(self, symbol: str, operand: BoundExpr) -> Optional[BoundExpr]:
        if operand.type is None:
            return None
        function = self.catalog.adts.resolve_operator(symbol, [operand.type])
        if function is None:
            return None
        return AdtCall(function=function, args=[operand], type=function.result_type)

    # -- calls --------------------------------------------------------------------------------------

    def _bind_call(
        self, node: ast.FunctionCall, scope: Scope, query: BoundQuery
    ) -> BoundExpr:
        # A set function without over/where: either a plain aggregate over
        # a set-valued argument (count(E.kids)) or a QUEL simple aggregate.
        set_function = self.catalog.set_functions.lookup(node.name)
        if set_function is not None:
            if len(node.args) != 1:
                raise BindError(
                    f"set function {node.name!r} takes exactly one argument"
                )
            aggregate = ast.Aggregate(
                name=node.name,
                argument=node.args[0],
                over=None,
                where=None,
                line=node.line,
                column=node.column,
            )
            return self._bind_aggregate(aggregate, scope, query)
        # EXCESS function? (resolved against any schema type's functions)
        excess = self._try_bind_excess_call(node, scope, query)
        if excess is not None:
            return excess
        # ADT function (constructor or member, symmetric syntax).
        args = [self.bind_expression(a, scope, query) for a in node.args]
        types = [a.type for a in args]
        if all(t is not None for t in types):
            function = self.catalog.adts.resolve_function(node.name, types)  # type: ignore[arg-type]
            if function is not None:
                return AdtCall(
                    function=function, args=args, type=function.result_type
                )
        # fall back: any ADT function with this name and matching arity
        candidates = [
            f for f in self.catalog.adts.functions_named(node.name)
            if f.arity == len(args)
        ]
        if len(candidates) == 1:
            return AdtCall(
                function=candidates[0], args=args,
                type=candidates[0].result_type,
            )
        raise BindError(f"unknown function {node.name!r}")

    def _try_bind_excess_call(
        self, node: ast.FunctionCall, scope: Scope, query: BoundQuery
    ) -> Optional[BoundExpr]:
        """Bind ``F(E, ...)`` as an EXCESS function call when the first
        argument is an object of a schema type defining (or inheriting) F."""
        if not node.args:
            return None
        first = self.bind_expression(node.args[0], scope, query)
        if not isinstance(first.type, SchemaType):
            return None
        function = self.catalog.lookup_function(first.type, node.name)
        if function is None:
            return None
        args = [first] + [
            self.bind_expression(a, scope, query) for a in node.args[1:]
        ]
        if len(args) != len(function.params):
            raise BindError(
                f"function {node.name!r} takes {len(function.params)} "
                f"arguments, got {len(args)}"
            )
        return ExcessCall(
            name=node.name,
            args=args,
            type=function.result_type,
            is_object=function.returns_object,
            fixed_function=function if function.fixed else None,
        )

    # -- aggregates ------------------------------------------------------------------------------------

    def _bind_aggregate(
        self, node: ast.Aggregate, scope: Scope, query: BoundQuery
    ) -> BoundExpr:
        function = self.catalog.set_functions.lookup(node.name)
        if function is None:
            raise BindError(f"unknown set function {node.name!r}")
        self._aggregate_counter += 1
        aggregate_id = self._aggregate_counter

        # Inner scope: clones of referenced outer variables. The clone map
        # renames variables so the aggregate iterates independently (QUEL
        # decoupling), while correlated set-paths stay rooted outside.
        inner_scope = Scope(parent=None)
        inner_query = BoundQuery()
        roots = self._path_roots(node.argument) | self._path_roots(node.where) | (
            {node.over.root} if node.over is not None else set()
        )
        correlated_roots: set[str] = set()
        clone_map: dict[str, str] = {}
        for root in sorted(roots):
            outer_binding = scope.lookup(root)
            if outer_binding is None and root in self.session_ranges:
                outer_binding = self._declare_session_range(root, scope, query)
            if outer_binding is None:
                if scope.lookup_parameter(root) is not None:
                    # function/procedure parameters are per-call constants:
                    # the aggregate is correlated on them
                    correlated_roots.add(f"@{root}")
                continue  # named objects handle themselves
            if self._argument_traverses_set(node.argument, root):
                correlated_roots.add(root)
                continue
            clone_map[root] = root
            self._clone_binding_into(outer_binding, inner_scope, scope)

        if correlated_roots:
            if node.over is not None:
                raise BindError(
                    "an aggregate over a nested-set argument cannot also "
                    "use an 'over' clause"
                )
            return self._bind_correlated_aggregate(
                node, function, aggregate_id, scope, query, correlated_roots
            )

        # Partitioned / global aggregate: bind inner expressions against
        # the inner scope.
        argument = self.bind_expression(node.argument, inner_scope, inner_query)
        argument = self._devolve_collection_argument(argument, inner_scope)
        where = (
            self._bind_predicate(node.where, inner_scope, inner_query)
            if node.where is not None
            else None
        )
        inner_key = None
        outer_key = None
        mode = "global"
        if node.over is not None:
            mode = "partition"
            inner_key = self.bind_expression(node.over, inner_scope, inner_query)
            outer_key = self.bind_expression(node.over, scope, query)
        self._check_aggregate_argument(function, argument)
        self._finalize(inner_scope, inner_query)
        bound = BoundAggregate(
            aggregate_id=aggregate_id,
            function=function,
            mode=mode,
            argument=argument,
            inner_bindings=inner_query.bindings,
            where=where,
            inner_key=inner_key,
        )
        query.aggregates.append(bound)
        result_type = function.result_type(argument.type) if argument.type else None
        return AggregateRef(
            aggregate_id=aggregate_id, outer_key=outer_key, type=result_type
        )

    def _bind_correlated_aggregate(
        self,
        node: ast.Aggregate,
        function: GenericSetFunction,
        aggregate_id: int,
        scope: Scope,
        query: BoundQuery,
        correlated_roots: set[str],
    ) -> BoundExpr:
        """count(E.kids)-style: per-outer-row iteration over nested sets.

        The nested bindings live in a private scope whose parent is the
        outer scope, so the outer variables stay visible (correlated).
        """
        inner_scope = Scope(parent=scope)
        inner_query = BoundQuery()
        argument = self.bind_expression(node.argument, inner_scope, inner_query)
        argument = self._devolve_collection_argument(argument, inner_scope)
        where = (
            self._bind_predicate(node.where, inner_scope, inner_query)
            if node.where is not None
            else None
        )
        self._check_aggregate_argument(function, argument)
        self._finalize(inner_scope, inner_query)
        bound = BoundAggregate(
            aggregate_id=aggregate_id,
            function=function,
            mode="correlated",
            argument=argument,
            inner_bindings=inner_query.bindings,
            where=where,
            outer_deps=sorted(correlated_roots),
        )
        query.aggregates.append(bound)
        result_type = function.result_type(argument.type) if argument.type else None
        return AggregateRef(aggregate_id=aggregate_id, outer_key=None, type=result_type)

    def _devolve_collection_argument(
        self, argument: BoundExpr, inner_scope: Scope
    ) -> BoundExpr:
        """When the aggregate argument is a whole collection
        (``count(E.kids)``), iterate it: replace the argument with a
        variable ranging over the collection's members."""
        if not isinstance(argument.type, (SetType, ArrayType)):
            return argument
        chain: list[str] = []
        probe: BoundExpr = argument
        while isinstance(probe, AttrStep):
            chain.append(probe.attribute)
            probe = probe.base
        if not isinstance(probe, VarRef):
            raise BindError(
                "a collection aggregate argument must be a path rooted at a "
                "range variable or named set"
            )
        chain.reverse()
        synthetic = f"${probe.name}.{'.'.join(chain)}"
        element = argument.type.element
        existing = inner_scope.lookup(synthetic)
        if existing is None or existing not in inner_scope.local_bindings():
            existing = inner_scope.declare(
                RangeBinding(
                    name=synthetic,
                    source=PathSource(parent=probe.name, steps=chain),
                    element=element,
                    implicit=True,
                )
            )
        return VarRef(
            name=synthetic,
            type=element.type,
            is_object=element.semantics.is_object,
        )

    def _check_aggregate_argument(
        self, function: GenericSetFunction, argument: BoundExpr
    ) -> None:
        if argument.is_object and function.name != "count":
            raise BindError(
                f"set function {function.name!r} cannot aggregate object "
                "references; aggregate an attribute instead"
            )
        if argument.type is not None:
            function.check_applicable(
                argument.type, self.catalog.set_functions.ordered_adts
            )

    def _clone_binding_into(
        self, binding: RangeBinding, inner_scope: Scope, outer_scope: Scope
    ) -> RangeBinding:
        """Recursively copy a binding (and its parents) into the
        aggregate's private scope."""
        existing = inner_scope.lookup(binding.name)
        if existing is not None:
            return existing
        source = binding.source
        if isinstance(source, PathSource):
            parent = outer_scope.lookup(source.parent)
            if parent is not None:
                self._clone_binding_into(parent, inner_scope, outer_scope)
            source = PathSource(parent=source.parent, steps=list(source.steps))
        clone = RangeBinding(
            name=binding.name,
            source=source,
            element=binding.element,
            universal=False,
            implicit=binding.implicit,
        )
        return inner_scope.declare(clone)

    def _path_roots(self, node: Optional[ast.Expression]) -> set[str]:
        """All path roots appearing in an AST expression."""
        out: set[str] = set()
        if node is None:
            return out
        if isinstance(node, ast.Path):
            out.add(node.root)
            for step in node.steps:
                if isinstance(step, ast.IndexStep):
                    out |= self._path_roots(step.index)
            return out
        if isinstance(node, ast.BinaryOp):
            return self._path_roots(node.left) | self._path_roots(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._path_roots(node.operand)
        if isinstance(node, (ast.FunctionCall,)):
            for arg in node.args:
                out |= self._path_roots(arg)
            return out
        if isinstance(node, ast.Aggregate):
            out |= self._path_roots(node.argument)
            out |= self._path_roots(node.where)
            if node.over is not None:
                out.add(node.over.root)
            return out
        if isinstance(node, ast.SetMembership):
            out |= self._path_roots(node.element)
            out.add(node.collection.root)
            return out
        return out

    def _argument_traverses_set(
        self, node: ast.Expression, root: str
    ) -> bool:
        """True when a path rooted at ``root`` (a range variable) in the
        aggregate argument traverses a set-valued attribute — the
        correlated-aggregate trigger (count(E.kids))."""
        paths: list[ast.Path] = []

        def collect(expr: Optional[ast.Expression]) -> None:
            if expr is None:
                return
            if isinstance(expr, ast.Path):
                paths.append(expr)
            elif isinstance(expr, ast.BinaryOp):
                collect(expr.left)
                collect(expr.right)
            elif isinstance(expr, ast.UnaryOp):
                collect(expr.operand)
            elif isinstance(expr, ast.FunctionCall):
                for arg in expr.args:
                    collect(arg)

        collect(node)
        for path in paths:
            if path.root != root:
                continue
            # Walk the static types to see whether any step is set-valued.
            binding_types = self._static_chain_types(path)
            if binding_types:
                return True
        return False

    def _static_chain_types(self, path: ast.Path) -> bool:
        """True when the path's attribute chain crosses a set type,
        judged from the catalog's type information only."""
        # Find a plausible element type: any schema type with the first
        # attribute. This is a heuristic used only to decide correlated
        # aggregates; full checking happens during actual binding.
        steps = [s for s in path.steps if isinstance(s, ast.AttributeStep)]
        if not steps:
            return False
        for type_name in self.catalog.type_names():
            schema_type = self.catalog.schema_type(type_name)
            current: Optional[Type] = schema_type
            ok = True
            crossed = False
            for step in steps:
                if not isinstance(current, TupleType) or not current.has_attribute(
                    step.name
                ):
                    ok = False
                    break
                spec = current.attribute(step.name)
                if isinstance(spec.type, SetType):
                    crossed = True
                    current = spec.type.element.type
                else:
                    current = spec.type
            if ok and crossed:
                return True
        return False

    # -- membership ------------------------------------------------------------------------------------------

    def _bind_membership(
        self, node: ast.SetMembership, scope: Scope, query: BoundQuery
    ) -> BoundExpr:
        element = self.bind_expression(node.element, scope, query)
        collection = self._bind_collection_target(node.collection, scope, query)
        return Membership(
            element=element,
            collection=collection,
            negated=node.negated,
            type=BOOLEAN,
        )

    def _bind_collection_target(
        self, path: ast.Path, scope: Scope, query: BoundQuery
    ) -> CollectionTarget:
        """Resolve a path that must denote a collection (set or array)."""
        root = path.root
        if not path.steps and self.catalog.has_named(root):
            named = self.catalog.named(root)
            if isinstance(named.spec.type, (SetType, ArrayType)):
                return CollectionTarget(
                    kind="named",
                    name=root,
                    element=named.spec.type.element,
                )
            raise BindError(f"{root!r} is not a collection")
        # Path form: root must be a variable / named object; all steps but
        # the traversal end must be attribute steps reaching a set.
        binding = scope.lookup(root)
        if binding is None and root in self.session_ranges:
            binding = self._declare_session_range(root, scope, query)
        if binding is not None:
            base = VarRef(
                name=binding.name,
                type=binding.element_type,
                is_object=binding.element.semantics.is_object,
            )
            current: Optional[Type] = binding.element_type
        elif self.catalog.has_named(root):
            named = self.catalog.named(root)
            if isinstance(named.spec.type, SetType):
                implicit = self._implicit_set_binding(root, scope, query)
                base = VarRef(
                    name=implicit.name,
                    type=implicit.element_type,
                    is_object=implicit.element.semantics.is_object,
                )
                current = implicit.element_type
            else:
                base = NamedValue(
                    name=root,
                    type=named.spec.type,
                    is_object=named.spec.semantics.is_object,
                )
                current = named.spec.type
        else:
            raise BindError(f"unknown collection {path.dotted()!r}")
        steps: list[str] = []
        for step in path.steps:
            if not isinstance(step, ast.AttributeStep):
                raise BindError(
                    "collection paths may not use array indexing"
                )
            if not isinstance(current, TupleType):
                raise BindError(
                    f"attribute {step.name!r} applied to non-tuple in "
                    f"{path.dotted()!r}"
                )
            spec = current.attribute(step.name)
            steps.append(step.name)
            current = spec.type
            if isinstance(current, (SetType, ArrayType)):
                # must be final
                if step is not path.steps[-1]:
                    raise BindError(
                        "collection path must end at its set/array attribute"
                    )
                return CollectionTarget(
                    kind="path",
                    base=base,
                    steps=steps,
                    element=current.element,
                )
        raise BindError(f"{path.dotted()!r} does not denote a collection")

    # -- locations (set statement) -------------------------------------------------------------------------------

    def _bind_location(
        self, path: ast.Path, scope: Scope, query: BoundQuery
    ) -> tuple:
        """Bind the target of a ``set`` statement to a slot locator."""
        root = path.root
        if not path.steps:
            if not self.catalog.has_named(root):
                raise BindError(f"set target {root!r} is not a named object")
            return ("named", root)
        # Bind all but the last step as an expression; the last step is
        # the slot (attribute or index).
        prefix = ast.Path(
            root=root, steps=list(path.steps[:-1]),
            line=path.line, column=path.column,
        )
        base = self._bind_path(prefix, scope, query)
        last = path.steps[-1]
        if isinstance(last, ast.AttributeStep):
            if not isinstance(base.type, TupleType):
                raise BindError(
                    f"set target attribute {last.name!r} applies to a "
                    f"non-tuple type {base.type}"
                )
            base.type.attribute(last.name)  # validates
            return ("slot", base, last.name)
        assert isinstance(last, ast.IndexStep)
        if not isinstance(base.type, ArrayType):
            raise BindError("set target indexing applies to a non-array value")
        index = self.bind_expression(last.index, scope, query)
        return ("index", base, index)

    # -- assignment type checks ------------------------------------------------------------------------------------

    def _check_assignable(
        self, spec: ComponentSpec, value: BoundExpr, attribute: str
    ) -> None:
        if value.type is None:
            return
        if spec.semantics.is_object:
            if not value.is_object and not (
                isinstance(value, Const) and value.type is None
            ):
                raise BindError(
                    f"attribute {attribute!r} holds a reference; the value "
                    "assigned must be an object"
                )
            if isinstance(spec.type, SchemaType) and isinstance(
                value.type, SchemaType
            ):
                if not spec.type.is_assignable_from(value.type):
                    raise BindError(
                        f"cannot assign {value.type.describe()} to attribute "
                        f"{attribute!r} of type {spec.type.describe()}"
                    )
            return
        if value.is_object:
            raise BindError(
                f"attribute {attribute!r} holds a value; cannot assign an "
                "object reference"
            )
        if not spec.type.is_assignable_from(value.type):
            # numeric widening is checked dynamically; allow numerics
            if is_numeric(spec.type) and is_numeric(value.type):
                return
            raise BindError(
                f"cannot assign {value.type} to attribute {attribute!r} of "
                f"type {spec.type}"
            )

    # -- universal variable restrictions ------------------------------------------------------------------------------

    def _reject_universal(
        self, expression: BoundExpr, scope: Scope, context: str
    ) -> None:
        for name in self._bound_var_names(expression):
            binding = scope.lookup(name)
            if binding is not None and binding.universal:
                raise BindError(
                    f"universal range variable {name!r} may not appear in "
                    f"{context}"
                )

    def _bound_var_names(self, expression: BoundExpr) -> set[str]:
        out: set[str] = set()
        stack: list[BoundExpr] = [expression]
        while stack:
            node = stack.pop()
            if isinstance(node, VarRef):
                out.add(node.name)
            elif isinstance(node, AttrStep):
                stack.append(node.base)
            elif isinstance(node, IndexStepB):
                stack.extend([node.base, node.index])
            elif isinstance(node, Binary):
                stack.extend([node.left, node.right])
            elif isinstance(node, Unary):
                stack.append(node.operand)
            elif isinstance(node, (AdtCall, ExcessCall)):
                stack.extend(node.args)
            elif isinstance(node, Membership):
                stack.append(node.element)
                if node.collection.base is not None:
                    stack.append(node.collection.base)
            elif isinstance(node, AggregateRef) and node.outer_key is not None:
                stack.append(node.outer_key)
        return out
