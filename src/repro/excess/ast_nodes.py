"""Abstract syntax trees for EXCESS statements and expressions.

Nodes are plain dataclasses; every node carries a source position for
error reporting. The grammar reconstruction decisions are documented in
DESIGN.md §4 — constructs the paper *shows* are verbatim; constructs it
only *describes* use the closest QUEL-style spelling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Union

__all__ = [
    "Node",
    "Expression",
    "Statement",
    # expressions
    "Literal",
    "NullLiteral",
    "Path",
    "PathStep",
    "AttributeStep",
    "IndexStep",
    "SuffixPath",
    "BinaryOp",
    "UnaryOp",
    "FunctionCall",
    "Aggregate",
    "SetMembership",
    "TypeExpr",
    "BaseTypeExpr",
    "NamedTypeExpr",
    "EnumTypeExpr",
    "SetTypeExpr",
    "ArrayTypeExpr",
    "TupleTypeExpr",
    "ComponentExpr",
    # statements
    "DefineType",
    "RenameClause",
    "AttributeDecl",
    "CreateNamed",
    "DestroyNamed",
    "RangeDecl",
    "FromClause",
    "TargetItem",
    "Retrieve",
    "SortKey",
    "SetOperation",
    "Explain",
    "Append",
    "Assignment",
    "Delete",
    "Replace",
    "SetStatement",
    "DefineFunction",
    "ParamDecl",
    "DefineProcedure",
    "ExecuteProcedure",
    "CreateIndex",
    "DropIndex",
    "GrantStatement",
    "RevokeStatement",
    "CreateUser",
    "CreateGroup",
    "AddToGroup",
    "AlterType",
    "BeginTransaction",
    "CommitTransaction",
    "AbortTransaction",
    "Script",
]


@dataclass
class Node:
    """Base class: every AST node knows its source line/column."""

    line: int = field(default=0, kw_only=True)
    column: int = field(default=0, kw_only=True)


class Expression(Node):
    """Marker base for expression nodes."""


class Statement(Node):
    """Marker base for statement nodes."""


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Literal(Expression):
    """An integer, float, string, or boolean literal."""

    value: Any = None


@dataclass
class NullLiteral(Expression):
    """The ``null`` keyword."""


@dataclass
class PathStep(Node):
    """Marker base for path steps."""


@dataclass
class AttributeStep(PathStep):
    """``.name`` — attribute access (dereferencing refs implicitly)."""

    name: str = ""


@dataclass
class IndexStep(PathStep):
    """``[expr]`` — 1-based array indexing."""

    index: Expression = None  # type: ignore[assignment]


@dataclass
class Path(Expression):
    """A path expression: a root name followed by steps.

    The root may be a range variable, a named database object, or a
    function/procedure parameter — the binder decides which.
    """

    root: str = ""
    steps: list[PathStep] = field(default_factory=list)

    def dotted(self) -> str:
        """Human-readable rendering, e.g. ``Employees.dept.floor``."""
        out = self.root
        for step in self.steps:
            if isinstance(step, AttributeStep):
                out += f".{step.name}"
            else:
                out += "[...]"
        return out


@dataclass
class SuffixPath(Expression):
    """Path steps applied to a non-name base expression, e.g.
    ``Workplace(E).dname`` — attribute/index steps after a call."""

    base: Expression = None  # type: ignore[assignment]
    steps: list[PathStep] = field(default_factory=list)


@dataclass
class BinaryOp(Expression):
    """An infix operation, including comparison, boolean connectives,
    ``is`` / ``isnot``, and user-registered ADT operators."""

    op: str = ""
    left: Expression = None  # type: ignore[assignment]
    right: Expression = None  # type: ignore[assignment]


@dataclass
class UnaryOp(Expression):
    """A prefix operation: ``not``, ``-``, or a user prefix operator."""

    op: str = ""
    operand: Expression = None  # type: ignore[assignment]


@dataclass
class FunctionCall(Expression):
    """``Name(args)`` — an ADT function, ADT constructor, EXCESS function
    (symmetric syntax), or iterator function; the binder resolves which."""

    name: str = ""
    args: list[Expression] = field(default_factory=list)


@dataclass
class Aggregate(Expression):
    """``agg(expr [over path] [where pred])`` — a set function applied
    either globally (QUEL simple aggregate), partitioned by the ``over``
    path (paper §3.4), or over a set-valued path argument."""

    name: str = ""
    argument: Expression = None  # type: ignore[assignment]
    over: Optional[Path] = None
    where: Optional[Expression] = None


@dataclass
class SetMembership(Expression):
    """``expr in path`` / ``path contains expr`` membership tests."""

    element: Expression = None  # type: ignore[assignment]
    collection: Path = None  # type: ignore[assignment]
    negated: bool = False


# ---------------------------------------------------------------------------
# Type expressions (DDL)
# ---------------------------------------------------------------------------


@dataclass
class TypeExpr(Node):
    """Marker base for type expressions."""


@dataclass
class BaseTypeExpr(TypeExpr):
    """A predefined base type, e.g. ``int4`` or ``char(20)``."""

    name: str = ""
    param: Optional[int] = None


@dataclass
class NamedTypeExpr(TypeExpr):
    """A schema type or ADT referenced by name."""

    name: str = ""


@dataclass
class EnumTypeExpr(TypeExpr):
    """``enum (a, b, c)``."""

    labels: list[str] = field(default_factory=list)


@dataclass
class ComponentExpr(Node):
    """``[own | ref | own ref] <type-expr>`` — a component spec."""

    semantics: str = "own"  # "own" | "ref" | "own ref"
    type: TypeExpr = None  # type: ignore[assignment]


@dataclass
class SetTypeExpr(TypeExpr):
    """``{ component }``."""

    element: ComponentExpr = None  # type: ignore[assignment]


@dataclass
class ArrayTypeExpr(TypeExpr):
    """``[n] component`` (fixed) or ``[] component`` (variable)."""

    element: ComponentExpr = None  # type: ignore[assignment]
    length: Optional[int] = None


@dataclass
class TupleTypeExpr(TypeExpr):
    """``( name: component, ... )`` — an anonymous tuple type."""

    attributes: list["AttributeDecl"] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class AttributeDecl(Node):
    """One attribute declaration inside ``define type``."""

    name: str = ""
    component: ComponentExpr = None  # type: ignore[assignment]


@dataclass
class RenameClause(Node):
    """``rename Parent.attr to new_name``."""

    parent: str = ""
    attribute: str = ""
    new_name: str = ""


@dataclass
class DefineType(Statement):
    """``define type T as ( ... ) [inherits A, B] [with rename ...]``."""

    name: str = ""
    attributes: list[AttributeDecl] = field(default_factory=list)
    parents: list[str] = field(default_factory=list)
    renames: list[RenameClause] = field(default_factory=list)


@dataclass
class CreateNamed(Statement):
    """``create <component> <Name> [key (a, b)]``."""

    name: str = ""
    component: ComponentExpr = None  # type: ignore[assignment]
    key: list[str] = field(default_factory=list)


@dataclass
class DestroyNamed(Statement):
    """``destroy <Name>``."""

    name: str = ""


@dataclass
class RangeDecl(Statement):
    """``range of V is <path>`` — a session-level range declaration.

    ``universal`` marks ``range of V is every <path>`` (paper §3.2:
    EXCESS "provides support for universal quantification" in range
    statements; keyword spelling is RECONSTRUCTED).
    """

    variable: str = ""
    source: Union[Path, FunctionCall] = None  # type: ignore[assignment]
    universal: bool = False


@dataclass
class FromClause(Node):
    """``from V in <path>`` — a query-local range binding."""

    variable: str = ""
    source: Union[Path, FunctionCall] = None  # type: ignore[assignment]
    universal: bool = False


@dataclass
class TargetItem(Node):
    """One target-list element: ``[name =] expr``."""

    expression: Expression = None  # type: ignore[assignment]
    label: Optional[str] = None


@dataclass
class SortKey(Node):
    """One ``sort by`` key: an expression plus direction."""

    expression: Expression = None  # type: ignore[assignment]
    descending: bool = False


@dataclass
class Retrieve(Statement):
    """``retrieve [into Name] (targets) [from ...] [where ...]
    [sort by key [asc|desc], ...]``.

    ``unique`` renders ``retrieve unique`` duplicate elimination; the
    ``sort by`` clause is QUEL's result ordering.
    """

    targets: list[TargetItem] = field(default_factory=list)
    into: Optional[str] = None
    from_clauses: list[FromClause] = field(default_factory=list)
    where: Optional[Expression] = None
    unique: bool = False
    order: list[SortKey] = field(default_factory=list)


@dataclass
class Assignment(Node):
    """``attr = expr`` inside append/replace."""

    attribute: str = ""
    expression: Expression = None  # type: ignore[assignment]


@dataclass
class Append(Statement):
    """``append [to] <path> ( assignments | expr ) [from ...] [where ...]``."""

    target: Path = None  # type: ignore[assignment]
    assignments: list[Assignment] = field(default_factory=list)
    #: single-expression form, e.g. ``append to Team (E)``
    expression: Optional[Expression] = None
    from_clauses: list[FromClause] = field(default_factory=list)
    where: Optional[Expression] = None


@dataclass
class Delete(Statement):
    """``delete V [from ...] [where ...]``."""

    variable: str = ""
    from_clauses: list[FromClause] = field(default_factory=list)
    where: Optional[Expression] = None


@dataclass
class Replace(Statement):
    """``replace <path> ( assignments ) [from ...] [where ...]``."""

    target: Path = None  # type: ignore[assignment]
    assignments: list[Assignment] = field(default_factory=list)
    from_clauses: list[FromClause] = field(default_factory=list)
    where: Optional[Expression] = None


@dataclass
class SetStatement(Statement):
    """``set <path> = expr [from ...] [where ...]`` — assignment to a
    named singleton or an array slot (RECONSTRUCTED spelling)."""

    target: Path = None  # type: ignore[assignment]
    expression: Expression = None  # type: ignore[assignment]
    from_clauses: list[FromClause] = field(default_factory=list)
    where: Optional[Expression] = None


@dataclass
class ParamDecl(Node):
    """A function/procedure parameter: ``V in Type`` (object parameter)
    or ``name : <component>`` (value parameter)."""

    name: str = ""
    type_name: Optional[str] = None  # "V in Type" form
    component: Optional[ComponentExpr] = None  # "name : spec" form


@dataclass
class DefineFunction(Statement):
    """``define [fixed] function F (V in T, ...) returns <spec> as
    retrieve (...)``; ``fixed`` opts out of virtual dispatch (paper
    compares to non-virtual C++ member functions)."""

    name: str = ""
    params: list[ParamDecl] = field(default_factory=list)
    returns: ComponentExpr = None  # type: ignore[assignment]
    body: Retrieve = None  # type: ignore[assignment]
    fixed: bool = False
    replace: bool = False


@dataclass
class DefineProcedure(Statement):
    """``define procedure P (params) as <update-statement>``."""

    name: str = ""
    params: list[ParamDecl] = field(default_factory=list)
    body: Statement = None  # type: ignore[assignment]


@dataclass
class ExecuteProcedure(Statement):
    """``execute P (args) [from ...] [where ...]`` — the where clause
    binds parameters and the body runs for *all* bindings (paper §4.2.2)."""

    name: str = ""
    args: list[Expression] = field(default_factory=list)
    from_clauses: list[FromClause] = field(default_factory=list)
    where: Optional[Expression] = None


@dataclass
class CreateIndex(Statement):
    """``create index on <Set> (attr) [using hash|btree]``."""

    set_name: str = ""
    attribute: str = ""
    kind: str = "btree"


@dataclass
class DropIndex(Statement):
    """``drop index on <Set> (attr) [using hash|btree]``."""

    set_name: str = ""
    attribute: str = ""
    kind: str = "btree"


@dataclass
class GrantStatement(Statement):
    """``grant <priv> on <Name> to <principal>``."""

    privilege: str = ""
    object_name: str = ""
    principal: str = ""


@dataclass
class RevokeStatement(Statement):
    """``revoke <priv> on <Name> from <principal>``."""

    privilege: str = ""
    object_name: str = ""
    principal: str = ""


@dataclass
class CreateUser(Statement):
    """``create user <name>``."""

    name: str = ""


@dataclass
class CreateGroup(Statement):
    """``create group <name>``."""

    name: str = ""


@dataclass
class AddToGroup(Statement):
    """``add <user-or-group> to group <name>``."""

    member: str = ""
    group: str = ""


@dataclass
class SetOperation(Statement):
    """``retrieve ... union|intersect|minus retrieve ...`` — combines the
    row sets of two or more retrieves (left-associative). RECONSTRUCTED
    extension: the paper treats sets as first-class and QUEL descendants
    commonly add these combinators."""

    #: the first retrieve
    left: "Retrieve" = None  # type: ignore[assignment]
    #: subsequent ("union"|"intersect"|"minus", retrieve) terms, in order
    terms: list[tuple] = field(default_factory=list)


@dataclass
class Explain(Statement):
    """``explain <query-statement>`` — bind and optimize without
    executing; the result rows describe the chosen plan."""

    statement: Statement = None  # type: ignore[assignment]


@dataclass
class AlterType(Statement):
    """``alter type T add (a: spec, ...) drop (b, ...)`` — schema
    evolution (the paper's §6 future work, implemented)."""

    name: str = ""
    adds: list[AttributeDecl] = field(default_factory=list)
    drops: list[str] = field(default_factory=list)


@dataclass
class BeginTransaction(Statement):
    """``begin [transaction]`` — open a snapshot transaction."""


@dataclass
class CommitTransaction(Statement):
    """``commit`` — make the open transaction permanent."""


@dataclass
class AbortTransaction(Statement):
    """``abort`` — roll the open transaction back."""


@dataclass
class Analyze(Statement):
    """``analyze [<SetName>]`` — rebuild optimizer statistics from a
    scan of one named set (or of every named set).

    A reconstructed spelling: the paper presumes the EXODUS optimizer's
    tabular cost information exists (§4.1.3) but never shows the
    statement that gathers it.
    """

    set_name: Optional[str] = None


@dataclass
class Script(Node):
    """A sequence of statements separated by newlines/semicolons."""

    statements: list[Statement] = field(default_factory=list)
