"""Expression compilation: bound expressions lowered to Python closures.

The evaluator's :meth:`~repro.excess.evaluator.Evaluator._eval` walks a
:class:`~repro.excess.binder.BoundExpr` tree per row, paying an
``isinstance`` dispatch chain plus operator-kind tests for every node on
every candidate row. This module removes that per-row interpretation:
:func:`compile_expr` translates a bound expression **once** into a tree
of nested Python closures — each node becomes a function ``fn(env, ctx)
-> value`` whose body contains only the work that node actually does,
with EXCESS null semantics (three-valued comparison and Kleene logic,
dangling references reading as null) baked in at compile time.

Compilation is total: every expression compiles. Node types whose
evaluation is entangled with per-statement evaluator state —
:class:`~repro.excess.binder.AdtCall` (registered ADT functions),
:class:`~repro.excess.binder.ExcessCall` (recursion-depth accounting,
dynamic dispatch), :class:`~repro.excess.binder.AggregateRef`
(precomputed partition tables), :class:`~repro.excess.binder.Membership`
(memoized semi-join key sets) — compile to a thin callback into the
existing interpreter, so mixed expressions still run their compilable
subtrees as closures. A compiled expression therefore never needs a
plan-level bailout; operators report ``closure`` when the whole tree
compiled directly and ``fallback`` when any callback remains.

Closures are deliberately stateless: they capture only the expression's
constants and sub-closures, and take the per-execution state (the shared
environment dict and the :class:`~repro.excess.plan.PlanContext`) as
arguments. That keeps compiled plans shareable across executions exactly
like the operator trees that carry them, and keeps them out of pickled
transaction snapshots (plan nodes drop their compiled caches on
``__getstate__`` and recompile lazily).

Semantics are pinned against the interpreter by a Hypothesis property
(``tests/property/test_query_equivalence.py``) and a per-figure parity
suite (``tests/integration/test_compile_parity.py``): for every query,
``compile_mode="closure"`` and ``compile_mode="off"`` must produce
identical rows, messages, and errors.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, NamedTuple, Optional

from repro.core.schema import SchemaType
from repro.core.values import (
    NULL,
    ArrayInstance,
    Ref,
    SetInstance,
    TupleInstance,
    value_equal,
)
from repro.errors import EvaluationError
from repro.excess.binder import (
    AttrStep,
    Binary,
    BoundExpr,
    Const,
    ExcessCall,
    IndexStepB,
    NamedValue,
    Unary,
    VarRef,
)

__all__ = [
    "CompiledExpr",
    "compile_expr",
    "compile_all",
    "compiled_label",
    "FusedPipeline",
    "fused_pipeline",
]

#: a compiled expression: ``fn(env, ctx) -> value`` where ``env`` is the
#: shared environment dict and ``ctx`` the plan's execution context
CompiledFn = Callable[[dict, Any], Any]


class CompiledExpr(NamedTuple):
    """One compiled expression and how completely it compiled."""

    fn: CompiledFn
    #: True when the whole tree lowered to direct closures; False when
    #: any node fell back to an interpreter callback
    full: bool


# ---------------------------------------------------------------------------
# Shared runtime helpers (mirroring the evaluator's semantics exactly)
# ---------------------------------------------------------------------------


def _truth(value: Any) -> Optional[bool]:
    """Three-valued truth: NULL is unknown, non-booleans are errors."""
    if value is NULL:
        return None
    if isinstance(value, bool):
        return value
    raise EvaluationError(f"boolean operand expected, got {value!r}")


def _object_oid(value: Any) -> Optional[int]:
    if value is NULL:
        return None
    if isinstance(value, Ref):
        return value.oid
    if isinstance(value, TupleInstance) and value.oid is not None:
        return value.oid
    raise EvaluationError(
        f"'is'/'isnot' compares object references, got {value!r}"
    )


#: value comparators per operator; ``=``/``!=`` use structural equality
_COMPARATORS: dict[str, Callable[[Any, Any], Any]] = {
    "=": value_equal,
    "!=": lambda left, right: not value_equal(left, right),
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


# ---------------------------------------------------------------------------
# Node compilers
# ---------------------------------------------------------------------------


def _compile_fallback(node: BoundExpr) -> CompiledExpr:
    """A thin callback into the interpreter for nodes that need
    per-statement evaluator state (ADT/EXCESS calls, aggregates,
    memberships) — and, defensively, any unrecognized shape."""

    def run(env: dict, ctx: Any, _node: BoundExpr = node) -> Any:
        return ctx.evaluator._eval(_node, env, ctx.tables)

    return CompiledExpr(run, False)


def _compile_const(node: Const) -> CompiledExpr:
    value = node.value

    def run(env: dict, ctx: Any) -> Any:
        return value

    return CompiledExpr(run, True)


def _compile_var(node: VarRef) -> CompiledExpr:
    name = node.name

    def run(env: dict, ctx: Any) -> Any:
        value = env.get(name, NULL)
        if isinstance(value, Ref) and not ctx.objects.is_live(value.oid):
            return NULL  # dangling reference reads as null (GEM)
        return value

    return CompiledExpr(run, True)


def _compile_named(node: NamedValue) -> CompiledExpr:
    name = node.name

    def run(env: dict, ctx: Any) -> Any:
        value = ctx.db.named(name).value
        if isinstance(value, Ref) and not ctx.objects.is_live(value.oid):
            return NULL
        return value

    return CompiledExpr(run, True)


def _compile_attr(node: AttrStep) -> CompiledExpr:
    base_fn, base_full = _compile(node.base)
    attribute = node.attribute

    def run(env: dict, ctx: Any) -> Any:
        base = base_fn(env, ctx)
        if isinstance(base, Ref):
            base = ctx.objects.deref(base.oid)
            if base is None:
                return NULL
        elif not isinstance(base, TupleInstance):
            return NULL  # attribute of null (or a non-object) is null
        value = base.get(attribute)
        if isinstance(value, Ref) and not ctx.objects.is_live(value.oid):
            return NULL
        return value

    return CompiledExpr(run, base_full)


def _compile_index(node: IndexStepB) -> CompiledExpr:
    base_fn, base_full = _compile(node.base)
    index_fn, index_full = _compile(node.index)

    def run(env: dict, ctx: Any) -> Any:
        base = base_fn(env, ctx)
        index = index_fn(env, ctx)
        if base is NULL or index is NULL:
            return NULL
        if not isinstance(base, ArrayInstance):
            raise EvaluationError(f"indexing a non-array value {base!r}")
        if not isinstance(index, int) or isinstance(index, bool):
            raise EvaluationError("array index must be an integer")
        if index < 1 or index > len(base):
            return NULL  # reads beyond the end are null; writes error
        value = base.get(index)
        if isinstance(value, Ref) and not ctx.objects.is_live(value.oid):
            return NULL
        return value

    return CompiledExpr(run, base_full and index_full)


def _compile_bool(node: Binary) -> CompiledExpr:
    """Kleene three-valued and/or; short-circuits exactly like the
    interpreter (the right operand is not evaluated when the left side
    already decides)."""
    left_fn, left_full = _compile(node.left)
    right_fn, right_full = _compile(node.right)
    full = left_full and right_full

    if node.op == "and":

        def run(env: dict, ctx: Any) -> Any:
            left = _truth(left_fn(env, ctx))
            if left is False:
                return False
            right = _truth(right_fn(env, ctx))
            if right is False:
                return False
            if left is None or right is None:
                return NULL
            return True

        return CompiledExpr(run, full)

    if node.op == "or":

        def run(env: dict, ctx: Any) -> Any:
            left = _truth(left_fn(env, ctx))
            if left is True:
                return True
            right = _truth(right_fn(env, ctx))
            if right is True:
                return True
            if left is None or right is None:
                return NULL
            return False

        return CompiledExpr(run, full)

    return _compile_fallback(node)


def _compile_object_equality(node: Binary) -> CompiledExpr:
    left_fn, left_full = _compile(node.left)
    right_fn, right_full = _compile(node.right)
    negated = node.op != "is"

    def run(env: dict, ctx: Any) -> Any:
        left = left_fn(env, ctx)
        right = right_fn(env, ctx)
        objects = ctx.objects
        if isinstance(left, Ref) and not objects.is_live(left.oid):
            left = NULL
        if isinstance(right, Ref) and not objects.is_live(right.oid):
            right = NULL
        if left is NULL or right is NULL:
            # `X is null` tests for null-ness; two nulls are the same
            # (both denote no object), a null and anything else are not.
            same = left is NULL and right is NULL
        else:
            same = _object_oid(left) == _object_oid(right)
        return not same if negated else same

    return CompiledExpr(run, left_full and right_full)


def _compile_compare(node: Binary) -> CompiledExpr:
    compare = _COMPARATORS.get(node.op)
    if compare is None:
        return _compile_fallback(node)
    left_fn, left_full = _compile(node.left)
    right_fn, right_full = _compile(node.right)
    full = left_full and right_full

    if node.enum_labels is not None:
        # bake the declaration-order ordinals in at compile time
        labels = node.enum_labels
        ordinals = {label: position for position, label in enumerate(labels)}

        def run(env: dict, ctx: Any) -> Any:
            left = left_fn(env, ctx)
            right = right_fn(env, ctx)
            if left is NULL or right is NULL:
                return NULL
            if isinstance(left, str):
                try:
                    left = ordinals[left]
                except KeyError:
                    raise EvaluationError(
                        f"{left!r} is not a label of the enumeration"
                    ) from None
            if isinstance(right, str):
                try:
                    right = ordinals[right]
                except KeyError:
                    raise EvaluationError(
                        f"{right!r} is not a label of the enumeration"
                    ) from None
            try:
                return compare(left, right)
            except TypeError as exc:
                raise EvaluationError(f"incomparable values: {exc}") from exc

        return CompiledExpr(run, full)

    def run(env: dict, ctx: Any) -> Any:
        left = left_fn(env, ctx)
        right = right_fn(env, ctx)
        if left is NULL or right is NULL:
            return NULL
        try:
            return compare(left, right)
        except TypeError as exc:
            raise EvaluationError(f"incomparable values: {exc}") from exc

    return CompiledExpr(run, full)


def _compile_concat(node: Binary) -> CompiledExpr:
    left_fn, left_full = _compile(node.left)
    right_fn, right_full = _compile(node.right)

    def run(env: dict, ctx: Any) -> Any:
        left = left_fn(env, ctx)
        right = right_fn(env, ctx)
        if left is NULL or right is NULL:
            return NULL
        return str(left) + str(right)

    return CompiledExpr(run, left_full and right_full)


def _compile_arith(node: Binary) -> CompiledExpr:
    left_fn, left_full = _compile(node.left)
    right_fn, right_full = _compile(node.right)
    full = left_full and right_full
    op = node.op

    if op == "+":

        def run(env: dict, ctx: Any) -> Any:
            left = left_fn(env, ctx)
            right = right_fn(env, ctx)
            if left is NULL or right is NULL:
                return NULL
            try:
                return left + right
            except TypeError as exc:
                raise EvaluationError(
                    f"bad arithmetic operands: {exc}"
                ) from exc

    elif op == "-":

        def run(env: dict, ctx: Any) -> Any:
            left = left_fn(env, ctx)
            right = right_fn(env, ctx)
            if left is NULL or right is NULL:
                return NULL
            try:
                return left - right
            except TypeError as exc:
                raise EvaluationError(
                    f"bad arithmetic operands: {exc}"
                ) from exc

    elif op == "*":

        def run(env: dict, ctx: Any) -> Any:
            left = left_fn(env, ctx)
            right = right_fn(env, ctx)
            if left is NULL or right is NULL:
                return NULL
            try:
                return left * right
            except TypeError as exc:
                raise EvaluationError(
                    f"bad arithmetic operands: {exc}"
                ) from exc

    elif op == "/":

        def run(env: dict, ctx: Any) -> Any:
            left = left_fn(env, ctx)
            right = right_fn(env, ctx)
            if left is NULL or right is NULL:
                return NULL
            try:
                if right == 0:
                    raise EvaluationError("division by zero")
                if isinstance(left, int) and isinstance(right, int):
                    return left // right if left % right == 0 else left / right
                return left / right
            except TypeError as exc:
                raise EvaluationError(
                    f"bad arithmetic operands: {exc}"
                ) from exc

    elif op == "%":

        def run(env: dict, ctx: Any) -> Any:
            left = left_fn(env, ctx)
            right = right_fn(env, ctx)
            if left is NULL or right is NULL:
                return NULL
            try:
                if right == 0:
                    raise EvaluationError("modulo by zero")
                return left % right
            except TypeError as exc:
                raise EvaluationError(
                    f"bad arithmetic operands: {exc}"
                ) from exc

    else:
        return _compile_fallback(node)

    return CompiledExpr(run, full)


def _compile_binary(node: Binary) -> CompiledExpr:
    if node.kind == "bool":
        return _compile_bool(node)
    if node.kind == "object":
        return _compile_object_equality(node)
    if node.kind == "compare":
        return _compile_compare(node)
    if node.kind == "concat":
        return _compile_concat(node)
    if node.kind == "arith":
        return _compile_arith(node)
    return _compile_fallback(node)


def _compile_unary(node: Unary) -> CompiledExpr:
    operand_fn, operand_full = _compile(node.operand)

    if node.op == "not":

        def run(env: dict, ctx: Any) -> Any:
            truth = _truth(operand_fn(env, ctx))
            if truth is None:
                return NULL
            return not truth

        return CompiledExpr(run, operand_full)

    if node.op == "-":

        def run(env: dict, ctx: Any) -> Any:
            value = operand_fn(env, ctx)
            if value is NULL:
                return NULL
            try:
                return -value
            except TypeError as exc:
                raise EvaluationError(f"cannot negate {value!r}") from exc

        return CompiledExpr(run, operand_full)

    return _compile_fallback(node)


def _inline_excess_body(function: Any, evaluator: Any) -> Optional[CompiledFn]:
    """The compiled body of an inlinable EXCESS function, or None.

    Inlinable means the body is a bare scalar expression over the
    parameters — one target, no range bindings, no where clause, no
    aggregates, no into/unique/order — so a call is exactly one compiled
    expression evaluated in the callee environment, with no plan to
    open.  Everything else (set-returning, iterating, filtering bodies)
    keeps the full :func:`~repro.excess.functions.call_function` path.
    """
    if function.returns_set:
        return None
    from repro.excess.binder import Binder
    from repro.excess.functions import bind_function_body

    bound = bind_function_body(function, Binder(evaluator.db.catalog))
    query = bound.query
    if (
        query.bindings
        or query.where is not None
        or query.aggregates
        or bound.into is not None
        or bound.unique
        or bound.order
    ):
        return None
    return _compile(bound.targets[0].expression).fn


def _compile_excess_call(node: ExcessCall) -> CompiledExpr:
    """EXCESS function calls: compiled dispatch with body inlining.

    Argument evaluation, the recursion-depth guard, dynamic dispatch on
    the first argument's runtime type, arity, and authorization mirror
    :meth:`Evaluator._eval_excess_call` + :func:`call_function` exactly
    (identical error messages, identical ordering). When the resolved
    function's body is a bare scalar expression, the call runs its
    compiled body directly in the callee environment — no Binder, no
    plan open, no row materialization per call. Bodies that need real
    execution fall back to :func:`call_function`.

    Reported ``full=False``: the call still depends on evaluator state
    (depth accounting, dynamic dispatch), so operators keep the honest
    ``compiled=fallback`` annotation.
    """
    arg_fns = [_compile(a).fn for a in node.args]
    name = node.name
    fixed_function = node.fixed_function
    #: id(function) -> (function, bound-body-at-compile, body fn | None);
    #: the identity recheck guards redefinition and snapshot revival
    inline_cache: dict[int, tuple] = {}

    def run(env: dict, ctx: Any) -> Any:
        evaluator = ctx.evaluator
        args = [fn(env, ctx) for fn in arg_fns]
        if evaluator._function_depth >= evaluator.MAX_FUNCTION_DEPTH:
            raise EvaluationError(
                "EXCESS function recursion deeper than "
                f"{evaluator.MAX_FUNCTION_DEPTH}"
            )
        evaluator._function_depth += 1
        try:
            first = args[0] if args else NULL
            if first is NULL:
                return NULL
            if fixed_function is not None:
                function = fixed_function
            else:
                instance = evaluator._resolve_instance(first)
                if instance is None:
                    return NULL
                if not isinstance(instance.type, SchemaType):
                    raise EvaluationError(
                        f"function {name!r} requires a schema-typed object"
                    )
                function = evaluator.db.catalog.lookup_function(
                    instance.type, name
                )
                if function is None:
                    raise EvaluationError(
                        f"no function {name!r} for type "
                        f"{instance.type.name!r}"
                    )
            if len(args) != len(function.params):
                raise EvaluationError(
                    f"function {function.name!r} takes "
                    f"{len(function.params)} arguments, got {len(args)}"
                )
            if evaluator.db.authz.enabled:
                from repro.authz.grants import Privilege

                evaluator.db.authz.check(
                    evaluator.user, Privilege.EXECUTE, function.name
                )
            cached = inline_cache.get(id(function))
            if (
                cached is None
                or cached[0] is not function
                or cached[1] is not function.bound
            ):
                body = _inline_excess_body(function, evaluator)
                inline_cache[id(function)] = (function, function.bound, body)
            else:
                body = cached[2]
            if body is None:
                from repro.excess.functions import call_function

                return call_function(evaluator, name, fixed_function, args)
            callee_env = {
                f"@{param.name}": value
                for param, value in zip(function.params, args)
            }
            return body(callee_env, ctx)
        finally:
            evaluator._function_depth -= 1

    return CompiledExpr(run, False)


#: compile-time dispatch: exact node class → handler (AdtCall,
#: AggregateRef, Membership, and anything unknown go through the fallback)
_HANDLERS: dict[type, Callable[[Any], CompiledExpr]] = {
    Const: _compile_const,
    VarRef: _compile_var,
    NamedValue: _compile_named,
    AttrStep: _compile_attr,
    IndexStepB: _compile_index,
    Binary: _compile_binary,
    Unary: _compile_unary,
    ExcessCall: _compile_excess_call,
}


def _compile(node: BoundExpr) -> CompiledExpr:
    handler = _HANDLERS.get(type(node))
    if handler is None:
        return _compile_fallback(node)
    return handler(node)


# ---------------------------------------------------------------------------
# Public interface
# ---------------------------------------------------------------------------


def compile_expr(node: BoundExpr) -> CompiledExpr:
    """Compile one bound expression into a closure.

    Always succeeds: uncompilable nodes become interpreter callbacks
    inside an otherwise-compiled tree (``full=False``).
    """
    return _compile(node)


def compile_all(nodes: list[BoundExpr]) -> tuple[list[CompiledFn], bool]:
    """Compile a list of expressions; returns the closures plus whether
    every tree compiled fully (for the ``compiled=`` plan annotation)."""
    compiled = [_compile(node) for node in nodes]
    return [entry.fn for entry in compiled], all(
        entry.full for entry in compiled
    )


def compiled_label(full: bool) -> str:
    """The per-operator EXPLAIN annotation for a compiled expression set."""
    return "closure" if full else "fallback"


# ---------------------------------------------------------------------------
# Pipeline fusion: a whole Scan→Filter…→Project region as one generated
# Python function (exec'd once per plan, cached on the region root)
# ---------------------------------------------------------------------------


class _ExprLowering:
    """Statement-level lowering of simple bound expressions straight into
    fused-pipeline source, bypassing per-expression closure calls.

    Each supported shape is lowered to the same sequence of checks its
    closure compiler above performs — NULL propagation, liveness checks,
    3VL truth, and byte-identical error messages — so inline and closure
    evaluation are observably equivalent. ``lower`` returns
    ``(None, None)`` for any unsupported shape; the caller falls back to
    a closure call for that expression. Attribute reads off the scan
    variable share one dereference per row (``_obj``), which is safe
    because nothing can mutate the object store between two expression
    evaluations over the same row.
    """

    def __init__(self, ns: dict, scan_var: str, enabled: bool):
        self.ns = ns
        self.scan_var = scan_var
        self.enabled = enabled
        self.tmp = 0
        self.consts = 0
        #: True once any lowered expression read an attribute of the
        #: scan variable — the loop then hoists one deref per row
        self.uses_scan_object = False

    def new_tmp(self) -> str:
        self.tmp += 1
        return f"_t{self.tmp}"

    def lower(self, node: BoundExpr, indent: str):
        """``(statements, result_name)`` or ``(None, None)``."""
        if not self.enabled:
            return None, None
        buf: list[str] = []
        try:
            reg = self._lower(node, buf, indent)
        except _Unsupported:
            return None, None
        return buf, reg

    def _lower(self, node: BoundExpr, buf: list, i: str) -> str:
        if isinstance(node, Const):
            self.consts += 1
            name = f"_c{self.consts}"
            self.ns[name] = node.value
            return name
        if isinstance(node, VarRef):
            return self._lower_var(node, buf, i)
        if isinstance(node, NamedValue):
            out = self.new_tmp()
            buf.append(f"{i}{out} = _db.named({node.name!r}).value")
            self._live_check(out, buf, i)
            return out
        if isinstance(node, AttrStep):
            return self._lower_attr(node, buf, i)
        if isinstance(node, Binary):
            return self._lower_binary(node, buf, i)
        if isinstance(node, Unary):
            return self._lower_unary(node, buf, i)
        raise _Unsupported

    def _live_check(self, out: str, buf: list, i: str) -> None:
        buf.append(f"{i}if isinstance({out}, Ref) and not _alive({out}.oid):")
        buf.append(f"{i}    {out} = NULL")

    def _lower_var(self, node: VarRef, buf: list, i: str) -> str:
        if node.name == self.scan_var:
            # the scan yields only live members, and nothing dies while
            # this row's expressions run — skip the liveness re-check
            return "_member"
        out = self.new_tmp()
        buf.append(f"{i}{out} = env.get({node.name!r}, NULL)")
        self._live_check(out, buf, i)
        return out

    def _lower_attr(self, node: AttrStep, buf: list, i: str) -> str:
        out = self.new_tmp()
        base = node.base
        if isinstance(base, VarRef) and base.name == self.scan_var:
            self.uses_scan_object = True
            buf.append(f"{i}if _obj is NULL:")
            buf.append(f"{i}    {out} = NULL")
            buf.append(f"{i}else:")
            buf.append(f"{i}    {out} = _obj.get({node.attribute!r})")
            buf.append(
                f"{i}    if isinstance({out}, Ref) and not _alive({out}.oid):"
            )
            buf.append(f"{i}        {out} = NULL")
            return out
        base_reg = self._lower(base, buf, i)
        buf.append(f"{i}{out} = {base_reg}")
        buf.append(f"{i}if isinstance({out}, Ref):")
        buf.append(f"{i}    {out} = _deref({out}.oid)")
        buf.append(f"{i}    if {out} is None:")
        buf.append(f"{i}        {out} = NULL")
        buf.append(f"{i}    else:")
        buf.append(f"{i}        {out} = {out}.get({node.attribute!r})")
        buf.append(f"{i}elif isinstance({out}, TupleInstance):")
        buf.append(f"{i}    {out} = {out}.get({node.attribute!r})")
        buf.append(f"{i}else:")
        buf.append(f"{i}    {out} = NULL")
        self._live_check(out, buf, i)
        return out

    def _lower_binary(self, node: Binary, buf: list, i: str) -> str:
        if node.kind == "bool" and node.op in ("and", "or"):
            return self._lower_bool(node, buf, i)
        if node.kind == "object" and node.op in ("is", "isnot"):
            return self._lower_object(node, buf, i)
        left = self._lower(node.left, buf, i)
        right = self._lower(node.right, buf, i)
        out = self.new_tmp()
        if node.kind == "compare" and node.enum_labels is None:
            if node.op in ("<", "<=", ">", ">="):
                expr = f"{left} {node.op} {right}"
            elif node.op == "=":
                expr = f"_veq({left}, {right})"
            elif node.op == "!=":
                expr = f"not _veq({left}, {right})"
            else:
                raise _Unsupported
            buf.append(f"{i}if {left} is NULL or {right} is NULL:")
            buf.append(f"{i}    {out} = NULL")
            buf.append(f"{i}else:")
            buf.append(f"{i}    try:")
            buf.append(f"{i}        {out} = {expr}")
            buf.append(f"{i}    except TypeError as _exc:")
            buf.append(
                f'{i}        raise EvaluationError('
                f'f"incomparable values: {{_exc}}") from _exc'
            )
            return out
        if node.kind == "concat":
            buf.append(f"{i}if {left} is NULL or {right} is NULL:")
            buf.append(f"{i}    {out} = NULL")
            buf.append(f"{i}else:")
            buf.append(f"{i}    {out} = str({left}) + str({right})")
            return out
        if node.kind == "arith" and node.op in ("+", "-", "*", "/", "%"):
            buf.append(f"{i}if {left} is NULL or {right} is NULL:")
            buf.append(f"{i}    {out} = NULL")
            buf.append(f"{i}else:")
            buf.append(f"{i}    try:")
            if node.op == "/":
                buf.append(f"{i}        if {right} == 0:")
                buf.append(
                    f'{i}            raise EvaluationError("division by zero")'
                )
                buf.append(
                    f"{i}        if isinstance({left}, int) "
                    f"and isinstance({right}, int):"
                )
                buf.append(
                    f"{i}            {out} = {left} // {right} "
                    f"if {left} % {right} == 0 else {left} / {right}"
                )
                buf.append(f"{i}        else:")
                buf.append(f"{i}            {out} = {left} / {right}")
            elif node.op == "%":
                buf.append(f"{i}        if {right} == 0:")
                buf.append(
                    f'{i}            raise EvaluationError("modulo by zero")'
                )
                buf.append(f"{i}        {out} = {left} % {right}")
            else:
                buf.append(f"{i}        {out} = {left} {node.op} {right}")
            buf.append(f"{i}    except TypeError as _exc:")
            buf.append(
                f'{i}        raise EvaluationError('
                f'f"bad arithmetic operands: {{_exc}}") from _exc'
            )
            return out
        raise _Unsupported

    def _lower_bool(self, node: Binary, buf: list, i: str) -> str:
        left = self._lower(node.left, buf, i)
        out = self.new_tmp()
        lt = self.new_tmp()
        buf.append(f"{i}{lt} = _truth({left})")
        decided = "False" if node.op == "and" else "True"
        buf.append(f"{i}if {lt} is {decided}:")
        buf.append(f"{i}    {out} = {decided}")
        buf.append(f"{i}else:")
        inner: list[str] = []
        right = self._lower(node.right, inner, i + "    ")
        buf.extend(inner)
        rt = self.new_tmp()
        buf.append(f"{i}    {rt} = _truth({right})")
        buf.append(f"{i}    if {rt} is {decided}:")
        buf.append(f"{i}        {out} = {decided}")
        buf.append(f"{i}    elif {lt} is None or {rt} is None:")
        buf.append(f"{i}        {out} = NULL")
        buf.append(f"{i}    else:")
        buf.append(f"{i}        {out} = {'True' if node.op == 'and' else 'False'}")
        return out

    def _lower_object(self, node: Binary, buf: list, i: str) -> str:
        left = self._lower(node.left, buf, i)
        right = self._lower(node.right, buf, i)
        lt, rt = self.new_tmp(), self.new_tmp()
        out = self.new_tmp()
        for reg, operand in ((lt, left), (rt, right)):
            buf.append(f"{i}{reg} = {operand}")
            self._live_check(reg, buf, i)
        buf.append(f"{i}if {lt} is NULL or {rt} is NULL:")
        buf.append(f"{i}    {out} = {lt} is NULL and {rt} is NULL")
        buf.append(f"{i}else:")
        buf.append(f"{i}    {out} = _ooid({lt}) == _ooid({rt})")
        if node.op != "is":
            buf.append(f"{i}{out} = not {out}")
        return out

    def _lower_unary(self, node: Unary, buf: list, i: str) -> str:
        operand = self._lower(node.operand, buf, i)
        out = self.new_tmp()
        if node.op == "not":
            buf.append(f"{i}{out} = _truth({operand})")
            buf.append(f"{i}{out} = NULL if {out} is None else not {out}")
            return out
        if node.op == "-":
            buf.append(f"{i}if {operand} is NULL:")
            buf.append(f"{i}    {out} = NULL")
            buf.append(f"{i}else:")
            buf.append(f"{i}    try:")
            buf.append(f"{i}        {out} = -{operand}")
            buf.append(f"{i}    except TypeError as _exc:")
            buf.append(
                f'{i}        raise EvaluationError('
                f'f"cannot negate {{{operand}!r}}") from _exc'
            )
            return out
        raise _Unsupported


class _Unsupported(Exception):
    """Internal: the expression shape has no inline lowering."""


class FusedPipeline(NamedTuple):
    """One fused pipeline region, ready to run."""

    #: ``fn(ctx, env) -> list`` — materializes the region's whole output
    fn: Callable[[Any, dict], list]
    #: the generated Python source (``Result.pipeline_source`` debug hook)
    source: str
    #: "rows" when the region root is a Project (emits result tuples, or
    #: ``(row, sort_keys)`` pairs under a Sort); "envs" when the region
    #: emits environment dicts for a consumer operator
    kind: str
    #: number of plan operators folded into the function
    ops: int
    #: True when every expression in the region compiled to a direct
    #: closure (no interpreter callbacks)
    full: bool


def fused_pipeline(op: Any, compiled: bool) -> Optional[FusedPipeline]:
    """The fused pipeline rooted at plan operator ``op``, or None when
    the subtree is not a fusable region.

    Cached on the plan node keyed by the execution's ``compiled`` flag
    (``compile_mode`` ablations each get a matching function: closure
    expressions in ``closure`` mode, interpreter callbacks in ``off``
    mode — the fusion ablation stays orthogonal to the expression one).
    The cache behaves exactly like the ``_compiled`` expression caches:
    popped by ``PlanOp.__getstate__`` so generated functions are never
    pickled, regenerated lazily on the next fused execution.
    """
    cache = op.__dict__.get("_fused")
    if cache is None:
        cache = {}
        op.__dict__["_fused"] = cache
    key = bool(compiled)
    if key not in cache:
        cache[key] = _build_fused(op, key)
    return cache[key]


def _build_fused(op: Any, compiled: bool) -> Optional[FusedPipeline]:
    """Generate, ``exec``, and wrap the fused function for the region
    rooted at ``op`` (None when ``op`` roots no fusable region).

    The generated function runs the scan loop, every filter conjunct,
    and the projection (targets, unique, sort keys) as straight-line
    Python over **one** shared environment dict mutated in place — no
    per-operator generator handoff, no per-row env copying on the
    Project-rooted path. Per-operator counters are accumulated in local
    integers and folded into the region's ``OpStats`` in a ``finally``
    (the region root's ``rows_out`` is counted by its consumer, like
    every batch producer). Semantics — evaluation order, 3VL, error
    messages — mirror the row-mode operators byte for byte.
    """
    from repro.excess import plan
    from repro.excess.evaluator import canonical_key

    chain = plan.fusable_ops(op)
    if chain is None:
        return None
    project = chain[0] if isinstance(chain[0], plan.Project) else None
    filters = [o for o in chain if isinstance(o, plan.Filter)]
    partition = next(
        (o for o in chain if isinstance(o, plan.ExchangePartition)), None
    )
    leaf = chain[-1]
    # execution order: scan, then the range partition (a member-list
    # slice, active only under a worker shard), then filters bottom-up,
    # then the projection
    filters_exec = list(reversed(filters))
    exec_chain: list = [leaf]
    if partition is not None:
        exec_chain.append(partition)
    exec_chain.extend(filters_exec)
    if project is not None:
        exec_chain.append(project)

    full = True
    ns: dict[str, Any] = {
        "NULL": NULL,
        "Ref": Ref,
        "ArrayInstance": ArrayInstance,
        "SetInstance": SetInstance,
        "TupleInstance": TupleInstance,
        "EvaluationError": EvaluationError,
        "canonical_key": canonical_key,
        "_veq": value_equal,
        "_truth": _truth,
        "_ooid": _object_oid,
    }

    def closure(node: BoundExpr) -> str:
        """Compile one expression into the namespace; returns its name."""
        nonlocal full
        entry = _compile(node) if compiled else _compile_fallback(node)
        full = full and entry.full
        name = f"_fn{len([k for k in ns if k.startswith('_fn')])}"
        ns[name] = entry.fn
        return name

    for position, region_op in enumerate(exec_chain):
        ns[f"_st{position}"] = region_op.stats

    lines: list[str] = []
    emit = lines.append
    for region_op in chain:
        emit(f"# {region_op.describe()}")
    emit("def _fused(ctx, env):")
    emit("    _out = []")
    emit("    _append = _out.append")
    # output counters for every non-root stage (the root's rows_out is
    # counted by the consumer pulling the batches)
    n_counters = len(exec_chain) - 1
    for index in range(n_counters):
        emit(f"    _n{index} = 0")
    emit("    try:")
    emit("        _db = ctx.db")
    emit("        _objects = ctx.objects")
    emit("        _deref = _objects.deref")
    emit("        _alive = _objects.is_live")

    # --- row source -------------------------------------------------------
    if isinstance(leaf, plan.SeqScan):
        ns["_set_name"] = leaf.set_name
        emit("        _collection = _db.named(_set_name).value")
        emit("        if isinstance(_collection, ArrayInstance):")
        emit("            _members = [")
        emit("                _s for _s in _collection")
        emit("                if _s is not NULL")
        emit("                and not (isinstance(_s, Ref) and not _alive(_s.oid))")
        emit("            ]")
        emit("        elif isinstance(_collection, SetInstance):")
        emit("            _members = _db.integrity.live_members(_collection)")
        emit("        else:")
        emit('            raise EvaluationError(f"{_set_name!r} is not a collection")')
        if partition is not None:
            # range partitioning: slice the member list before any row
            # work — the whole saving of a parallel scan (a passthrough
            # when no worker shard is active)
            emit("        _ex = ctx.exchange")
            emit("        if _ex is not None:")
            emit("            _members = list(_members)")
            emit("            _mn = len(_members)")
            emit(
                "            _members = _members[(_ex.part * _mn) // _ex.dop"
                " : ((_ex.part + 1) * _mn) // _ex.dop]"
            )
    else:  # IndexScan
        ns["_descriptor"] = leaf.descriptor
        key_name = closure(leaf.key_expr)
        emit(f"        _key = {key_name}(env, ctx)")
        emit("        if _key is NULL:")
        emit("            _members = []")
        emit("        else:")
        emit("            _index = _descriptor.index")
        if leaf.op == "=":
            emit("            _oids = _index.search(_key)")
        else:
            emit('            if not getattr(_index, "supports_range", False):')
            emit("                raise EvaluationError(")
            emit('                    "index does not support range scans"')
            emit("                )")
            if leaf.op in ("<", "<="):
                include = "True" if leaf.op == "<=" else "False"
                emit(
                    "            _pairs = _index.range_scan("
                    f"None, _key, include_high={include})"
                )
            else:
                include = "True" if leaf.op == ">=" else "False"
                emit(
                    "            _pairs = _index.range_scan("
                    f"_key, None, include_low={include})"
                )
            emit("            _oids = [_oid for _k, _oid in _pairs]")
        emit("            _members = [Ref(_o) for _o in _oids if _alive(_o)]")

    # --- fused loop -------------------------------------------------------
    var = leaf.var
    if len(exec_chain) == 1:
        # bare scan region: rows are retained by the consumer, so each
        # needs its own snapshot (no shared-row optimization possible)
        emit("        for _member in _members:")
        emit("            _row = dict(env)")
        emit(f"            _row[{var!r}] = _member")
        emit("            _append(_row)")
    else:
        # assemble the loop body first: expressions lower to inline
        # statements where possible (tracking whether any of them needs
        # the per-row _obj deref or the _row dict for a closure call)
        lowering = _ExprLowering(ns, var, compiled)
        pad = "            "
        body: list[str] = []
        uses_row = project is None  # env-emitting regions snapshot _row

        def value_stmts(node: BoundExpr) -> str:
            """Lower ``node`` into ``body``; returns the name holding
            its value (a register, or a closure-call result)."""
            nonlocal uses_row
            stmts, reg = lowering.lower(node, pad)
            if stmts is not None:
                body.extend(stmts)
                return reg
            uses_row = True
            name = closure(node)
            out = lowering.new_tmp()
            body.append(f"{pad}{out} = {name}(_row, ctx)")
            return out

        counter_base = 1 if partition is None else 2
        for findex, flt in enumerate(filters_exec):
            for predicate in flt.predicates:
                stmts, reg = lowering.lower(predicate, pad)
                if stmts is not None:
                    body.extend(stmts)
                    body.append(f"{pad}if {reg} is not True:")
                else:
                    uses_row = True
                    pred_name = closure(predicate)
                    body.append(f"{pad}if {pred_name}(_row, ctx) is not True:")
                body.append(f"{pad}    continue")
            if findex + counter_base < n_counters:
                body.append(f"{pad}_n{findex + counter_base} += 1")
        if project is None:
            # Filter-rooted region: emit surviving envs as snapshots
            body.append(f"{pad}_append(dict(_row))")
        else:
            # targets evaluate strictly left to right (each into its own
            # register) so mid-row errors fire in row-mode order
            target_regs = [
                value_stmts(t.expression) for t in project.targets
            ]
            if len(target_regs) == 1:
                body.append(f"{pad}_r = ({target_regs[0]},)")
            else:
                body.append(f"{pad}_r = ({', '.join(target_regs)})")
            if project.unique:
                body.append(f"{pad}_k = tuple(map(canonical_key, _r))")
                body.append(f"{pad}if _k in _seen:")
                body.append(f"{pad}    continue")
                body.append(f"{pad}_seen.add(_k)")
            if project.order:
                order_regs = [
                    value_stmts(expr) for expr, _desc in project.order
                ]
                if len(order_regs) == 1:
                    body.append(f"{pad}_append((_r, ({order_regs[0]},)))")
                else:
                    body.append(f"{pad}_append((_r, ({', '.join(order_regs)})))")
            else:
                body.append(f"{pad}_append(_r)")

        if project is not None and project.unique:
            emit("        _seen = set()")
        if uses_row:
            emit("        _row = dict(env)")
        emit("        for _member in _members:")
        if uses_row:
            emit(f"            _row[{var!r}] = _member")
        emit("            _n0 += 1")
        if partition is not None and n_counters > 1:
            # the partition's output equals the (already sliced) scan
            emit("            _n1 += 1")
        if lowering.uses_scan_object:
            # one dereference of the scan member shared by every inline
            # attribute read of this row
            emit("            _obj = _member")
            emit("            if isinstance(_obj, Ref):")
            emit("                _obj = _deref(_obj.oid)")
            emit("                if _obj is None:")
            emit("                    _obj = NULL")
            emit("            elif not isinstance(_obj, TupleInstance):")
            emit("                _obj = NULL")
        lines.extend(body)

    # --- loop epilogue: cooperative cancellation point --------------------
    # a fused region materializes its whole output in one call, so the
    # statement deadline is checked once here, after the loop — the
    # region's cancellation granularity (documented in DESIGN §14)
    emit("        _gv = ctx.governor")
    emit("        if _gv is not None:")
    emit('            _gv.check_timeout("fused")')

    # --- fold the per-operator counters ----------------------------------
    emit("    finally:")
    for position, region_op in enumerate(exec_chain):
        emit(f"        _st{position}.opens += 1")
        if position > 0:
            emit(f"        _st{position}.rows_in += _n{position - 1}")
        if position < n_counters:
            emit(f"        _st{position}.rows_out += _n{position}")
    emit("    return _out")

    source = "\n".join(lines)
    exec(compile(source, "<fused pipeline>", "exec"), ns)
    kind = "rows" if project is not None else "envs"
    return FusedPipeline(ns["_fused"], source, kind, len(chain), full)
