"""Expression compilation: bound expressions lowered to Python closures.

The evaluator's :meth:`~repro.excess.evaluator.Evaluator._eval` walks a
:class:`~repro.excess.binder.BoundExpr` tree per row, paying an
``isinstance`` dispatch chain plus operator-kind tests for every node on
every candidate row. This module removes that per-row interpretation:
:func:`compile_expr` translates a bound expression **once** into a tree
of nested Python closures — each node becomes a function ``fn(env, ctx)
-> value`` whose body contains only the work that node actually does,
with EXCESS null semantics (three-valued comparison and Kleene logic,
dangling references reading as null) baked in at compile time.

Compilation is total: every expression compiles. Node types whose
evaluation is entangled with per-statement evaluator state —
:class:`~repro.excess.binder.AdtCall` (registered ADT functions),
:class:`~repro.excess.binder.ExcessCall` (recursion-depth accounting,
dynamic dispatch), :class:`~repro.excess.binder.AggregateRef`
(precomputed partition tables), :class:`~repro.excess.binder.Membership`
(memoized semi-join key sets) — compile to a thin callback into the
existing interpreter, so mixed expressions still run their compilable
subtrees as closures. A compiled expression therefore never needs a
plan-level bailout; operators report ``closure`` when the whole tree
compiled directly and ``fallback`` when any callback remains.

Closures are deliberately stateless: they capture only the expression's
constants and sub-closures, and take the per-execution state (the shared
environment dict and the :class:`~repro.excess.plan.PlanContext`) as
arguments. That keeps compiled plans shareable across executions exactly
like the operator trees that carry them, and keeps them out of pickled
transaction snapshots (plan nodes drop their compiled caches on
``__getstate__`` and recompile lazily).

Semantics are pinned against the interpreter by a Hypothesis property
(``tests/property/test_query_equivalence.py``) and a per-figure parity
suite (``tests/integration/test_compile_parity.py``): for every query,
``compile_mode="closure"`` and ``compile_mode="off"`` must produce
identical rows, messages, and errors.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, NamedTuple, Optional

from repro.core.values import NULL, ArrayInstance, Ref, TupleInstance, value_equal
from repro.errors import EvaluationError
from repro.excess.binder import (
    AttrStep,
    Binary,
    BoundExpr,
    Const,
    IndexStepB,
    NamedValue,
    Unary,
    VarRef,
)

__all__ = ["CompiledExpr", "compile_expr", "compile_all", "compiled_label"]

#: a compiled expression: ``fn(env, ctx) -> value`` where ``env`` is the
#: shared environment dict and ``ctx`` the plan's execution context
CompiledFn = Callable[[dict, Any], Any]


class CompiledExpr(NamedTuple):
    """One compiled expression and how completely it compiled."""

    fn: CompiledFn
    #: True when the whole tree lowered to direct closures; False when
    #: any node fell back to an interpreter callback
    full: bool


# ---------------------------------------------------------------------------
# Shared runtime helpers (mirroring the evaluator's semantics exactly)
# ---------------------------------------------------------------------------


def _truth(value: Any) -> Optional[bool]:
    """Three-valued truth: NULL is unknown, non-booleans are errors."""
    if value is NULL:
        return None
    if isinstance(value, bool):
        return value
    raise EvaluationError(f"boolean operand expected, got {value!r}")


def _object_oid(value: Any) -> Optional[int]:
    if value is NULL:
        return None
    if isinstance(value, Ref):
        return value.oid
    if isinstance(value, TupleInstance) and value.oid is not None:
        return value.oid
    raise EvaluationError(
        f"'is'/'isnot' compares object references, got {value!r}"
    )


#: value comparators per operator; ``=``/``!=`` use structural equality
_COMPARATORS: dict[str, Callable[[Any, Any], Any]] = {
    "=": value_equal,
    "!=": lambda left, right: not value_equal(left, right),
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


# ---------------------------------------------------------------------------
# Node compilers
# ---------------------------------------------------------------------------


def _compile_fallback(node: BoundExpr) -> CompiledExpr:
    """A thin callback into the interpreter for nodes that need
    per-statement evaluator state (ADT/EXCESS calls, aggregates,
    memberships) — and, defensively, any unrecognized shape."""

    def run(env: dict, ctx: Any, _node: BoundExpr = node) -> Any:
        return ctx.evaluator._eval(_node, env, ctx.tables)

    return CompiledExpr(run, False)


def _compile_const(node: Const) -> CompiledExpr:
    value = node.value

    def run(env: dict, ctx: Any) -> Any:
        return value

    return CompiledExpr(run, True)


def _compile_var(node: VarRef) -> CompiledExpr:
    name = node.name

    def run(env: dict, ctx: Any) -> Any:
        value = env.get(name, NULL)
        if isinstance(value, Ref) and not ctx.objects.is_live(value.oid):
            return NULL  # dangling reference reads as null (GEM)
        return value

    return CompiledExpr(run, True)


def _compile_named(node: NamedValue) -> CompiledExpr:
    name = node.name

    def run(env: dict, ctx: Any) -> Any:
        value = ctx.db.named(name).value
        if isinstance(value, Ref) and not ctx.objects.is_live(value.oid):
            return NULL
        return value

    return CompiledExpr(run, True)


def _compile_attr(node: AttrStep) -> CompiledExpr:
    base_fn, base_full = _compile(node.base)
    attribute = node.attribute

    def run(env: dict, ctx: Any) -> Any:
        base = base_fn(env, ctx)
        if isinstance(base, Ref):
            base = ctx.objects.deref(base.oid)
            if base is None:
                return NULL
        elif not isinstance(base, TupleInstance):
            return NULL  # attribute of null (or a non-object) is null
        value = base.get(attribute)
        if isinstance(value, Ref) and not ctx.objects.is_live(value.oid):
            return NULL
        return value

    return CompiledExpr(run, base_full)


def _compile_index(node: IndexStepB) -> CompiledExpr:
    base_fn, base_full = _compile(node.base)
    index_fn, index_full = _compile(node.index)

    def run(env: dict, ctx: Any) -> Any:
        base = base_fn(env, ctx)
        index = index_fn(env, ctx)
        if base is NULL or index is NULL:
            return NULL
        if not isinstance(base, ArrayInstance):
            raise EvaluationError(f"indexing a non-array value {base!r}")
        if not isinstance(index, int) or isinstance(index, bool):
            raise EvaluationError("array index must be an integer")
        if index < 1 or index > len(base):
            return NULL  # reads beyond the end are null; writes error
        value = base.get(index)
        if isinstance(value, Ref) and not ctx.objects.is_live(value.oid):
            return NULL
        return value

    return CompiledExpr(run, base_full and index_full)


def _compile_bool(node: Binary) -> CompiledExpr:
    """Kleene three-valued and/or; short-circuits exactly like the
    interpreter (the right operand is not evaluated when the left side
    already decides)."""
    left_fn, left_full = _compile(node.left)
    right_fn, right_full = _compile(node.right)
    full = left_full and right_full

    if node.op == "and":

        def run(env: dict, ctx: Any) -> Any:
            left = _truth(left_fn(env, ctx))
            if left is False:
                return False
            right = _truth(right_fn(env, ctx))
            if right is False:
                return False
            if left is None or right is None:
                return NULL
            return True

        return CompiledExpr(run, full)

    if node.op == "or":

        def run(env: dict, ctx: Any) -> Any:
            left = _truth(left_fn(env, ctx))
            if left is True:
                return True
            right = _truth(right_fn(env, ctx))
            if right is True:
                return True
            if left is None or right is None:
                return NULL
            return False

        return CompiledExpr(run, full)

    return _compile_fallback(node)


def _compile_object_equality(node: Binary) -> CompiledExpr:
    left_fn, left_full = _compile(node.left)
    right_fn, right_full = _compile(node.right)
    negated = node.op != "is"

    def run(env: dict, ctx: Any) -> Any:
        left = left_fn(env, ctx)
        right = right_fn(env, ctx)
        objects = ctx.objects
        if isinstance(left, Ref) and not objects.is_live(left.oid):
            left = NULL
        if isinstance(right, Ref) and not objects.is_live(right.oid):
            right = NULL
        if left is NULL or right is NULL:
            # `X is null` tests for null-ness; two nulls are the same
            # (both denote no object), a null and anything else are not.
            same = left is NULL and right is NULL
        else:
            same = _object_oid(left) == _object_oid(right)
        return not same if negated else same

    return CompiledExpr(run, left_full and right_full)


def _compile_compare(node: Binary) -> CompiledExpr:
    compare = _COMPARATORS.get(node.op)
    if compare is None:
        return _compile_fallback(node)
    left_fn, left_full = _compile(node.left)
    right_fn, right_full = _compile(node.right)
    full = left_full and right_full

    if node.enum_labels is not None:
        # bake the declaration-order ordinals in at compile time
        labels = node.enum_labels
        ordinals = {label: position for position, label in enumerate(labels)}

        def run(env: dict, ctx: Any) -> Any:
            left = left_fn(env, ctx)
            right = right_fn(env, ctx)
            if left is NULL or right is NULL:
                return NULL
            if isinstance(left, str):
                try:
                    left = ordinals[left]
                except KeyError:
                    raise EvaluationError(
                        f"{left!r} is not a label of the enumeration"
                    ) from None
            if isinstance(right, str):
                try:
                    right = ordinals[right]
                except KeyError:
                    raise EvaluationError(
                        f"{right!r} is not a label of the enumeration"
                    ) from None
            try:
                return compare(left, right)
            except TypeError as exc:
                raise EvaluationError(f"incomparable values: {exc}") from exc

        return CompiledExpr(run, full)

    def run(env: dict, ctx: Any) -> Any:
        left = left_fn(env, ctx)
        right = right_fn(env, ctx)
        if left is NULL or right is NULL:
            return NULL
        try:
            return compare(left, right)
        except TypeError as exc:
            raise EvaluationError(f"incomparable values: {exc}") from exc

    return CompiledExpr(run, full)


def _compile_concat(node: Binary) -> CompiledExpr:
    left_fn, left_full = _compile(node.left)
    right_fn, right_full = _compile(node.right)

    def run(env: dict, ctx: Any) -> Any:
        left = left_fn(env, ctx)
        right = right_fn(env, ctx)
        if left is NULL or right is NULL:
            return NULL
        return str(left) + str(right)

    return CompiledExpr(run, left_full and right_full)


def _compile_arith(node: Binary) -> CompiledExpr:
    left_fn, left_full = _compile(node.left)
    right_fn, right_full = _compile(node.right)
    full = left_full and right_full
    op = node.op

    if op == "+":

        def run(env: dict, ctx: Any) -> Any:
            left = left_fn(env, ctx)
            right = right_fn(env, ctx)
            if left is NULL or right is NULL:
                return NULL
            try:
                return left + right
            except TypeError as exc:
                raise EvaluationError(
                    f"bad arithmetic operands: {exc}"
                ) from exc

    elif op == "-":

        def run(env: dict, ctx: Any) -> Any:
            left = left_fn(env, ctx)
            right = right_fn(env, ctx)
            if left is NULL or right is NULL:
                return NULL
            try:
                return left - right
            except TypeError as exc:
                raise EvaluationError(
                    f"bad arithmetic operands: {exc}"
                ) from exc

    elif op == "*":

        def run(env: dict, ctx: Any) -> Any:
            left = left_fn(env, ctx)
            right = right_fn(env, ctx)
            if left is NULL or right is NULL:
                return NULL
            try:
                return left * right
            except TypeError as exc:
                raise EvaluationError(
                    f"bad arithmetic operands: {exc}"
                ) from exc

    elif op == "/":

        def run(env: dict, ctx: Any) -> Any:
            left = left_fn(env, ctx)
            right = right_fn(env, ctx)
            if left is NULL or right is NULL:
                return NULL
            try:
                if right == 0:
                    raise EvaluationError("division by zero")
                if isinstance(left, int) and isinstance(right, int):
                    return left // right if left % right == 0 else left / right
                return left / right
            except TypeError as exc:
                raise EvaluationError(
                    f"bad arithmetic operands: {exc}"
                ) from exc

    elif op == "%":

        def run(env: dict, ctx: Any) -> Any:
            left = left_fn(env, ctx)
            right = right_fn(env, ctx)
            if left is NULL or right is NULL:
                return NULL
            try:
                if right == 0:
                    raise EvaluationError("modulo by zero")
                return left % right
            except TypeError as exc:
                raise EvaluationError(
                    f"bad arithmetic operands: {exc}"
                ) from exc

    else:
        return _compile_fallback(node)

    return CompiledExpr(run, full)


def _compile_binary(node: Binary) -> CompiledExpr:
    if node.kind == "bool":
        return _compile_bool(node)
    if node.kind == "object":
        return _compile_object_equality(node)
    if node.kind == "compare":
        return _compile_compare(node)
    if node.kind == "concat":
        return _compile_concat(node)
    if node.kind == "arith":
        return _compile_arith(node)
    return _compile_fallback(node)


def _compile_unary(node: Unary) -> CompiledExpr:
    operand_fn, operand_full = _compile(node.operand)

    if node.op == "not":

        def run(env: dict, ctx: Any) -> Any:
            truth = _truth(operand_fn(env, ctx))
            if truth is None:
                return NULL
            return not truth

        return CompiledExpr(run, operand_full)

    if node.op == "-":

        def run(env: dict, ctx: Any) -> Any:
            value = operand_fn(env, ctx)
            if value is NULL:
                return NULL
            try:
                return -value
            except TypeError as exc:
                raise EvaluationError(f"cannot negate {value!r}") from exc

        return CompiledExpr(run, operand_full)

    return _compile_fallback(node)


#: compile-time dispatch: exact node class → handler (AdtCall, ExcessCall,
#: AggregateRef, Membership, and anything unknown go through the fallback)
_HANDLERS: dict[type, Callable[[Any], CompiledExpr]] = {
    Const: _compile_const,
    VarRef: _compile_var,
    NamedValue: _compile_named,
    AttrStep: _compile_attr,
    IndexStepB: _compile_index,
    Binary: _compile_binary,
    Unary: _compile_unary,
}


def _compile(node: BoundExpr) -> CompiledExpr:
    handler = _HANDLERS.get(type(node))
    if handler is None:
        return _compile_fallback(node)
    return handler(node)


# ---------------------------------------------------------------------------
# Public interface
# ---------------------------------------------------------------------------


def compile_expr(node: BoundExpr) -> CompiledExpr:
    """Compile one bound expression into a closure.

    Always succeeds: uncompilable nodes become interpreter callbacks
    inside an otherwise-compiled tree (``full=False``).
    """
    return _compile(node)


def compile_all(nodes: list[BoundExpr]) -> tuple[list[CompiledFn], bool]:
    """Compile a list of expressions; returns the closures plus whether
    every tree compiled fully (for the ``compiled=`` plan annotation)."""
    compiled = [_compile(node) for node in nodes]
    return [entry.fn for entry in compiled], all(
        entry.full for entry in compiled
    )


def compiled_label(full: bool) -> str:
    """The per-operator EXPLAIN annotation for a compiled expression set."""
    return "closure" if full else "fallback"
