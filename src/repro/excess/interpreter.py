"""The EXCESS statement interpreter.

Drives whole statements end to end: tokenize with the catalog's operator
symbols, parse with the catalog's operator precedences, dispatch DDL
directly against the catalog, and run DML through binder → optimizer →
evaluator. The interpreter holds the session's QUEL-style ``range of``
declarations (they persist until redefined) and enforces authorization
when the database has it enabled.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.authz.grants import Privilege
from repro.core.database import Database
from repro.core.schema import Rename, SchemaType
from repro.core.types import (
    ArrayType,
    BOOLEAN,
    ComponentSpec,
    CharType,
    EnumType,
    FLOAT4,
    FLOAT8,
    INT1,
    INT2,
    INT4,
    IntegerType,
    Semantics,
    SetType,
    TEXT,
    TupleType,
    Type,
)
from repro.errors import (
    AuthorizationError,
    BindError,
    ExcessError,
    FunctionError,
    ProcedureError,
    SchemaError,
    SerializationError,
)
from repro.excess import ast_nodes as ast
from repro.excess.binder import (
    Binder,
    BoundQuery,
    NamedSetSource,
    NamedValue,
    Scope,
)
from repro.excess.evaluator import Evaluator
from repro.excess.functions import (
    ExcessFunction,
    FunctionParam,
    bind_function_body,
)
from repro.excess.optimizer import Optimizer
from repro.excess.parser import OperatorTable, parse_script
from repro.excess.plan import pipeline_sources, render_plan, snapshot_stats
from repro.excess.procedures import Procedure, bind_procedure_body, run_procedure
from repro.excess.result import Result

__all__ = ["Interpreter", "PlanCache"]


@dataclass
class _PreparedPlan:
    """A parsed, bound, and optimized statement ready to execute.

    Skipping straight to evaluation is what the plan cache buys: the
    lexer, parser, binder, and optimizer only run on a cache miss.
    """

    #: "retrieve" | "append" | "delete" | "replace" | "set" | "explain"
    kind: str
    #: the bound statement (for "explain": the bound+optimized query)
    bound: Any
    report: Any
    #: pre-rendered EXPLAIN rows (kind == "explain" only)
    explain_rows: list = field(default_factory=list)
    #: root of the lowered physical operator tree (cached with the plan)
    plan_root: Any = None


class PlanCache:
    """A small LRU of prepared plans keyed by
    ``(statement text, user, catalog epoch, optimizer flags)``.

    Epoch-based invalidation: every DDL statement, index create/drop,
    grant change, and session range re-declaration bumps the catalog
    epoch, so entries prepared against older catalog states simply never
    match again — stale plans are never served, no explicit flushing
    needed (dead entries age out of the LRU).
    """

    def __init__(self, capacity: int = 128):
        self.capacity = capacity
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[tuple, _PreparedPlan]" = OrderedDict()

    def get(self, key: tuple) -> Optional[_PreparedPlan]:
        if not self.enabled:
            return None
        plan = self._entries.get(key)
        if plan is None:
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return plan

    def put(self, key: tuple, plan: _PreparedPlan) -> None:
        if not self.enabled:
            return
        self.misses += 1
        self._entries[key] = plan
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
        }

_BASE_TYPES: dict[str, Type] = {
    "int1": INT1,
    "int2": INT2,
    "int4": INT4,
    "int8": IntegerType(8),
    "float4": FLOAT4,
    "float8": FLOAT8,
    "boolean": BOOLEAN,
    "text": TEXT,
}


class Interpreter:
    """Executes EXCESS statements against one database."""

    #: single-statement scripts of these types are plan-cacheable
    _CACHEABLE = (
        ast.Retrieve,
        ast.Append,
        ast.Delete,
        ast.Replace,
        ast.SetStatement,
        ast.Explain,
    )

    #: statement types whose successful execution mutates durable state
    #: and therefore gets written to the WAL of a durable database.
    #: Queries (Retrieve, Explain, SetOperation) and the transaction
    #: brackets (Begin/Commit/Abort) are deliberately absent: commits
    #: flush the buffered statements as one record, aborts drop them.
    #: RangeDecl is logged because later logged statements may only bind
    #: under the session's range declarations.
    _DURABLE_TYPES = (
        ast.DefineType,
        ast.CreateNamed,
        ast.DestroyNamed,
        ast.CreateIndex,
        ast.DropIndex,
        ast.RangeDecl,
        ast.GrantStatement,
        ast.RevokeStatement,
        ast.CreateUser,
        ast.CreateGroup,
        ast.AddToGroup,
        ast.DefineFunction,
        ast.DefineProcedure,
        ast.ExecuteProcedure,
        ast.AlterType,
        ast.Analyze,
        ast.Append,
        ast.Delete,
        ast.Replace,
        ast.SetStatement,
    )

    #: prepared-plan kinds that mutate (the fast path's analogue)
    _DURABLE_KINDS = frozenset({"append", "delete", "replace", "set"})

    def __init__(self, database: Database, optimize: bool = True):
        self.db = database
        self.optimize = optimize
        #: whether the optimizer may rewrite equi-joins to hash joins
        self.hash_joins = True
        #: whether binding order comes from the cost-based search
        #: (False forces the older heuristic ranks, for ablation)
        self.cost_based = True
        #: "closure" executes compiled expression closures on plan hot
        #: paths; "off" forces the recursive interpreter (ablation)
        self.compile_mode = "closure"
        #: "fused" runs generated whole-pipeline functions where plan
        #: regions allow (falling back to batches elsewhere), "batch"
        #: exchanges fixed-size row batches operator to operator, "row"
        #: keeps the tuple-at-a-time Volcano path (ablation)
        self.exec_mode = "fused"
        #: target rows per exchanged batch (batch/fused modes)
        self.batch_size = 1024
        #: "process" lowers eligible retrieve pipelines with exchange
        #: operators and runs them on a multi-core worker pool; "off"
        #: keeps every plan serial — byte-identical to the pre-parallel
        #: lowering (ablation)
        self.parallel_mode = "process"
        #: worker-process budget for parallel plans (the chosen degree
        #: of parallelism never exceeds this)
        self.workers = max(1, os.cpu_count() or 1)
        #: per-statement wall-clock budget in milliseconds, enforced
        #: cooperatively at batch boundaries (0 = no timeout)
        self.statement_timeout_ms = 0
        #: bytes the pipeline-breaking operators (hash builds, sorts,
        #: aggregates) may hold in memory before spilling (0 = unbounded)
        self.memory_budget = 0
        #: lazily created worker-pool dispatcher, shared by statements
        self._parallel_runner: Any = None
        #: LRU of prepared plans; entries self-invalidate via the epoch key
        self.plan_cache = PlanCache()
        #: the session whose statement is currently executing (set by
        #: :meth:`execute`; statements run one at a time, so a plain
        #: attribute suffices); ``None`` resolves to the default session
        self._current_session: Any = None

    # -- sessions ------------------------------------------------------------------

    def _session(self) -> Any:
        """The session the current statement runs in."""
        session = self._current_session
        return session if session is not None else self.db.default_session

    @property
    def session_ranges(self) -> dict[str, ast.RangeDecl]:
        """The active session's ``range of`` declarations. Outside a
        connected session this is the default session's dict — shared
        across :meth:`Database.session` users, as the seed behaved."""
        return self._session().ranges

    def _flag(self, name: str) -> Any:
        """Resolve an execution flag: the active session's override
        when one is set, the interpreter-global attribute otherwise."""
        session = self._current_session
        if session is not None and name in session.overrides:
            return session.overrides[name]
        return getattr(self, name)

    # -- validated flags -----------------------------------------------------------

    @property
    def batch_size(self) -> int:
        """Target rows per exchanged batch (batch/fused modes)."""
        return self._batch_size

    @batch_size.setter
    def batch_size(self, value: Any) -> None:
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise ExcessError(
                f"batch_size must be a positive integer, got {value!r}"
            )
        self._batch_size = value

    @property
    def parallel_mode(self) -> str:
        """Parallel execution mode: "process" or "off"."""
        return self._parallel_mode

    @parallel_mode.setter
    def parallel_mode(self, value: Any) -> None:
        if value not in ("process", "off"):
            raise ExcessError(
                f"parallel_mode must be 'process' or 'off', got {value!r}"
            )
        self._parallel_mode = value

    @property
    def workers(self) -> int:
        """Worker-process budget for parallel plans."""
        return self._workers

    @workers.setter
    def workers(self, value: Any) -> None:
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise ExcessError(
                f"workers must be a positive integer, got {value!r}"
            )
        self._workers = value

    @property
    def statement_timeout_ms(self) -> int:
        """Per-statement deadline in milliseconds (0 = no timeout)."""
        return self._statement_timeout_ms

    @statement_timeout_ms.setter
    def statement_timeout_ms(self, value: Any) -> None:
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ExcessError(
                f"statement_timeout_ms must be a non-negative integer, "
                f"got {value!r}"
            )
        self._statement_timeout_ms = value

    @property
    def memory_budget(self) -> int:
        """Pipeline-breaker memory budget in bytes (0 = unbounded)."""
        return self._memory_budget

    @memory_budget.setter
    def memory_budget(self, value: Any) -> None:
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ExcessError(
                f"memory_budget must be a non-negative integer, "
                f"got {value!r}"
            )
        self._memory_budget = value

    # -- parallel execution ---------------------------------------------------------

    def _parallel(self) -> Any:
        """The interpreter's worker-pool dispatcher (created on first
        parallel-eligible execution; pool processes start lazily)."""
        runner = self._parallel_runner
        if runner is None:
            from repro.excess.parallel import ParallelRunner

            runner = ParallelRunner(self.db)
            self._parallel_runner = runner
        runner.workers = self._flag("workers")
        return runner

    def shutdown_parallel(self) -> None:
        """Stop the worker pool, if one is running (tests, benches, and
        embedders that want deterministic teardown; pools restart on the
        next parallel execution)."""
        runner = self._parallel_runner
        if runner is not None:
            runner.stop()

    # -- operator table ------------------------------------------------------------

    def _operator_table(self) -> OperatorTable:
        table = OperatorTable()
        adts = self.db.catalog.adts
        for symbol in adts.operator_symbols():
            info = adts.operator_parse_info(symbol)
            if info is not None:
                table.add_operator(
                    symbol, info.precedence, info.associativity, info.fixity
                )
        return table

    # -- entry point -----------------------------------------------------------------

    def _cache_key(self, text: str, user: str, session: Any = None) -> tuple:
        if session is None:
            flag = lambda name: getattr(self, name)  # noqa: E731
            token: tuple = ()
        else:
            flag = session.flag
            token = session.plan_token()
        return (
            text,
            user,
            self.db.catalog.epoch,
            flag("optimize"),
            flag("hash_joins"),
            flag("cost_based"),
            flag("compile_mode"),
            flag("exec_mode"),
            flag("parallel_mode"),
            flag("workers"),
        ) + token

    #: statement types that never mutate durable state (no implicit
    #: transaction needed even when other sessions' snapshots are open)
    _READ_ONLY_TYPES = (ast.Retrieve, ast.Explain, ast.SetOperation)
    #: transaction brackets manage transactions themselves
    _CONTROL_TYPES = (
        ast.BeginTransaction, ast.CommitTransaction, ast.AbortTransaction
    )

    @staticmethod
    def _statement_kind(statement: ast.Statement) -> str:
        if isinstance(statement, Interpreter._CONTROL_TYPES):
            return "control"
        if isinstance(statement, Interpreter._READ_ONLY_TYPES):
            return "read"
        return "write"

    def execute(self, text: str, user: str = "dba", session: Any = None) -> Result:
        """Run one or more statements; returns the last statement's result.

        ``session`` scopes the execution: its range declarations, flag
        overrides, and (under MVCC) its transaction snapshot. Without
        one, the shared default session is used — the seed's
        single-session semantics. Single-statement query scripts go
        through the plan cache: on a hit the lexer/parser/binder/
        optimizer are skipped entirely and the prepared plan is
        re-executed (authorization is still checked per execution).
        """
        if session is None:
            session = self.db.default_session
        previous = self._current_session
        self._current_session = session
        try:
            return self._execute_in_session(text, user, session)
        finally:
            self._current_session = previous

    def _execute_in_session(self, text: str, user: str, session: Any) -> Result:
        transactions = self.db.transactions
        txn = session.txn
        if txn is not None and txn.doomed is not None:
            # a doomed transaction may only abort: its parked workspace
            # is stale against newer commits and must never resume
            script = parse_script(text, self._operator_table())
            statements = script.statements
            if not statements or not all(
                isinstance(s, ast.AbortTransaction) for s in statements
            ):
                raise SerializationError(
                    f"transaction {txn.txn_id} aborted: {txn.doomed} "
                    "(run 'abort' to continue)"
                )
            result = Result(kind="empty")
            for statement in statements:
                with transactions.statement(session, kind="control"):
                    result = self.execute_statement(statement, user)
            return result
        key = self._cache_key(text, user, session)
        plan = self.plan_cache.get(key)
        if plan is not None:
            kind = "read" if plan.kind in ("retrieve", "explain") else "write"
            with transactions.statement(session, kind=kind):
                result = self._execute_prepared(plan, user, cache="hit")
                if plan.kind in self._DURABLE_KINDS:
                    self._log_durable(text, user)
            return result
        table = self._operator_table()
        script = parse_script(text, table)
        if not script.statements:
            return Result(kind="empty", message="no statements")
        statements = script.statements
        if len(statements) == 1 and isinstance(statements[0], self._CACHEABLE):
            statement = statements[0]
            with transactions.statement(session, kind=self._statement_kind(statement)):
                plan = self._prepare(statement)
                self.plan_cache.put(key, plan)
                cache = "miss" if self.plan_cache.enabled else "off"
                result = self._execute_prepared(plan, user, cache=cache)
                if plan.kind in self._DURABLE_KINDS:
                    self._log_durable(text, user)
            return result
        result = Result(kind="empty")
        for statement in statements:
            with transactions.statement(session, kind=self._statement_kind(statement)):
                result = self.execute_statement(statement, user)
        return result

    def execute_statement(self, statement: ast.Statement, user: str) -> Result:
        """Dispatch one parsed statement."""
        handler = self._HANDLERS.get(type(statement))
        if handler is None:
            raise ExcessError(
                f"no handler for statement {type(statement).__name__}"
            )
        result = handler(self, statement, user)
        if isinstance(statement, self._DURABLE_TYPES):
            from repro.excess.printer import unparse

            self._log_durable(unparse(statement), user)
        return result

    def _log_durable(self, text: str, user: str) -> None:
        """Append a successfully executed mutating statement to the WAL
        of a durable database (buffered inside explicit — and implicit
        MVCC — transactions; the durability manager flushes the
        session's buffer as one record at commit). The statement is
        only acknowledged to the caller *after* this returns, so every
        acknowledged auto-commit is on disk."""
        durability = self.db.durability
        if durability is not None:
            durability.log_statement(text, user, session=self._session())

    # -- type expression builder ---------------------------------------------------------

    def build_type(
        self, expr: ast.TypeExpr, self_type: Optional[SchemaType] = None
    ) -> Type:
        """Resolve a type expression against the catalog.

        ``self_type`` supports self-referential definitions like
        ``Person.kids: {own ref Person}``.
        """
        if isinstance(expr, ast.BaseTypeExpr):
            if expr.name == "char":
                return CharType(expr.param or 1)
            return _BASE_TYPES[expr.name]
        if isinstance(expr, ast.EnumTypeExpr):
            return EnumType(tuple(expr.labels))
        if isinstance(expr, ast.NamedTypeExpr):
            name = expr.name
            if self_type is not None and name == self_type.name:
                return self_type
            if self.db.catalog.has_type(name):
                return self.db.catalog.schema_type(name)
            if self.db.catalog.adts.has_adt(name):
                return self.db.catalog.adts.adt(name)
            raise SchemaError(f"unknown type {name!r}")
        if isinstance(expr, ast.SetTypeExpr):
            return SetType(self.build_component(expr.element, self_type))
        if isinstance(expr, ast.ArrayTypeExpr):
            return ArrayType(
                self.build_component(expr.element, self_type), length=expr.length
            )
        if isinstance(expr, ast.TupleTypeExpr):
            return TupleType(
                [
                    (decl.name, self.build_component(decl.component, self_type))
                    for decl in expr.attributes
                ]
            )
        raise SchemaError(f"cannot build type from {type(expr).__name__}")

    def build_component(
        self, expr: ast.ComponentExpr, self_type: Optional[SchemaType] = None
    ) -> ComponentSpec:
        """Resolve a component (semantics + type) expression."""
        semantics = {
            "own": Semantics.OWN,
            "ref": Semantics.REF,
            "own ref": Semantics.OWN_REF,
        }[expr.semantics]
        return ComponentSpec(semantics, self.build_type(expr.type, self_type))

    # -- DDL handlers ------------------------------------------------------------------------

    def _do_define_type(self, statement: ast.DefineType, user: str) -> Result:
        # Two-phase construction so a type may reference itself (Person's
        # kids are Persons): allocate the SchemaType shell first, resolve
        # attribute types (self-references point at the shell), then run
        # the real initializer into the shell.
        shell = SchemaType.__new__(SchemaType)
        shell.name = statement.name  # visible to build_type during resolution
        attributes = [
            (decl.name, self.build_component(decl.component, self_type=shell))
            for decl in statement.attributes
        ]
        parents = [self.db.catalog.schema_type(p) for p in statement.parents]
        renames = [
            Rename(parent=r.parent, attribute=r.attribute, new_name=r.new_name)
            for r in statement.renames
        ]
        SchemaType.__init__(
            shell, statement.name, attributes, parents=parents, renames=renames
        )
        self.db.catalog.register_type(shell)
        return Result(
            kind="define", message=f"defined type {statement.name}"
        )

    def _do_create_named(self, statement: ast.CreateNamed, user: str) -> Result:
        spec = self.build_component(statement.component)
        key = tuple(statement.key) if statement.key else None
        self.db.create_named(statement.name, spec, key=key, user=user)
        return Result(kind="create", message=f"created {statement.name}")

    def _do_destroy(self, statement: ast.DestroyNamed, user: str) -> Result:
        self._check(user, Privilege.DELETE, statement.name)
        deleted = self.db.destroy_named(statement.name)
        return Result(
            kind="destroy",
            count=deleted,
            message=f"destroyed {statement.name} ({deleted} object(s) deleted)",
        )

    def _do_create_index(self, statement: ast.CreateIndex, user: str) -> Result:
        self._check(user, Privilege.DEFINE, statement.set_name)
        self.db.create_index(statement.set_name, statement.attribute, statement.kind)
        return Result(
            kind="index",
            message=(
                f"created {statement.kind} index on "
                f"{statement.set_name}.{statement.attribute}"
            ),
        )

    def _do_drop_index(self, statement: ast.DropIndex, user: str) -> Result:
        self._check(user, Privilege.DEFINE, statement.set_name)
        self.db.catalog.indexes.drop(
            statement.set_name, statement.attribute, statement.kind
        )
        return Result(
            kind="index",
            message=(
                f"dropped {statement.kind} index on "
                f"{statement.set_name}.{statement.attribute}"
            ),
        )

    def _do_range(self, statement: ast.RangeDecl, user: str) -> Result:
        # Validate the source binds before remembering the declaration.
        binder = self._binder()
        scope = Scope()
        query = BoundQuery()
        binder._bind_range_source(statement.source, scope, query)
        session = self._session()
        session.ranges[statement.variable] = statement
        session.ranges_epoch += 1
        # plans bound under the previous declaration of this variable are stale
        self.db.catalog.bump_epoch()
        kind = "universal range" if statement.universal else "range"
        return Result(
            kind="range",
            message=f"declared {kind} variable {statement.variable}",
        )

    def _do_grant(self, statement: ast.GrantStatement, user: str) -> Result:
        privilege = Privilege.parse(statement.privilege)
        if not self.db.authz.directory.has_group(statement.principal):
            self.db.authz.directory.add_user(statement.principal)
        self.db.authz.grant(
            statement.principal, privilege, statement.object_name, grantor=user
        )
        self.db.catalog.bump_epoch()
        return Result(
            kind="grant",
            message=(
                f"granted {privilege.value} on {statement.object_name} to "
                f"{statement.principal}"
            ),
        )

    def _do_revoke(self, statement: ast.RevokeStatement, user: str) -> Result:
        privilege = Privilege.parse(statement.privilege)
        revoked = self.db.authz.revoke(
            statement.principal, privilege, statement.object_name, revoker=user
        )
        self.db.catalog.bump_epoch()
        return Result(
            kind="revoke",
            message=(
                f"revoked {privilege.value} on {statement.object_name} from "
                f"{statement.principal}"
                if revoked
                else "no matching grant"
            ),
        )

    def _do_create_user(self, statement: ast.CreateUser, user: str) -> Result:
        self.db.authz.directory.add_user(statement.name)
        return Result(kind="user", message=f"created user {statement.name}")

    def _do_create_group(self, statement: ast.CreateGroup, user: str) -> Result:
        self.db.authz.directory.add_group(statement.name)
        return Result(kind="group", message=f"created group {statement.name}")

    def _do_add_to_group(self, statement: ast.AddToGroup, user: str) -> Result:
        self.db.authz.directory.add_member(statement.group, statement.member)
        self.db.catalog.bump_epoch()
        return Result(
            kind="group",
            message=f"added {statement.member} to group {statement.group}",
        )

    # -- functions and procedures -----------------------------------------------------------------

    def _build_params(self, decls: list[ast.ParamDecl]) -> list[FunctionParam]:
        params: list[FunctionParam] = []
        for decl in decls:
            if decl.type_name is not None:
                schema_type = self.db.catalog.schema_type(decl.type_name)
                spec = ComponentSpec(Semantics.REF, schema_type)
            else:
                assert decl.component is not None
                spec = self.build_component(decl.component)
            params.append(FunctionParam(name=decl.name, spec=spec))
        return params

    def _do_define_function(self, statement: ast.DefineFunction, user: str) -> Result:
        params = self._build_params(statement.params)
        if not params or not params[0].is_object or not isinstance(
            params[0].spec.type, SchemaType
        ):
            raise FunctionError(
                "the first parameter of an EXCESS function must be "
                "'<var> in <SchemaType>'"
            )
        returns = self.build_component(statement.returns)
        function = ExcessFunction(
            name=statement.name,
            type_name=params[0].spec.type.name,
            params=params,
            returns=returns,
            body=statement.body,
            fixed=statement.fixed,
            replace=statement.replace,
        )
        # Register before validating the body so recursive functions can
        # reference themselves; roll back if the body fails to bind.
        self.db.catalog.define_function(function)
        try:
            bind_function_body(function, self._binder())
        except Exception:
            self.db.catalog.undefine_function(function.type_name, function.name)
            raise
        self.db.authz.record_owner(statement.name, user)
        return Result(
            kind="define",
            message=(
                f"defined function {statement.name} on {function.type_name}"
            ),
        )

    def _do_define_procedure(
        self, statement: ast.DefineProcedure, user: str
    ) -> Result:
        params = self._build_params(statement.params)
        procedure = Procedure(
            name=statement.name, params=params, body=statement.body, definer=user
        )
        bind_procedure_body(procedure, self._binder())  # validate now
        self.db.catalog.define_procedure(procedure)
        self.db.authz.record_owner(statement.name, user)
        return Result(
            kind="define", message=f"defined procedure {statement.name}"
        )

    def _do_execute(self, statement: ast.ExecuteProcedure, user: str) -> Result:
        procedure = self.db.catalog.procedure(statement.name)
        self._check(user, Privilege.EXECUTE, statement.name)
        if len(statement.args) != len(procedure.params):
            raise ProcedureError(
                f"procedure {statement.name!r} takes {len(procedure.params)} "
                f"arguments, got {len(statement.args)}"
            )
        binder = self._binder()
        scope, query = binder._new_query_scope(statement.from_clauses, None)
        bound_args = [
            binder.bind_expression(arg, scope, query) for arg in statement.args
        ]
        if statement.where is not None:
            query.where = binder._bind_predicate(statement.where, scope, query)
        binder._finalize(scope, query)
        Optimizer(
            self.db.catalog,
            enabled=self._flag("optimize"),
            hash_joins=self._flag("hash_joins"),
            cost_based=self._flag("cost_based"),
            compile_mode=self._flag("compile_mode"),
            exec_mode=self._flag("exec_mode"),
        ).optimize(query)
        evaluator = Evaluator(
            self.db,
            user=procedure.definer,
            compile_mode=self._flag("compile_mode"),
            exec_mode=self._flag("exec_mode"),
            batch_size=self._flag("batch_size"),
            session=self._session(),
            statement_timeout_ms=self._flag("statement_timeout_ms"),
            memory_budget=self._flag("memory_budget"),
        )
        tables: dict = {}
        bindings: list[dict] = []
        evaluate = (
            evaluator._eval_compiled
            if evaluator.compile_mode == "closure"
            else evaluator._eval
        )
        for env in evaluator.env_stream(query, {}, tables):
            values = [evaluate(a, env, tables) for a in bound_args]
            bindings.append(
                {
                    f"@{param.name}": value
                    for param, value in zip(procedure.params, values)
                }
            )
        return run_procedure(evaluator, procedure, bindings, binder)

    # -- DML handlers ------------------------------------------------------------------------------

    def _binder(self) -> Binder:
        return Binder(self.db.catalog, self.session_ranges)

    def _prepare(self, statement: ast.Statement) -> _PreparedPlan:
        """Bind and optimize one query statement (the cacheable half)."""
        if isinstance(statement, ast.Explain):
            return self._prepare_explain(statement)
        binder = self._binder()
        optimizer = Optimizer(
            self.db.catalog,
            enabled=self._flag("optimize"),
            hash_joins=self._flag("hash_joins"),
            cost_based=self._flag("cost_based"),
            compile_mode=self._flag("compile_mode"),
            exec_mode=self._flag("exec_mode"),
            parallel_mode=self._flag("parallel_mode"),
            workers=self._flag("workers"),
        )
        if isinstance(statement, ast.Retrieve):
            kind, bound = "retrieve", binder.bind_retrieve(statement)
        elif isinstance(statement, ast.Append):
            kind, bound = "append", binder.bind_append(statement)
        elif isinstance(statement, ast.Delete):
            kind, bound = "delete", binder.bind_delete(statement)
        elif isinstance(statement, ast.Replace):
            kind, bound = "replace", binder.bind_replace(statement)
        elif isinstance(statement, ast.SetStatement):
            kind, bound = "set", binder.bind_set(statement)
        else:  # pragma: no cover
            raise ExcessError(
                f"not a query statement: {type(statement).__name__}"
            )
        report = optimizer.optimize(bound.query)
        # lower to the physical operator tree now, so cache hits re-execute
        # the prepared tree without re-lowering
        root = optimizer.lower(bound, report)
        return _PreparedPlan(kind=kind, bound=bound, report=report, plan_root=root)

    def _execute_prepared(
        self, plan: _PreparedPlan, user: str, cache: str = ""
    ) -> Result:
        """Run a prepared plan: authorization checks (every execution,
        never cached) then evaluation, collecting execution metrics."""
        start = time.perf_counter()
        evaluator = Evaluator(
            self.db,
            user=user,
            compile_mode=self._flag("compile_mode"),
            exec_mode=self._flag("exec_mode"),
            batch_size=self._flag("batch_size"),
            session=self._session(),
            statement_timeout_ms=self._flag("statement_timeout_ms"),
            memory_budget=self._flag("memory_budget"),
        )
        evaluator.metrics.cache = cache
        if (
            plan.kind == "retrieve"
            and self._flag("parallel_mode") == "process"
            and self._flag("workers") >= 2
        ):
            evaluator.parallel = self._parallel()
        bound = plan.bound
        if plan.kind == "explain":
            message = plan.report.describe()
            if cache:
                message += f"; cache={cache}"
            result = Result(
                kind="explain",
                columns=["step", "variable", "source", "access", "quantifier",
                         "residual_predicates", "join"],
                rows=list(plan.explain_rows),
                message=message,
            )
        elif plan.kind == "retrieve":
            self._check_query_reads(user, bound.query)
            result = evaluator.run_retrieve(bound)
        elif plan.kind == "append":
            self._check_query_reads(user, bound.query)
            self._check_collection_write(user, Privilege.APPEND, bound.target)
            result = evaluator.run_append(bound)
        elif plan.kind == "delete":
            self._check_query_reads(user, bound.query)
            self._check_binding_write(
                user, Privilege.DELETE, bound.query, bound.variable
            )
            result = evaluator.run_delete(bound)
        elif plan.kind == "replace":
            self._check_query_reads(user, bound.query)
            self._check_replace_write(user, bound)
            result = evaluator.run_replace(bound)
        elif plan.kind == "set":
            self._check_query_reads(user, bound.query)
            if bound.location[0] == "named":
                self._check(user, Privilege.REPLACE, bound.location[1])
            result = evaluator.run_set(bound)
        else:  # pragma: no cover
            raise ExcessError(f"unknown prepared plan kind {plan.kind!r}")
        result.plan = plan.report
        if plan.plan_root is not None:
            # EXPLAIN shows estimates only (nothing ran); executed
            # statements render the tree with actual per-operator counts.
            # Rendering is deferred to first plan_tree access — only the
            # counter snapshot is taken here, since a cached plan's live
            # counters are reset by its next execution.
            root = plan.plan_root
            mode = self._flag("compile_mode")
            emode = self._flag("exec_mode")
            bsize = self._flag("batch_size")
            if plan.kind == "explain":
                result.plan_tree = render_plan(
                    root,
                    actuals=False,
                    compile_mode=mode,
                    exec_mode=emode,
                    batch_size=bsize,
                )
            else:
                snap = snapshot_stats(root)
                result._plan_tree_thunk = lambda: render_plan(
                    root,
                    actuals=True,
                    snapshot=snap,
                    compile_mode=mode,
                    exec_mode=emode,
                    batch_size=bsize,
                )
            if emode == "fused":
                # debug hook: the generated source of every fused region
                # (rendered lazily, like the tree)
                fused_compiled = mode == "closure"
                result._pipeline_source_thunk = lambda: pipeline_sources(
                    root, fused_compiled
                )
        evaluator.metrics.wall_ms = (time.perf_counter() - start) * 1000.0
        result.metrics = evaluator.metrics.as_dict()
        return result

    def _run_query_statement(
        self, statement: ast.Statement, user: str
    ) -> Result:
        return self._execute_prepared(self._prepare(statement), user)

    def _do_alter_type(self, statement: ast.AlterType, user: str) -> Result:
        from repro.core.evolution import alter_type

        self._check(user, Privilege.DEFINE, statement.name)
        adds = [
            (decl.name, self.build_component(decl.component))
            for decl in statement.adds
        ]
        message = alter_type(self.db, statement.name, adds, statement.drops)
        self.db.catalog.bump_epoch()
        return Result(kind="alter", message=message)

    def _do_begin(self, statement: ast.BeginTransaction, user: str) -> Result:
        self.db.transactions.begin(self._session())
        return Result(kind="transaction", message="transaction started")

    def _do_commit(self, statement: ast.CommitTransaction, user: str) -> Result:
        self.db.transactions.commit(self._session())
        return Result(kind="transaction", message="committed")

    def _do_analyze(self, statement: ast.Analyze, user: str) -> Result:
        """``analyze [SetName]`` — rebuild optimizer statistics.

        ``Database.analyze`` bumps the catalog epoch, so every cached
        plan costed under the previous statistics is invalidated.
        """
        bound = self._binder().bind_analyze(statement)
        if bound.set_name is not None:
            self._check(user, Privilege.SELECT, bound.set_name)
            analyzed = self.db.analyze(bound.set_name)
        else:
            analyzed = []
            for name in sorted(self.db.catalog.named_names()):
                if not self.db.catalog.named(name).is_set:
                    continue
                if self.db.authz.enabled:
                    try:
                        self.db.authz.check(user, Privilege.SELECT, name)
                    except AuthorizationError:
                        continue  # analyze-all skips unreadable sets
                analyzed.extend(self.db.analyze(name))
        message = (
            "analyzed " + ", ".join(analyzed) if analyzed else "analyzed 0 sets"
        )
        return Result(kind="analyze", count=len(analyzed), message=message)

    def _do_abort(self, statement: ast.AbortTransaction, user: str) -> Result:
        self.db.transactions.abort(self._session())
        # abort() already forces the epoch forward; dropping the entries
        # just keeps the LRU from carrying dead plans around
        self.plan_cache.clear()
        return Result(kind="transaction", message="aborted")

    def _do_set_operation(self, statement: ast.SetOperation, user: str) -> Result:
        """Evaluate retrieves and combine their row sets.

        ``union`` eliminates duplicates (set semantics); ``intersect``
        keeps rows present in both; ``minus`` removes the right side's
        rows from the left. Column labels come from the first retrieve;
        arity must match.
        """
        from repro.excess.evaluator import canonical_key

        def run(retrieve: ast.Retrieve) -> Result:
            return self._run_query_statement(retrieve, user)

        left = run(statement.left)
        rows = list(left.rows)
        keys = [tuple(canonical_key(v) for v in row) for row in rows]
        for op, term in statement.terms:
            right = run(term)
            if right.columns and left.columns and len(right.columns) != len(
                left.columns
            ):
                raise BindError(
                    f"{op}: operand arities differ "
                    f"({len(left.columns)} vs {len(right.columns)})"
                )
            right_keys = {
                tuple(canonical_key(v) for v in row) for row in right.rows
            }
            if op == "union":
                seen = set(keys)
                for row in right.rows:
                    key = tuple(canonical_key(v) for v in row)
                    if key not in seen:
                        seen.add(key)
                        rows.append(row)
                        keys.append(key)
                # dedupe the left side too (set semantics)
                deduped: list[tuple] = []
                deduped_keys: list[tuple] = []
                seen2: set = set()
                for row, key in zip(rows, keys):
                    if key not in seen2:
                        seen2.add(key)
                        deduped.append(row)
                        deduped_keys.append(key)
                rows, keys = deduped, deduped_keys
            elif op == "intersect":
                filtered = [
                    (row, key) for row, key in zip(rows, keys)
                    if key in right_keys
                ]
                rows = [r for r, _k in filtered]
                keys = [k for _r, k in filtered]
            else:  # minus
                filtered = [
                    (row, key) for row, key in zip(rows, keys)
                    if key not in right_keys
                ]
                rows = [r for r, _k in filtered]
                keys = [k for _r, k in filtered]
        return Result(kind="retrieve", columns=left.columns, rows=rows)

    def _prepare_explain(self, statement: ast.Explain) -> _PreparedPlan:
        """Bind and optimize the inner statement; pre-render plan rows."""
        from repro.excess.binder import (
            IteratorSource,
            NamedSetSource,
            PathSource,
        )

        inner = statement.statement
        binder = self._binder()
        if isinstance(inner, ast.Retrieve):
            bound_stmt: Any = binder.bind_retrieve(inner)
        elif isinstance(inner, ast.Append):
            bound_stmt = binder.bind_append(inner)
        elif isinstance(inner, ast.Delete):
            bound_stmt = binder.bind_delete(inner)
        elif isinstance(inner, ast.Replace):
            bound_stmt = binder.bind_replace(inner)
        elif isinstance(inner, ast.SetStatement):
            bound_stmt = binder.bind_set(inner)
        else:
            raise ExcessError(
                f"explain supports query statements, not "
                f"{type(inner).__name__}"
            )
        query = bound_stmt.query
        optimizer = Optimizer(
            self.db.catalog,
            enabled=self._flag("optimize"),
            hash_joins=self._flag("hash_joins"),
            cost_based=self._flag("cost_based"),
            compile_mode=self._flag("compile_mode"),
            exec_mode=self._flag("exec_mode"),
            parallel_mode=self._flag("parallel_mode"),
            workers=self._flag("workers"),
        )
        report = optimizer.optimize(query)
        root = optimizer.lower(bound_stmt, report)
        rows: list[tuple] = []
        for position, binding in enumerate(query.bindings, start=1):
            source = binding.source
            if isinstance(source, NamedSetSource):
                origin = f"set {source.set_name}"
            elif isinstance(source, PathSource):
                origin = f"path {source.parent}.{'.'.join(source.steps)}"
            elif isinstance(source, IteratorSource):
                origin = f"iterator {source.function.name}"
            else:  # pragma: no cover
                origin = "?"
            access = binding.access
            if binding.access == "index" and binding.index_descriptor is not None:
                access = (
                    f"index {binding.index_descriptor.name} ({binding.index_op})"
                )
            quantifier = "forall" if binding.universal else "exists"
            join = binding.join_detail or binding.join_strategy
            rows.append(
                (
                    position,
                    binding.name,
                    origin,
                    access,
                    quantifier,
                    len(binding.residual),
                    join,
                )
            )
        return _PreparedPlan(
            kind="explain",
            bound=query,
            report=report,
            explain_rows=rows,
            plan_root=root,
        )

    def _do_explain(self, statement: ast.Explain, user: str) -> Result:
        """Bind and optimize the inner statement; report the plan."""
        return self._execute_prepared(self._prepare_explain(statement), user)

    # -- authorization helpers ----------------------------------------------------------------------

    def _check(self, user: str, privilege: Privilege, object_name: str) -> None:
        if self.db.authz.enabled:
            self.db.authz.check(user, privilege, object_name)

    def _check_query_reads(self, user: str, query: BoundQuery) -> None:
        if not self.db.authz.enabled:
            return
        for name in self._read_names(query):
            self.db.authz.check(user, Privilege.SELECT, name)

    def _read_names(self, query: BoundQuery) -> set[str]:
        names: set[str] = set()
        for binding in query.bindings:
            if isinstance(binding.source, NamedSetSource):
                names.add(binding.source.set_name)
        for aggregate in query.aggregates:
            for binding in aggregate.inner_bindings:
                if isinstance(binding.source, NamedSetSource):
                    names.add(binding.source.set_name)
        return names

    def _check_collection_write(self, user: str, privilege: Privilege, target) -> None:
        if not self.db.authz.enabled:
            return
        if target.kind == "named":
            self.db.authz.check(user, privilege, target.name)

    def _check_binding_write(
        self, user: str, privilege: Privilege, query: BoundQuery, variable: str
    ) -> None:
        if not self.db.authz.enabled:
            return
        for binding in query.bindings:
            if binding.name == variable and isinstance(
                binding.source, NamedSetSource
            ):
                self.db.authz.check(user, privilege, binding.source.set_name)

    def _check_replace_write(self, user: str, bound) -> None:
        if not self.db.authz.enabled:
            return
        from repro.excess.binder import AttrStep, VarRef

        probe = bound.target
        while isinstance(probe, AttrStep):
            probe = probe.base
        if isinstance(probe, VarRef):
            self._check_binding_write(
                user, Privilege.REPLACE, bound.query, probe.name
            )
        elif isinstance(probe, NamedValue):
            self._check(user, Privilege.REPLACE, probe.name)

    # -- dispatch table --------------------------------------------------------------------------------

    _HANDLERS: dict[type, Any] = {}


Interpreter._HANDLERS = {
    ast.DefineType: Interpreter._do_define_type,
    ast.CreateNamed: Interpreter._do_create_named,
    ast.DestroyNamed: Interpreter._do_destroy,
    ast.CreateIndex: Interpreter._do_create_index,
    ast.DropIndex: Interpreter._do_drop_index,
    ast.RangeDecl: Interpreter._do_range,
    ast.GrantStatement: Interpreter._do_grant,
    ast.RevokeStatement: Interpreter._do_revoke,
    ast.CreateUser: Interpreter._do_create_user,
    ast.CreateGroup: Interpreter._do_create_group,
    ast.AddToGroup: Interpreter._do_add_to_group,
    ast.DefineFunction: Interpreter._do_define_function,
    ast.DefineProcedure: Interpreter._do_define_procedure,
    ast.ExecuteProcedure: Interpreter._do_execute,
    ast.Retrieve: Interpreter._run_query_statement,
    ast.SetOperation: Interpreter._do_set_operation,
    ast.AlterType: Interpreter._do_alter_type,
    ast.BeginTransaction: Interpreter._do_begin,
    ast.CommitTransaction: Interpreter._do_commit,
    ast.AbortTransaction: Interpreter._do_abort,
    ast.Analyze: Interpreter._do_analyze,
    ast.Explain: Interpreter._do_explain,
    ast.Append: Interpreter._run_query_statement,
    ast.Delete: Interpreter._run_query_statement,
    ast.Replace: Interpreter._run_query_statement,
    ast.SetStatement: Interpreter._run_query_statement,
}
