"""Query results.

A :class:`Result` carries the rows a statement produced (for retrieves)
or a summary of what an update did, plus the optimizer report so callers
can inspect plan choices. Rendering knows how to display EXTRA values:
nulls, references (as ``@oid``), tuple objects, sets, arrays, and ADT
values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.core.values import (
    NULL,
    ArrayInstance,
    Ref,
    SetInstance,
    TupleInstance,
)

__all__ = ["Result", "render_value"]


def render_value(value: Any) -> str:
    """Human-readable rendering of one EXTRA value."""
    if value is NULL or value is None:
        return "null"
    if isinstance(value, Ref):
        return f"@{value.oid}"
    if isinstance(value, TupleInstance):
        ident = f"@{value.oid} " if value.oid is not None else ""
        body = ", ".join(
            f"{name}: {render_value(slot)}"
            for name, slot in value.attributes().items()
        )
        return f"{ident}({body})"
    if isinstance(value, SetInstance):
        return "{" + ", ".join(render_value(m) for m in value) + "}"
    if isinstance(value, ArrayInstance):
        return "[" + ", ".join(render_value(s) for s in value) + "]"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, str):
        return value
    return str(value)


@dataclass
class Result:
    """The outcome of one EXCESS statement."""

    #: statement kind: "retrieve", "append", "delete", "replace", "set",
    #: "define", "create", "destroy", "grant", ... (for dispatching)
    kind: str = ""
    columns: list[str] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    #: rows touched by an update statement
    count: int = 0
    #: free-form status message for DDL
    message: str = ""
    #: the optimizer's report, when a query ran
    plan: Optional[Any] = None
    #: execution counters (rows scanned, hash builds/probes, plan-cache
    #: hit/miss, wall time) when a query statement ran
    metrics: Optional[dict] = None
    #: rendered physical operator tree (estimated rows for EXPLAIN,
    #: estimated + actual per-operator counts for executed queries) —
    #: backing store for the lazy :attr:`plan_tree` property
    _plan_tree: Optional[str] = field(default=None, repr=False)
    #: zero-argument callable rendering the tree on first access, so the
    #: per-statement hot path pays only a counter snapshot, not string
    #: formatting
    _plan_tree_thunk: Optional[Any] = field(default=None, repr=False)
    #: generated Python source of the plan's fused pipeline regions
    #: (fused exec mode only) — backing store for the lazy
    #: :attr:`pipeline_source` debug hook
    _pipeline_source: Optional[str] = field(default=None, repr=False)
    _pipeline_source_thunk: Optional[Any] = field(default=None, repr=False)

    @property
    def plan_tree(self) -> Optional[str]:
        if self._plan_tree is None and self._plan_tree_thunk is not None:
            self._plan_tree = self._plan_tree_thunk()
            self._plan_tree_thunk = None
        return self._plan_tree

    @plan_tree.setter
    def plan_tree(self, value: Optional[str]) -> None:
        self._plan_tree = value
        self._plan_tree_thunk = None

    @property
    def pipeline_source(self) -> Optional[str]:
        """The generated source of every fused pipeline region the
        statement's plan contains (None outside fused exec mode, ``""``
        when the plan has no fusable region)."""
        if self._pipeline_source is None and self._pipeline_source_thunk is not None:
            self._pipeline_source = self._pipeline_source_thunk()
            self._pipeline_source_thunk = None
        return self._pipeline_source

    @pipeline_source.setter
    def pipeline_source(self, value: Optional[str]) -> None:
        self._pipeline_source = value
        self._pipeline_source_thunk = None

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ValueError(
                f"scalar() needs a 1x1 result, have {len(self.rows)} rows x "
                f"{len(self.columns)} columns"
            )
        return self.rows[0][0]

    def column(self, name: str) -> list[Any]:
        """All values of the named column."""
        try:
            index = self.columns.index(name)
        except ValueError:
            raise KeyError(f"no column {name!r}") from None
        return [row[index] for row in self.rows]

    def to_dicts(self) -> list[dict[str, Any]]:
        """Rows as dictionaries keyed by column label."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def pretty(self, limit: int = 50) -> str:
        """A fixed-width table rendering (truncated at ``limit`` rows)."""
        if not self.columns:
            text = self.message or f"{self.kind}: {self.count} object(s)"
            return text
        rendered = [
            [render_value(value) for value in row] for row in self.rows[:limit]
        ]
        widths = [
            max(len(column), *(len(r[i]) for r in rendered)) if rendered else len(column)
            for i, column in enumerate(self.columns)
        ]
        lines = [
            " | ".join(c.ljust(w) for c, w in zip(self.columns, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in rendered:
            lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
        if len(self.rows) > limit:
            lines.append(f"... ({len(self.rows) - limit} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        if self.columns:
            return f"<Result {self.kind}: {len(self.rows)} rows>"
        return f"<Result {self.kind}: {self.message or self.count}>"
