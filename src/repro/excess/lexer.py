"""The EXCESS lexer.

Tokenizes statements into identifiers, keywords, literals, and operator
symbols. Operator symbols are matched longest-first against the union of
the built-in symbols and any operator symbols registered through the ADT
facility — the paper allows "any legal EXCESS identifier or sequence of
punctuation characters" as a new operator, so the token set is open.

Keywords are case-insensitive (QUEL tradition); identifiers are
case-sensitive.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import LexicalError

__all__ = ["TokenType", "Token", "Lexer", "KEYWORDS"]

#: Reserved words of the (reconstructed) EXCESS grammar.
#:
#: Statement-starting words that double as useful identifiers — ``add``,
#: ``alter``, ``begin``/``commit``/``abort``, and ``analyze`` — are
#: deliberately *not* reserved; the parser recognizes them positionally
#: at statement start instead.
KEYWORDS = frozenset({
    "define", "type", "as", "inherits", "with", "rename", "to",
    "create", "destroy", "key", "index", "on", "using", "drop",
    "range", "of", "is", "isnot", "every",
    "retrieve", "into", "unique", "from", "in", "where",
    "append", "delete", "replace", "set",
    "and", "or", "not", "contains", "over",
    "union", "intersect", "minus", "explain", "sort", "by", "asc", "desc",
    "own", "ref",
    "function", "fixed", "returns", "procedure", "execute",
    "grant", "revoke", "user", "group",
    "true", "false", "null",
    "enum",
})

#: Built-in punctuation operators, longest first for maximal munch.
_BUILTIN_SYMBOLS = [
    "<=", ">=", "!=", "||",
    "=", "<", ">", "+", "-", "*", "/", "%",
]

#: Structural punctuation (never part of an operator symbol).
_STRUCTURAL = {
    "(": "LPAREN", ")": "RPAREN",
    "[": "LBRACKET", "]": "RBRACKET",
    "{": "LBRACE", "}": "RBRACE",
    ",": "COMMA", ":": "COLON", ";": "SEMI", ".": "DOT",
}

_PUNCT_CHARS = set("+-*/%<>=!&|^~@#?$")


class TokenType(enum.Enum):
    """Lexical token categories."""

    IDENT = "ident"
    KEYWORD = "keyword"
    INT = "int"
    FLOAT = "float"
    STRING = "string"
    OP = "op"
    LPAREN = "lparen"
    RPAREN = "rparen"
    LBRACKET = "lbracket"
    RBRACKET = "rbracket"
    LBRACE = "lbrace"
    RBRACE = "rbrace"
    COMMA = "comma"
    COLON = "colon"
    SEMI = "semi"
    DOT = "dot"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    type: TokenType
    text: str
    value: Any
    line: int
    column: int

    def is_keyword(self, *words: str) -> bool:
        """True when this token is one of the given keywords."""
        return self.type is TokenType.KEYWORD and self.text in words

    def __repr__(self) -> str:
        return f"Token({self.type.value}, {self.text!r})"


class Lexer:
    """Tokenizes EXCESS source text.

    ``extra_symbols`` extends the operator symbol set with user-registered
    operators (supplied by the interpreter from the ADT registry).
    """

    def __init__(self, text: str, extra_symbols: Iterable[str] = ()):
        self._text = text
        self._pos = 0
        self._line = 1
        self._column = 1
        symbols = set(_BUILTIN_SYMBOLS)
        for symbol in extra_symbols:
            if symbol and symbol[0] in _PUNCT_CHARS:
                symbols.add(symbol)
        self._symbols = sorted(symbols, key=len, reverse=True)

    # -- public API ------------------------------------------------------------

    def tokens(self) -> list[Token]:
        """Tokenize the whole input; always ends with an EOF token."""
        out: list[Token] = []
        while True:
            token = self._next_token()
            out.append(token)
            if token.type is TokenType.EOF:
                return out

    # -- scanning ----------------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        return self._text[index] if index < len(self._text) else ""

    def _advance(self, count: int = 1) -> str:
        out = self._text[self._pos:self._pos + count]
        for ch in out:
            if ch == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
        self._pos += count
        return out

    def _skip_trivia(self) -> None:
        while True:
            ch = self._peek()
            if not ch:
                return
            if ch in " \t\r\n":
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                # line comment: -- to end of line
                while self._peek() and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self._line, self._column
                self._advance(2)
                while self._peek() and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if not self._peek():
                    raise LexicalError(
                        "unterminated block comment", start_line, start_col
                    )
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        line, column = self._line, self._column
        ch = self._peek()
        if not ch:
            return Token(TokenType.EOF, "", None, line, column)
        if ch.isdigit():
            return self._number(line, column)
        if ch.isalpha() or ch == "_":
            return self._identifier(line, column)
        if ch in "\"'":
            return self._string(line, column)
        if ch == "." and self._peek(1).isdigit():
            return self._number(line, column)
        if ch in _STRUCTURAL:
            self._advance()
            return Token(TokenType[_STRUCTURAL[ch]], ch, ch, line, column)
        if ch in _PUNCT_CHARS:
            return self._operator(line, column)
        raise LexicalError(f"unexpected character {ch!r}", line, column)

    def _number(self, line: int, column: int) -> Token:
        start = self._pos
        while self._peek().isdigit():
            self._advance()
        is_float = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self._text[start:self._pos]
        if is_float:
            return Token(TokenType.FLOAT, text, float(text), line, column)
        return Token(TokenType.INT, text, int(text), line, column)

    def _identifier(self, line: int, column: int) -> Token:
        start = self._pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self._text[start:self._pos]
        lowered = text.lower()
        if lowered in KEYWORDS:
            if lowered == "true":
                return Token(TokenType.KEYWORD, lowered, True, line, column)
            if lowered == "false":
                return Token(TokenType.KEYWORD, lowered, False, line, column)
            return Token(TokenType.KEYWORD, lowered, lowered, line, column)
        return Token(TokenType.IDENT, text, text, line, column)

    def _string(self, line: int, column: int) -> Token:
        quote = self._advance()
        out: list[str] = []
        while True:
            ch = self._peek()
            if not ch or ch == "\n":
                raise LexicalError("unterminated string literal", line, column)
            if ch == "\\":
                self._advance()
                escape = self._advance()
                mapping = {"n": "\n", "t": "\t", "\\": "\\", quote: quote}
                out.append(mapping.get(escape, escape))
                continue
            if ch == quote:
                self._advance()
                text = "".join(out)
                return Token(TokenType.STRING, text, text, line, column)
            out.append(self._advance())

    def _operator(self, line: int, column: int) -> Token:
        rest = self._text[self._pos:]
        for symbol in self._symbols:
            if rest.startswith(symbol):
                self._advance(len(symbol))
                return Token(TokenType.OP, symbol, symbol, line, column)
        # an unregistered punctuation run: munch maximally so the parser
        # can report the unknown operator by name
        start = self._pos
        while self._peek() in _PUNCT_CHARS:
            self._advance()
        text = self._text[start:self._pos]
        return Token(TokenType.OP, text, text, line, column)
