"""EXCESS: the QUEL-derived query language of EXODUS (paper §3–§4).

Pipeline: :mod:`lexer` → :mod:`parser` (AST in :mod:`ast_nodes`) →
:mod:`binder` (name/type resolution, implicit-join and nested-set
expansion) → :mod:`planner` (logical plan) → :mod:`optimizer` (rule-based
rewrites + table-driven access-method selection) → :mod:`evaluator`
(nested-loop execution with precomputed aggregate partitions).

:mod:`interpreter` drives whole statements, :mod:`functions` and
:mod:`procedures` implement EXCESS functions (derived data) and stored
procedures, and :mod:`result` carries query output.
"""

from repro.excess.interpreter import Interpreter
from repro.excess.result import Result

__all__ = ["Interpreter", "Result"]
