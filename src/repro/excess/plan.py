"""The physical plan IR: a Volcano-style pipeline of pull operators.

The optimizer *lowers* a bound (and annotated) query into a tree of
composable iterator operators — the paper's §4.1.3 architecture of a
table-driven optimizer emitting plans over pluggable access methods,
reproduced at small scale.  Each operator follows the classic
open/next/close lifecycle and keeps its own counters (rows in/out, opens,
hash builds/probes), so EXPLAIN can print the operator tree with
estimated and actual row counts and :class:`~repro.excess.evaluator.
ExecMetrics` aggregates from operator counters instead of ad-hoc
increments.

Operator inventory
------------------

Row sources (bind one range variable per input row):

* :class:`SeqScan` — live members of a named set (or slots of a named
  array), in insertion order;
* :class:`IndexScan` — an equality or range probe through a physical
  index chosen by the optimizer's access-method selection;
* :class:`PathExpand` — members of a set-valued path under an
  already-bound parent variable (the paper's nested-set iteration);
* :class:`FunctionScan` — values produced by a registered iterator
  function (e.g. ``interval``).

Row transformers:

* :class:`Filter` — residual/where predicates, kept only when definitely
  true (three-valued logic);
* :class:`SemiJoinProbe` — a membership predicate over a named set,
  answered against a memoized member-key set;
* :class:`NestedLoopJoin` — re-opens its inner subtree per outer row;
* :class:`HashJoin` — builds a hash table over its build subtree once
  (memoized across executions until the database's data version moves)
  and probes it per outer row;
* :class:`UniversalCheck` — ∀ semantics: an input row survives iff the
  predicate holds for every combination of the universal bindings;
* :class:`Aggregate` — computes aggregate partition tables at open, then
  streams its input through.

Row finishers (tuple-level, above the binding pipeline):

* :class:`Project` — evaluates the target list (with optional duplicate
  elimination and sort-key computation);
* :class:`Sort` — stable multi-key sort, null keys deterministically
  last in both directions;
* :class:`StoreInto` — materializes the result as a named set
  (``retrieve ... into``).

Execution contract
------------------

The binding pipeline streams **one shared environment dict**, mutated in
place as scans bind their variables (this is what keeps the plan IR as
fast as the pre-IR nested-loop interpreter: no per-candidate-row dict
copies).  Consumers that retain rows must snapshot:
:meth:`repro.excess.evaluator.Evaluator.env_stream` copies each
qualifying environment, and the tuple-level operators produce fresh row
tuples.  Operator statistics accumulate across re-opens within one
execution and are reset by the executor before each execution, so
``stats`` always describes the most recent run.
"""

from __future__ import annotations

import heapq
import zlib
from dataclasses import dataclass
from itertools import chain
from typing import Any, Iterator, Optional

from repro.core.governor import row_footprint
from repro.core.values import (
    NULL,
    ArrayInstance,
    Ref,
    SetInstance,
    TupleInstance,
)
from repro.errors import EvaluationError
from repro.storage.spill import SpillFile
from repro.excess.binder import (
    AdtCall,
    AggregateRef,
    AttrStep,
    Binary,
    BoundExpr,
    BoundQuery,
    BoundRetrieve,
    Const,
    ExcessCall,
    IndexStepB,
    IteratorSource,
    Membership,
    NamedSetSource,
    NamedValue,
    PathSource,
    RangeBinding,
    Unary,
    VarRef,
)
from repro.excess.compile import compile_all, compile_expr, compiled_label

__all__ = [
    "PlanContext",
    "OpStats",
    "PlanOp",
    "Singleton",
    "SeqScan",
    "IndexScan",
    "PathExpand",
    "FunctionScan",
    "Filter",
    "SemiJoinProbe",
    "NestedLoopJoin",
    "HashJoin",
    "UniversalCheck",
    "Aggregate",
    "Project",
    "Sort",
    "StoreInto",
    "ExchangePartition",
    "ExchangeMerge",
    "ExchangeBroadcast",
    "join_key",
    "partition_hash",
    "sort_rows",
    "parallelize_pipeline",
    "parallelize_query_block",
    "lower_query",
    "lower_retrieve",
    "ensure_query_plan",
    "ensure_retrieve_plan",
    "describe_expr",
    "render_plan",
    "snapshot_stats",
    "plan_ops",
    "walk_plan",
    "reset_stats",
    "fusable_ops",
    "fused_regions",
    "pipeline_sources",
]

Env = dict

#: sentinel distinguishing "binding name absent from env" from None values
_MISSING = object()

#: operator classes whose output rows count as "rows scanned" (candidate
#: members enumerated from binding sources) in ExecMetrics
SCAN_OPS: tuple = ()  # filled in below, after the classes exist

#: fan-out of Grace hash-join and aggregate spills (number of on-disk
#: partitions); enough that each partition's rebuilt table is ~1/8 of
#: the over-budget build while keeping file handles trivial
SPILL_PARTITIONS = 8


def _spill_note(stats: "OpStats") -> str:
    """The ``spill=[partitions=N, bytes=M]`` EXPLAIN suffix (empty when
    the operator stayed in memory)."""
    if not stats.spill_partitions:
        return ""
    return (
        f" spill=[partitions={stats.spill_partitions},"
        f" bytes={stats.spill_bytes}]"
    )


# ---------------------------------------------------------------------------
# Execution context and statistics
# ---------------------------------------------------------------------------


class PlanContext:
    """Per-execution state shared by every operator of one plan run.

    Holds the evaluator (expression evaluation, dereferencing, the
    database) and the aggregate tables filled by :class:`Aggregate` at
    open.  Plans themselves are immutable and shareable (they live in the
    plan cache); everything execution-scoped lives here or in operator
    stats.
    """

    __slots__ = (
        "evaluator",
        "tables",
        "db",
        "objects",
        "compiled",
        "exec_mode",
        "batch_size",
        "session_stamp",
        "exchange",
        "parallel",
        "governor",
    )

    def __init__(self, evaluator: Any, tables: Optional[dict] = None):
        self.evaluator = evaluator
        self.tables = {} if tables is None else tables
        # hot-path attributes (compiled closures read these per row)
        self.db = evaluator.db
        self.objects = evaluator.db.objects
        #: (snapshot_ts, txn_id) of the executing session's transaction
        #: (None, None outside one) — part of the hash-build memo stamp
        self.session_stamp = getattr(evaluator, "session_stamp", (None, None))
        #: True when this execution runs compiled closures on the hot
        #: paths; plans are shared across modes (function bodies, cached
        #: statements), so operators branch on this per execution
        self.compiled = (
            getattr(evaluator, "compile_mode", "closure") == "closure"
        )
        #: "fused" runs generated whole-pipeline functions where regions
        #: allow, "batch" exchanges row batches operator to operator,
        #: "row" preserves the tuple-at-a-time Volcano path (ablation)
        self.exec_mode = getattr(evaluator, "exec_mode", "fused")
        #: target rows per exchanged batch (batch/fused modes)
        self.batch_size = getattr(evaluator, "batch_size", 1024)
        #: worker-side shard descriptor (``.part``/``.dop``) — set only
        #: inside a parallel worker; :class:`ExchangePartition` (and the
        #: fused codegen) read it to restrict the scan to one partition.
        #: None in the parent process, where partitions pass through.
        self.exchange = getattr(evaluator, "exchange", None)
        #: parent-side parallel runner (``repro.excess.parallel``) — set
        #: when parallel execution is enabled; :class:`ExchangeMerge`
        #: dispatches its fragment through it. None ⇒ serial fallback.
        self.parallel = getattr(evaluator, "parallel", None)
        #: per-statement :class:`~repro.core.governor.ResourceGovernor`
        #: (deadline + memory budget) — None when neither flag is set,
        #: which keeps the batch hot path a single ``is None`` test
        self.governor = getattr(evaluator, "governor", None)

    def eval(self, expr: BoundExpr, env: Env) -> Any:
        """Evaluate a bound expression under this execution's tables."""
        return self.evaluator._eval(expr, env, self.tables)


@dataclass
class OpStats:
    """Per-operator execution counters (reset before each execution)."""

    #: times the operator was opened (inner sides of joins re-open)
    opens: int = 0
    #: rows pulled from the primary input
    rows_in: int = 0
    #: rows produced
    rows_out: int = 0
    #: hash tables built (HashJoin)
    builds: int = 0
    #: rows loaded into hash tables (HashJoin)
    build_rows: int = 0
    #: probe lookups performed (HashJoin)
    probes: int = 0
    #: on-disk partitions/runs this operator spilled into (0 = in memory)
    spill_partitions: int = 0
    #: bytes written to spill files (build + probe / runs / partitions)
    spill_bytes: int = 0

    def reset(self) -> None:
        self.opens = 0
        self.rows_in = 0
        self.rows_out = 0
        self.builds = 0
        self.build_rows = 0
        self.probes = 0
        self.spill_partitions = 0
        self.spill_bytes = 0


# ---------------------------------------------------------------------------
# Operator base
# ---------------------------------------------------------------------------


class PlanOp:
    """One physical operator: open/next/close over environments or rows.

    Subclasses implement :meth:`_run`, a generator over the incoming
    environment; the base class provides the Volcano protocol and the
    bookkeeping (``stats.rows_out`` counted in :meth:`next`).  Adding an
    operator (parallel scan, batch probe, external sort) means adding a
    subclass and a lowering rule — no evaluator changes.
    """

    label = "Op"

    def __init__(self, children: Optional[list["PlanOp"]] = None):
        self.children: list[PlanOp] = list(children or [])
        self.stats = OpStats()
        #: optimizer's cardinality guess for this operator's output
        self.est_rows: Optional[int] = None
        # Plans are shared across executions (they live in the plan cache
        # and on bound statements), and a recursive EXCESS function can
        # re-enter a tree that is already mid-iteration.  Each open()
        # therefore pushes a fresh generator on a stack instead of
        # clobbering a single slot; next()/close() act on the top.
        self._iters: list[Iterator] = []
        #: executor depth — outermost run resets/absorbs stats
        self.running: int = 0

    # -- lifecycle -------------------------------------------------------

    def open(self, ctx: PlanContext, env: Env) -> None:
        """Prepare to produce rows for one incoming environment."""
        self.stats.opens += 1
        self._iters.append(self._run(ctx, env))

    def next(self) -> Optional[Any]:
        """The next row, or None when exhausted."""
        assert self._iters, f"{self.label}.next() before open()"
        row = next(self._iters[-1], None)
        if row is not None:
            self.stats.rows_out += 1
        return row

    def close(self) -> None:
        """Release the current iteration (children close recursively via
        their generators' ``finally`` blocks)."""
        if self._iters:
            self._iters.pop().close()

    def __getstate__(self) -> dict:
        # bound statements (and their cached plans) are pickled by
        # transaction snapshots, and plan fragments are shipped to
        # parallel workers; generators are transient execution state,
        # and compiled closures are unpicklable by nature — every
        # per-node runtime cache is dropped here and rebuilt lazily
        # after unpickling (workers recompile on first execution)
        state = dict(self.__dict__)
        state["_iters"] = []
        state["running"] = 0
        state.pop("_compiled", None)
        state.pop("_fused", None)
        state.pop("_plan_ops", None)
        state.pop("_fragment_key", None)
        if "_memo" in state:
            # memoized hash-build tables hold live object references and
            # a stamp from the building process — never ship them
            state["_memo"] = None
        return state

    def _run(self, ctx: PlanContext, env: Env) -> Iterator[Any]:
        raise NotImplementedError

    # -- batch protocol ---------------------------------------------------

    def batches(self, ctx: PlanContext, env: Env, size: int) -> Iterator[list]:
        """Stream output as non-empty row batches (batch/fused modes).

        In fused mode, when this operator roots a fusable
        Scan→Filter…→Project region, the whole region executes as one
        generated Python function (cached on the node like ``_compiled``,
        dropped by ``__getstate__``); everything else runs the operator's
        native :meth:`run_batches`.  Rows inside a batch are *private*:
        binding-level rows are per-row snapshot dicts (never the shared
        environment), so consumers may retain or mutate them freely.
        """
        if ctx.exec_mode == "fused":
            from repro.excess.compile import fused_pipeline

            fused = fused_pipeline(self, ctx.compiled)
            if fused is not None:
                rows = fused.fn(ctx, env)
                for start in range(0, len(rows), size):
                    yield rows[start : start + size]
                return
        yield from self.run_batches(ctx, env, size)

    def run_batches(self, ctx: PlanContext, env: Env, size: int) -> Iterator[list]:
        """Native batch execution (overridden per operator).

        The base implementation adapts :meth:`_run`, snapshotting
        shared-environment rows into private dicts — a safety net for
        future operators; every current operator overrides it.
        Implementations count their own ``opens`` and pull children
        through :meth:`_pull_batches`; an operator's ``rows_out`` is
        counted by its consumer (or the executor, at the root).
        """
        self.stats.opens += 1
        batch: list = []
        for row in self._run(ctx, env):
            batch.append(dict(row) if type(row) is dict else row)
            if len(batch) >= size:
                yield batch
                batch = []
        if batch:
            yield batch

    def _pull_batches(
        self, child: "PlanOp", ctx: PlanContext, env: Env, size: int
    ) -> Iterator[list]:
        """Stream ``child``'s batches, counting its ``rows_out`` and this
        operator's ``rows_in`` per batch (the batch-mode analogue of
        :meth:`_pull`, amortized to one increment per batch)."""
        child_stats = child.stats
        stats = self.stats
        governor = ctx.governor
        for batch in child.batches(ctx, env, size):
            if governor is not None:
                governor.check_timeout("batch")
            n = len(batch)
            child_stats.rows_out += n
            stats.rows_in += n
            yield batch

    # -- helpers ---------------------------------------------------------

    def _pull(self, child: "PlanOp", ctx: PlanContext, env: Env) -> Iterator[Any]:
        """Open ``child``, stream its rows (counting ``rows_in``), close.

        Iterates the child's generator directly rather than calling
        ``child.next()`` per row — same stream (operators never yield
        None mid-stream), minus a method call on the per-row hot path.
        """
        child.open(ctx, env)
        child_iter = child._iters[-1]
        child_stats = child.stats
        stats = self.stats
        try:
            for row in child_iter:
                child_stats.rows_out += 1
                stats.rows_in += 1
                yield row
        finally:
            child.close()

    # -- description -----------------------------------------------------

    def describe(self) -> str:
        """One-line operator description for the rendered plan tree."""
        return self.label

    def child_roles(self) -> list[tuple[str, "PlanOp"]]:
        """Children annotated with their role (for tree rendering)."""
        return [("", child) for child in self.children]

    def extra_counters(self) -> str:
        """Operator-specific counters appended to the actuals display."""
        return ""

    def compiled_note(self) -> Optional[str]:
        """``closure``/``fallback`` for operators that evaluate
        expressions (compiling them on demand), None otherwise — the
        per-operator ``compiled=`` annotation of the rendered plan."""
        return None

    def exchange_note(self) -> Optional[str]:
        """``[hash(k), dop=N]``-style annotation for exchange operators,
        None for ordinary (serial) operators — the ``exchange=``
        annotation of the rendered plan."""
        return None


# ---------------------------------------------------------------------------
# Row sources
# ---------------------------------------------------------------------------


def _scan_members(db: Any, set_name: str) -> Iterator[Any]:
    """Live members of a named set (or a named array's live, non-null
    slots, in order) — the shared row source behind ``SeqScan`` and the
    range-partitioning exchange specialization."""
    collection = db.named(set_name).value
    if isinstance(collection, ArrayInstance):
        is_live = db.objects.is_live
        return (
            slot
            for slot in collection
            if slot is not NULL
            and not (isinstance(slot, Ref) and not is_live(slot.oid))
        )
    if isinstance(collection, SetInstance):
        return iter(db.integrity.live_members(collection))
    raise EvaluationError(f"{set_name!r} is not a collection")


class Singleton(PlanOp):
    """Produces the incoming (outer) environment exactly once — the seed
    of a pipeline with no range bindings (``retrieve (Today)``)."""

    label = "Singleton"

    def __init__(self) -> None:
        super().__init__()
        self.est_rows = 1

    def _run(self, ctx: PlanContext, env: Env) -> Iterator[Env]:
        yield env

    def run_batches(self, ctx: PlanContext, env: Env, size: int) -> Iterator[list]:
        self.stats.opens += 1
        yield [dict(env)]


class _BindingOp(PlanOp):
    """Base for operators that bind one range variable in the shared
    environment, restoring any shadowed value on close."""

    def __init__(self, var: str) -> None:
        super().__init__()
        self.var = var


class SeqScan(_BindingOp):
    """Scan the live members of a named set (or a named array's live,
    non-null slots, in order)."""

    label = "SeqScan"

    def __init__(self, set_name: str, var: str) -> None:
        super().__init__(var)
        self.set_name = set_name

    def describe(self) -> str:
        return f"SeqScan {self.set_name} as {self.var}"

    def _run(self, ctx: PlanContext, env: Env) -> Iterator[Env]:
        db = ctx.db
        collection = db.named(self.set_name).value
        saved = env.get(self.var, _MISSING)
        try:
            if isinstance(collection, ArrayInstance):
                for slot in collection:
                    if slot is NULL:
                        continue
                    if isinstance(slot, Ref) and not db.objects.is_live(slot.oid):
                        continue
                    env[self.var] = slot
                    yield env
            elif isinstance(collection, SetInstance):
                for member in db.integrity.live_members(collection):
                    env[self.var] = member
                    yield env
            else:
                raise EvaluationError(
                    f"{self.set_name!r} is not a collection"
                )
        finally:
            if saved is _MISSING:
                env.pop(self.var, None)
            else:
                env[self.var] = saved

    def run_batches(self, ctx: PlanContext, env: Env, size: int) -> Iterator[list]:
        self.stats.opens += 1
        members = _scan_members(ctx.db, self.set_name)
        var = self.var
        batch: list = []
        for member in members:
            row = dict(env)
            row[var] = member
            batch.append(row)
            if len(batch) >= size:
                yield batch
                batch = []
        if batch:
            yield batch


class IndexScan(_BindingOp):
    """Probe a physical index with an equality or range key.

    The key expression is evaluated against the incoming environment at
    open, so correlated probes (keys referencing earlier bindings) work;
    a null key produces no rows (3VL: nothing compares to null).
    """

    label = "IndexScan"

    def __init__(self, binding: RangeBinding) -> None:
        super().__init__(binding.name)
        self.descriptor = binding.index_descriptor
        self.op = binding.index_op
        self.key_expr = binding.index_key

    def describe(self) -> str:
        return (
            f"IndexScan {self.descriptor.name} ({self.op} "
            f"{describe_expr(self.key_expr)}) as {self.var}"
        )

    def _compiled_key(self) -> tuple:
        cached = self.__dict__.get("_compiled")
        if cached is None:
            cached = compile_expr(self.key_expr)
            self.__dict__["_compiled"] = cached
        return cached

    def compiled_note(self) -> Optional[str]:
        return compiled_label(self._compiled_key().full)

    def _run(self, ctx: PlanContext, env: Env) -> Iterator[Env]:
        oids = self._probe_oids(ctx, env)
        if oids is None:
            return
        db = ctx.db
        saved = env.get(self.var, _MISSING)
        try:
            for oid in oids:
                if db.objects.is_live(oid):
                    env[self.var] = Ref(oid)
                    yield env
        finally:
            if saved is _MISSING:
                env.pop(self.var, None)
            else:
                env[self.var] = saved

    def _probe_oids(self, ctx: PlanContext, env: Env) -> Optional[list]:
        """Evaluate the key once against ``env`` and probe the index;
        None when the key is null (3VL: nothing compares to null)."""
        if ctx.compiled:
            key = self._compiled_key().fn(env, ctx)
        else:
            key = ctx.eval(self.key_expr, env)
        if key is NULL:
            return None
        index = self.descriptor.index
        if self.op == "=":
            return list(index.search(key))
        if not getattr(index, "supports_range", False):
            raise EvaluationError("index does not support range scans")
        if self.op in ("<", "<="):
            pairs = index.range_scan(None, key, include_high=(self.op == "<="))
        else:
            pairs = index.range_scan(key, None, include_low=(self.op == ">="))
        return [oid for _key, oid in pairs]

    def run_batches(self, ctx: PlanContext, env: Env, size: int) -> Iterator[list]:
        self.stats.opens += 1
        oids = self._probe_oids(ctx, env)
        if oids is None:
            return
        is_live = ctx.db.objects.is_live
        var = self.var
        batch: list = []
        for oid in oids:
            if is_live(oid):
                row = dict(env)
                row[var] = Ref(oid)
                batch.append(row)
                if len(batch) >= size:
                    yield batch
                    batch = []
        if batch:
            yield batch


class PathExpand(_BindingOp):
    """Expand a set- or array-valued path under an already-bound parent
    variable (implicit nested-set join, paper §3.3)."""

    label = "PathExpand"

    def __init__(self, source: PathSource, var: str) -> None:
        super().__init__(var)
        self.parent = source.parent
        self.steps = list(source.steps)

    def describe(self) -> str:
        path = ".".join([self.parent, *self.steps])
        return f"PathExpand {path} as {self.var}"

    def _resolve_collection(self, ctx: PlanContext, env: Env) -> Any:
        """Walk the path under the bound parent; None when any step is
        null, dangling, or not an object (the binding produces no rows)."""
        evaluator = ctx.evaluator
        current: Any = evaluator._resolve_instance(env.get(self.parent))
        for step in self.steps:
            if not isinstance(current, TupleInstance):
                return None
            value = current.get(step)
            if value is NULL:
                return None
            if isinstance(value, Ref):
                value = evaluator._deref(value)
                if value is None:
                    return None
            current = value
        return current

    def _run(self, ctx: PlanContext, env: Env) -> Iterator[Env]:
        current = self._resolve_collection(ctx, env)
        if current is None:
            return
        saved = env.get(self.var, _MISSING)
        try:
            if isinstance(current, SetInstance):
                for member in ctx.db.integrity.live_members(current):
                    env[self.var] = member
                    yield env
            elif isinstance(current, ArrayInstance):
                for slot in current:
                    if slot is NULL:
                        continue
                    if isinstance(slot, Ref) and not ctx.db.objects.is_live(
                        slot.oid
                    ):
                        continue
                    env[self.var] = slot
                    yield env
        finally:
            if saved is _MISSING:
                env.pop(self.var, None)
            else:
                env[self.var] = saved

    def run_batches(self, ctx: PlanContext, env: Env, size: int) -> Iterator[list]:
        self.stats.opens += 1
        current = self._resolve_collection(ctx, env)
        if isinstance(current, SetInstance):
            members: Any = ctx.db.integrity.live_members(current)
        elif isinstance(current, ArrayInstance):
            is_live = ctx.db.objects.is_live
            members = (
                slot
                for slot in current
                if slot is not NULL
                and not (isinstance(slot, Ref) and not is_live(slot.oid))
            )
        else:
            return
        var = self.var
        batch: list = []
        for member in members:
            row = dict(env)
            row[var] = member
            batch.append(row)
            if len(batch) >= size:
                yield batch
                batch = []
        if batch:
            yield batch


class FunctionScan(_BindingOp):
    """Iterate the values of a registered iterator function; a null
    argument produces no rows."""

    label = "FunctionScan"

    def __init__(self, source: IteratorSource, var: str) -> None:
        super().__init__(var)
        self.function = source.function
        self.args = list(source.args)

    def describe(self) -> str:
        args = ", ".join(describe_expr(a) for a in self.args)
        return f"FunctionScan {self.function.name}({args}) as {self.var}"

    def _compiled_args(self) -> tuple:
        cached = self.__dict__.get("_compiled")
        if cached is None:
            cached = compile_all(self.args)
            self.__dict__["_compiled"] = cached
        return cached

    def compiled_note(self) -> Optional[str]:
        return compiled_label(self._compiled_args()[1])

    def _run(self, ctx: PlanContext, env: Env) -> Iterator[Env]:
        if ctx.compiled:
            args = [fn(env, ctx) for fn in self._compiled_args()[0]]
        else:
            args = [ctx.eval(a, env) for a in self.args]
        if any(a is NULL for a in args):
            return
        saved = env.get(self.var, _MISSING)
        try:
            for value in self.function.impl(*args):
                env[self.var] = value
                yield env
        finally:
            if saved is _MISSING:
                env.pop(self.var, None)
            else:
                env[self.var] = saved

    def run_batches(self, ctx: PlanContext, env: Env, size: int) -> Iterator[list]:
        self.stats.opens += 1
        if ctx.compiled:
            args = [fn(env, ctx) for fn in self._compiled_args()[0]]
        else:
            args = [ctx.eval(a, env) for a in self.args]
        if any(a is NULL for a in args):
            return
        var = self.var
        batch: list = []
        for value in self.function.impl(*args):
            row = dict(env)
            row[var] = value
            batch.append(row)
            if len(batch) >= size:
                yield batch
                batch = []
        if batch:
            yield batch


# ---------------------------------------------------------------------------
# Row transformers
# ---------------------------------------------------------------------------


class Filter(PlanOp):
    """Keep rows whose predicates are all definitely true (3VL)."""

    label = "Filter"

    def __init__(self, child: PlanOp, predicates: list[BoundExpr]) -> None:
        super().__init__([child])
        self.predicates = list(predicates)

    def describe(self) -> str:
        return "Filter " + " and ".join(
            describe_expr(p) for p in self.predicates
        )

    def _compiled_predicates(self) -> tuple:
        cached = self.__dict__.get("_compiled")
        if cached is None:
            cached = compile_all(self.predicates)
            self.__dict__["_compiled"] = cached
        return cached

    def compiled_note(self) -> Optional[str]:
        return compiled_label(self._compiled_predicates()[1])

    def _run(self, ctx: PlanContext, env: Env) -> Iterator[Env]:
        if ctx.compiled:
            fns, _full = self._compiled_predicates()
            if len(fns) == 1:
                predicate = fns[0]
                for row in self._pull(self.children[0], ctx, env):
                    if predicate(row, ctx) is True:
                        yield row
            else:
                for row in self._pull(self.children[0], ctx, env):
                    for predicate in fns:
                        if predicate(row, ctx) is not True:
                            break
                    else:
                        yield row
            return
        for row in self._pull(self.children[0], ctx, env):
            if all(ctx.eval(p, row) is True for p in self.predicates):
                yield row

    def run_batches(self, ctx: PlanContext, env: Env, size: int) -> Iterator[list]:
        self.stats.opens += 1
        child = self.children[0]
        if ctx.compiled:
            fns, _full = self._compiled_predicates()
            if len(fns) == 1:
                predicate = fns[0]
                for batch in self._pull_batches(child, ctx, env, size):
                    kept = [row for row in batch if predicate(row, ctx) is True]
                    if kept:
                        yield kept
                return
            for batch in self._pull_batches(child, ctx, env, size):
                kept = []
                for row in batch:
                    for predicate in fns:
                        if predicate(row, ctx) is not True:
                            break
                    else:
                        kept.append(row)
                if kept:
                    yield kept
            return
        predicates = self.predicates
        evaluate = ctx.eval
        for batch in self._pull_batches(child, ctx, env, size):
            kept = [
                row
                for row in batch
                if all(evaluate(p, row) is True for p in predicates)
            ]
            if kept:
                yield kept


class SemiJoinProbe(PlanOp):
    """A (possibly negated) membership predicate over a named set,
    answered against the evaluator's memoized member-key set instead of
    rescanning the collection per candidate row."""

    label = "SemiJoinProbe"

    def __init__(self, child: PlanOp, membership: Membership) -> None:
        super().__init__([child])
        self.membership = membership

    def describe(self) -> str:
        return f"SemiJoinProbe {describe_expr(self.membership)}"

    def compiled_note(self) -> Optional[str]:
        # Membership always lowers to an interpreter callback (the
        # memoized key-set machinery lives on the evaluator)
        cached = self.__dict__.get("_compiled")
        if cached is None:
            cached = compile_expr(self.membership)
            self.__dict__["_compiled"] = cached
        return compiled_label(cached.full)

    def _run(self, ctx: PlanContext, env: Env) -> Iterator[Env]:
        node = self.membership
        for row in self._pull(self.children[0], ctx, env):
            self.stats.probes += 1
            if ctx.eval(node, row) is True:
                yield row

    def run_batches(self, ctx: PlanContext, env: Env, size: int) -> Iterator[list]:
        self.stats.opens += 1
        node = self.membership
        stats = self.stats
        evaluate = ctx.eval
        for batch in self._pull_batches(self.children[0], ctx, env, size):
            stats.probes += len(batch)
            kept = [row for row in batch if evaluate(node, row) is True]
            if kept:
                yield kept

    def extra_counters(self) -> str:
        return f" probes={self.stats.probes}"


class NestedLoopJoin(PlanOp):
    """Re-open the inner subtree for every outer row.

    Because the pipeline streams one shared environment, the inner
    subtree sees the outer row's bindings simply by being opened after
    the outer scan bound them — the implicit-join semantics of the
    original nested-loop interpreter, now an explicit operator.
    """

    label = "NestedLoopJoin"

    def __init__(self, outer: PlanOp, inner: PlanOp) -> None:
        super().__init__([outer, inner])

    def child_roles(self) -> list[tuple[str, PlanOp]]:
        return [("outer", self.children[0]), ("inner", self.children[1])]

    def _run(self, ctx: PlanContext, env: Env) -> Iterator[Env]:
        outer, inner = self.children
        inner_stats = inner.stats
        for row in self._pull(outer, ctx, env):
            inner.open(ctx, row)
            inner_iter = inner._iters[-1]
            try:
                for match in inner_iter:
                    inner_stats.rows_out += 1
                    yield match
            finally:
                inner.close()

    def run_batches(self, ctx: PlanContext, env: Env, size: int) -> Iterator[list]:
        self.stats.opens += 1
        outer, inner = self.children
        inner_stats = inner.stats
        pending: list = []
        for batch in self._pull_batches(outer, ctx, env, size):
            for row in batch:
                # the inner subtree sees the outer row as its incoming
                # environment; its batches already carry private rows
                for inner_batch in inner.batches(ctx, row, size):
                    inner_stats.rows_out += len(inner_batch)
                    pending.extend(inner_batch)
                    if len(pending) >= size:
                        yield pending
                        pending = []
        if pending:
            yield pending


class _SpilledBuild:
    """A hash-join build side that overflowed its memory budget.

    Holds the Grace partitions (``SpillFile`` of ``(key, member)``
    records, routed by ``partition_hash(key)``); the probe phase
    partitions its own input the same way and joins partition by
    partition. One-shot: the files are consumed by the probe that
    triggered the build and never memoized on the plan.
    """

    __slots__ = ("parts",)

    def __init__(self, parts: list) -> None:
        self.parts = parts

    def close(self) -> None:
        for part in self.parts:
            part.close()


class HashJoin(PlanOp):
    """Equi-join: build a hash table over the build subtree once, probe
    it per outer row.

    The build side is env-independent by construction (the optimizer only
    annotates full scans of named sets), so the table is memoized **on
    the plan** and reused across executions until the database's data
    version moves — any append/delete/replace/set invalidates it.  Null
    keys follow 3VL: ``=`` drops them on both sides; ``is`` keeps them
    (``null is null`` is true).

    Under an active ``memory_budget`` the build accounts each loaded
    member against the statement's governor; a refused reservation
    switches to a Grace-style spilled build (see :class:`_SpilledBuild`)
    whose probe phase reproduces the in-memory output byte for byte:
    probe rows are tagged with their input position, partitions join
    independently, and a final stable sort by position restores the
    probe-driven output order (member order within a position is the
    build-side insertion order either way).
    """

    label = "HashJoin"

    def __init__(
        self,
        outer: PlanOp,
        build: PlanOp,
        binding: RangeBinding,
        cardinality: int = 0,
    ) -> None:
        super().__init__([outer, build])
        self.var = binding.name
        self.build_key = binding.hash_build_key
        self.probe_key = binding.hash_probe_key
        self.join_op = binding.hash_join_op
        self.detail = binding.join_detail
        self.build_cardinality = cardinality
        #: memoized build table as one (stamp, table) tuple — written
        #: and read with single attribute operations so concurrent
        #: readers sharing a cached plan across threads always see a
        #: consistent pair (never a table paired with another's stamp)
        self._memo: Optional[tuple] = None

    def describe(self) -> str:
        op = self.join_op
        return (
            f"HashJoin {describe_expr(self.probe_key)} {op} "
            f"{describe_expr(self.build_key)} as {self.var}"
        )

    def child_roles(self) -> list[tuple[str, PlanOp]]:
        return [("outer", self.children[0]), ("build", self.children[1])]

    def extra_counters(self) -> str:
        return (
            f" builds={self.stats.builds} probes={self.stats.probes}"
            f"{_spill_note(self.stats)}"
        )

    def invalidate(self) -> None:
        """Drop the memoized build table (tests / explicit flushes)."""
        self._memo = None

    def _compiled_keys(self) -> tuple:
        cached = self.__dict__.get("_compiled")
        if cached is None:
            build = compile_expr(self.build_key)
            probe = compile_expr(self.probe_key)
            cached = (build.fn, probe.fn, build.full and probe.full)
            self.__dict__["_compiled"] = cached
        return cached

    def compiled_note(self) -> Optional[str]:
        return compiled_label(self._compiled_keys()[2])

    def _table_for(self, ctx: PlanContext) -> Any:
        governor = ctx.governor
        budgeted = governor is not None and governor.memory_budget > 0
        stamp = (ctx.db.data_version, ctx.session_stamp)
        memo = self._memo  # single read: thread-consistent pair
        if not budgeted and memo is not None and memo[0] == stamp:
            return memo[1]
        table = self._build(ctx)
        if budgeted or isinstance(table, _SpilledBuild):
            # spilled partitions are consumed by this probe, and a
            # budgeted statement must account every build it uses — a
            # memoized table is exactly the unbounded cross-statement
            # memory a budget forbids, so neither is ever memoized
            return table
        self._memo = (stamp, table)
        return table

    def _build_entries(self, ctx: PlanContext) -> Iterator[tuple]:
        """Stream the build side as ``(key, member)`` pairs, counting
        build stats exactly as the in-memory build always did."""
        build = self.children[1]
        build_stats = build.stats
        build_fn = self._compiled_keys()[0] if ctx.compiled else None
        stats = self.stats
        if ctx.exec_mode != "row":
            # batch-at-a-time build: the pipeline breaker consumes the
            # build subtree's batches (which may themselves run fused)
            for batch in build.batches(ctx, {}, ctx.batch_size):
                build_stats.rows_out += len(batch)
                stats.build_rows += len(batch)
                for row in batch:
                    if build_fn is not None:
                        value = build_fn(row, ctx)
                    else:
                        value = ctx.eval(self.build_key, row)
                    key = join_key(value, self.join_op)
                    if key is None:
                        continue
                    yield key, row[self.var]
            return
        env: Env = {}
        build.open(ctx, env)
        build_iter = build._iters[-1]
        try:
            for _ in build_iter:
                build_stats.rows_out += 1
                stats.build_rows += 1
                if build_fn is not None:
                    value = build_fn(env, ctx)
                else:
                    value = ctx.eval(self.build_key, env)
                key = join_key(value, self.join_op)
                if key is None:
                    continue
                yield key, env[self.var]
        finally:
            build.close()

    def _build(self, ctx: PlanContext) -> Any:
        self.stats.builds += 1
        table: dict[Any, list] = {}
        governor = ctx.governor
        budgeted = governor is not None and governor.memory_budget > 0
        entries = self._build_entries(ctx)
        reserved = 0
        for key, member in entries:
            if budgeted:
                cost = row_footprint(member)
                if not governor.reserve(cost):
                    governor.release(reserved)
                    governor.spilled()
                    return self._spill_build(table, [(key, member)], entries)
                reserved += cost
            table.setdefault(key, []).append(member)
        return table

    def _spill_build(
        self, table: dict, head: list, entries: Iterator[tuple]
    ) -> _SpilledBuild:
        """Partition the partial in-memory ``table`` plus the rest of the
        build stream into Grace spill files.

        Per-key member order is preserved: every member of a key lands in
        the same partition file, prefix members (from ``table``) before
        the rest, both in build order.
        """
        parts = [SpillFile() for _ in range(SPILL_PARTITIONS)]
        for key, members in table.items():
            part = parts[partition_hash(key) % SPILL_PARTITIONS]
            for member in members:
                part.append((key, member))
        for key, member in chain(head, entries):
            parts[partition_hash(key) % SPILL_PARTITIONS].append((key, member))
        stats = self.stats
        stats.spill_partitions = SPILL_PARTITIONS
        stats.spill_bytes = sum(part.bytes_written for part in parts)
        return _SpilledBuild(parts)

    def _grace_batches(
        self, spill: _SpilledBuild, ctx: PlanContext, env: Env, size: int
    ) -> Iterator[list]:
        """Probe a spilled build: partition the probe input the same way
        (remembering each row's position), join partition by partition,
        then restore probe order with a stable sort on position."""
        stats = self.stats
        var = self.var
        join_op = self.join_op
        probe_fn = self._compiled_keys()[1] if ctx.compiled else None
        evaluate = ctx.eval
        probe_key = self.probe_key
        dop = len(spill.parts)
        probes = [SpillFile() for _ in range(dop)]
        try:
            pos = 0
            for batch in self._pull_batches(self.children[0], ctx, env, size):
                for row in batch:
                    stats.probes += 1
                    if probe_fn is not None:
                        value = probe_fn(row, ctx)
                    else:
                        value = evaluate(probe_key, row)
                    key = join_key(value, join_op)
                    if key is not None:
                        probes[partition_hash(key) % dop].append(
                            (pos, key, row)
                        )
                    pos += 1
            tagged: list = []
            for part in range(dop):
                table: dict[Any, list] = {}
                for key, member in spill.parts[part]:
                    table.setdefault(key, []).append(member)
                for ppos, key, row in probes[part]:
                    members = table.get(key)
                    if not members:
                        continue
                    if len(members) == 1:
                        row[var] = members[0]
                        tagged.append((ppos, row))
                    else:
                        for member in members:
                            match = dict(row)
                            match[var] = member
                            tagged.append((ppos, match))
            # stable: rows of one position keep build insertion order
            tagged.sort(key=lambda entry: entry[0])
            stats.spill_bytes += sum(f.bytes_written for f in probes)
            pending = [row for _pos, row in tagged]
            for start in range(0, len(pending), size):
                yield pending[start : start + size]
        finally:
            spill.close()
            for f in probes:
                f.close()

    def _run(self, ctx: PlanContext, env: Env) -> Iterator[Env]:
        table = self._table_for(ctx)
        if isinstance(table, _SpilledBuild):
            for batch in self._grace_batches(table, ctx, env, ctx.batch_size):
                yield from batch
            return
        saved = env.get(self.var, _MISSING)
        probe_fn = self._compiled_keys()[1] if ctx.compiled else None
        try:
            for row in self._pull(self.children[0], ctx, env):
                self.stats.probes += 1
                if probe_fn is not None:
                    value = probe_fn(row, ctx)
                else:
                    value = ctx.eval(self.probe_key, row)
                key = join_key(value, self.join_op)
                if key is None:
                    continue
                for member in table.get(key, ()):
                    row[self.var] = member
                    yield row
        finally:
            if saved is _MISSING:
                env.pop(self.var, None)
            else:
                env[self.var] = saved

    def run_batches(self, ctx: PlanContext, env: Env, size: int) -> Iterator[list]:
        self.stats.opens += 1
        table = self._table_for(ctx)
        if isinstance(table, _SpilledBuild):
            yield from self._grace_batches(table, ctx, env, size)
            return
        stats = self.stats
        var = self.var
        join_op = self.join_op
        probe_fn = self._compiled_keys()[1] if ctx.compiled else None
        evaluate = ctx.eval
        probe_key = self.probe_key
        pending: list = []
        for batch in self._pull_batches(self.children[0], ctx, env, size):
            for row in batch:
                stats.probes += 1
                if probe_fn is not None:
                    value = probe_fn(row, ctx)
                else:
                    value = evaluate(probe_key, row)
                key = join_key(value, join_op)
                if key is None:
                    continue
                members = table.get(key)
                if not members:
                    continue
                if len(members) == 1:
                    # rows are private snapshots: bind in place, no copy
                    row[var] = members[0]
                    pending.append(row)
                else:
                    for member in members:
                        match = dict(row)
                        match[var] = member
                        pending.append(match)
                if len(pending) >= size:
                    yield pending
                    pending = []
        if pending:
            yield pending


class UniversalCheck(PlanOp):
    """∀ semantics: an input row survives iff the where clause is
    definitely true for every combination of the universal bindings.

    The universal sources are ordinary scan subtrees re-opened per check
    (their rows count as scanned rows); the check early-exits on the
    first failing combination.  Lowering never emits this operator when
    the query has no where clause — ∀ over anything is then vacuously
    true and the universal sets are never iterated.
    """

    label = "UniversalCheck"

    def __init__(
        self,
        child: PlanOp,
        checks: list[tuple[RangeBinding, PlanOp]],
        where: BoundExpr,
    ) -> None:
        super().__init__([child] + [subtree for _b, subtree in checks])
        self.checks = checks
        self.where = where

    def describe(self) -> str:
        names = ", ".join(b.name for b, _s in self.checks)
        return f"UniversalCheck forall {names}: {describe_expr(self.where)}"

    def child_roles(self) -> list[tuple[str, PlanOp]]:
        roles = [("", self.children[0])]
        roles.extend(
            (f"forall {b.name}", subtree) for b, subtree in self.checks
        )
        return roles

    def _compiled_where(self) -> tuple:
        cached = self.__dict__.get("_compiled")
        if cached is None:
            cached = compile_expr(self.where)
            self.__dict__["_compiled"] = cached
        return cached

    def compiled_note(self) -> Optional[str]:
        return compiled_label(self._compiled_where().full)

    def _run(self, ctx: PlanContext, env: Env) -> Iterator[Env]:
        for row in self._pull(self.children[0], ctx, env):
            if self._holds(ctx, row, 0):
                yield row

    def run_batches(self, ctx: PlanContext, env: Env, size: int) -> Iterator[list]:
        # the ∀ check subtrees always iterate row-at-a-time (they bind
        # into the candidate row and early-exit per combination); only
        # the input side exchanges batches
        self.stats.opens += 1
        for batch in self._pull_batches(self.children[0], ctx, env, size):
            kept = [row for row in batch if self._holds(ctx, row, 0)]
            if kept:
                yield kept

    def _holds(self, ctx: PlanContext, env: Env, depth: int) -> bool:
        if depth == len(self.checks):
            if ctx.compiled:
                return self._compiled_where().fn(env, ctx) is True
            return ctx.eval(self.where, env) is True
        binding, subtree = self.checks[depth]
        saved = env.get(binding.name, _MISSING)
        subtree.open(ctx, env)
        subtree_iter = subtree._iters[-1]
        subtree_stats = subtree.stats
        try:
            for _ in subtree_iter:
                subtree_stats.rows_out += 1
                if not self._holds(ctx, env, depth + 1):
                    return False
            return True
        finally:
            subtree.close()
            if saved is _MISSING:
                env.pop(binding.name, None)
            else:
                env[binding.name] = saved


class Aggregate(PlanOp):
    """Compute the query's aggregate partition tables at open, then
    stream the input through unchanged.

    Global and partitioned aggregates materialize their tables by running
    their (separately lowered) inner pipelines once; correlated
    aggregates register a memo filled on demand during expression
    evaluation.  Sitting at the top of the binding pipeline guarantees
    the tables exist before any downstream expression is evaluated.
    """

    label = "Aggregate"

    def __init__(self, child: PlanOp, query: BoundQuery) -> None:
        super().__init__([child])
        self.query = query

    def describe(self) -> str:
        modes = ", ".join(a.mode for a in self.query.aggregates)
        return f"Aggregate [{modes}]"

    def compiled_note(self) -> Optional[str]:
        # input extraction (argument + partition key) is compiled by the
        # evaluator's per-statement memo; this only reports completeness
        cached = self.__dict__.get("_compiled")
        if cached is None:
            exprs: list[BoundExpr] = []
            for aggregate in self.query.aggregates:
                exprs.append(aggregate.argument)
                if aggregate.inner_key is not None:
                    exprs.append(aggregate.inner_key)
            _fns, full = compile_all(exprs)
            cached = (None, full)
            self.__dict__["_compiled"] = cached
        return compiled_label(cached[1])

    def extra_counters(self) -> str:
        return _spill_note(self.stats)

    def open(self, ctx: PlanContext, env: Env) -> None:
        # tables must be filled before any downstream next() — eagerly,
        # not inside the lazy generator
        ctx.evaluator._precompute_aggregates(
            self.query, env, ctx.tables, stats=self.stats
        )
        super().open(ctx, env)

    def _run(self, ctx: PlanContext, env: Env) -> Iterator[Env]:
        yield from self._pull(self.children[0], ctx, env)

    def run_batches(self, ctx: PlanContext, env: Env, size: int) -> Iterator[list]:
        # pipeline breaker: aggregate tables must exist before any
        # downstream evaluation, exactly as in the row-mode open()
        self.stats.opens += 1
        ctx.evaluator._precompute_aggregates(
            self.query, env, ctx.tables, stats=self.stats
        )
        yield from self._pull_batches(self.children[0], ctx, env, size)


# ---------------------------------------------------------------------------
# Row finishers (tuple level)
# ---------------------------------------------------------------------------


class Project(PlanOp):
    """Evaluate the target list per environment, producing row tuples.

    With ``unique`` set, duplicates (by canonical key) are dropped before
    sort keys are computed.  When the retrieve has a sort clause the
    operator emits ``(row, sort_keys)`` pairs for the Sort above it.
    """

    label = "Project"

    def __init__(
        self,
        child: PlanOp,
        targets: list,
        unique: bool = False,
        order: Optional[list] = None,
    ) -> None:
        super().__init__([child])
        self.targets = targets
        self.unique = unique
        self.order = order or []

    def describe(self) -> str:
        cols = ", ".join(t.label for t in self.targets)
        unique = "unique " if self.unique else ""
        return f"Project {unique}[{cols}]"

    def _compiled_targets(self) -> tuple:
        cached = self.__dict__.get("_compiled")
        if cached is None:
            target_fns, targets_full = compile_all(
                [t.expression for t in self.targets]
            )
            order_fns, order_full = compile_all(
                [expr for expr, _desc in self.order]
            )
            cached = (target_fns, order_fns, targets_full and order_full)
            self.__dict__["_compiled"] = cached
        return cached

    def compiled_note(self) -> Optional[str]:
        return compiled_label(self._compiled_targets()[2])

    def _run(self, ctx: PlanContext, env: Env) -> Iterator[Any]:
        from repro.excess.evaluator import canonical_key

        seen: set = set()
        if ctx.compiled:
            target_fns, order_fns, _full = self._compiled_targets()
            for row_env in self._pull(self.children[0], ctx, env):
                row = tuple(fn(row_env, ctx) for fn in target_fns)
                if self.unique:
                    key = tuple(canonical_key(v) for v in row)
                    if key in seen:
                        continue
                    seen.add(key)
                if order_fns:
                    keys = tuple(fn(row_env, ctx) for fn in order_fns)
                    yield row, keys
                else:
                    yield row
            return
        for row_env in self._pull(self.children[0], ctx, env):
            row = tuple(
                ctx.eval(t.expression, row_env) for t in self.targets
            )
            if self.unique:
                key = tuple(canonical_key(v) for v in row)
                if key in seen:
                    continue
                seen.add(key)
            if self.order:
                keys = tuple(
                    ctx.eval(expr, row_env) for expr, _desc in self.order
                )
                yield row, keys
            else:
                yield row

    def run_batches(self, ctx: PlanContext, env: Env, size: int) -> Iterator[list]:
        from repro.excess.evaluator import canonical_key

        self.stats.opens += 1
        seen: set = set()
        unique = self.unique
        out: list = []
        if ctx.compiled:
            target_fns, order_fns, _full = self._compiled_targets()
            for batch in self._pull_batches(self.children[0], ctx, env, size):
                for row_env in batch:
                    row = tuple(fn(row_env, ctx) for fn in target_fns)
                    if unique:
                        key = tuple(canonical_key(v) for v in row)
                        if key in seen:
                            continue
                        seen.add(key)
                    if order_fns:
                        out.append(
                            (row, tuple(fn(row_env, ctx) for fn in order_fns))
                        )
                    else:
                        out.append(row)
                if len(out) >= size:
                    yield out
                    out = []
            if out:
                yield out
            return
        for batch in self._pull_batches(self.children[0], ctx, env, size):
            for row_env in batch:
                row = tuple(
                    ctx.eval(t.expression, row_env) for t in self.targets
                )
                if unique:
                    key = tuple(canonical_key(v) for v in row)
                    if key in seen:
                        continue
                    seen.add(key)
                if self.order:
                    out.append(
                        (
                            row,
                            tuple(
                                ctx.eval(expr, row_env)
                                for expr, _desc in self.order
                            ),
                        )
                    )
                else:
                    out.append(row)
            if len(out) >= size:
                yield out
                out = []
        if out:
            yield out


class Sort(PlanOp):
    """Materialize and stably sort the input rows by their sort keys;
    null keys deterministically last regardless of direction."""

    label = "Sort"

    def __init__(self, child: PlanOp, order: list) -> None:
        super().__init__([child])
        self.order = order

    def describe(self) -> str:
        keys = ", ".join(
            describe_expr(expr) + (" desc" if desc else "")
            for expr, desc in self.order
        )
        return f"Sort [{keys}]"

    def extra_counters(self) -> str:
        return _spill_note(self.stats)

    def _run(self, ctx: PlanContext, env: Env) -> Iterator[tuple]:
        governor = ctx.governor
        if governor is not None and governor.memory_budget > 0:
            yield from self._external_sort(ctx, env, ctx.batch_size, governor)
            return
        pairs = list(self._pull(self.children[0], ctx, env))
        yield from sort_rows(pairs, self.order)

    def run_batches(self, ctx: PlanContext, env: Env, size: int) -> Iterator[list]:
        # pipeline breaker: materialize every input batch, sort once,
        # re-emit in batch-sized slices
        self.stats.opens += 1
        governor = ctx.governor
        if governor is not None and governor.memory_budget > 0:
            rows = self._external_sort(ctx, env, size, governor)
        else:
            pairs: list = []
            for batch in self._pull_batches(self.children[0], ctx, env, size):
                pairs.extend(batch)
            rows = sort_rows(pairs, self.order)
        for start in range(0, len(rows), size):
            yield rows[start : start + size]

    def _flush_run(self, pending: list, order: list) -> SpillFile:
        """Sort one in-memory run and spill it as ``(seq, keys, row)``."""
        run = SpillFile()
        for (row, seq), keys in sort_pairs(pending, order):
            run.append((seq, keys, row))
        return run

    def _external_sort(
        self, ctx: PlanContext, env: Env, size: int, governor: Any
    ) -> list:
        """Budget-accounted sort: accumulate ``(row, keys)`` pairs until
        a reservation is refused, spill the sorted run, and merge all
        runs under :class:`_OrderKey` — which reproduces the in-memory
        order (and, via the fallback below, its error behaviour).
        """
        order = self.order
        descs = [descending for _expr, descending in order]
        runs: list[SpillFile] = []
        #: [((row, seq), keys)] — seq is the global input position, the
        #: stability tiebreak the merge needs across runs
        pending: list = []
        reserved = 0
        seq = 0
        try:
            for batch in self._pull_batches(self.children[0], ctx, env, size):
                for row, keys in batch:
                    cost = row_footprint(row) + row_footprint(keys)
                    if not governor.reserve(cost):
                        if pending:
                            runs.append(self._flush_run(pending, order))
                            pending = []
                            governor.release(reserved)
                            reserved = 0
                            governor.spilled()
                        if governor.reserve(cost):
                            reserved += cost
                        # else: a single row over budget — hold it anyway
                    else:
                        reserved += cost
                    pending.append(((row, seq), keys))
                    seq += 1
            if not runs:  # everything fit: identical to the serial path
                return [entry[0][0] for entry in sort_pairs(pending, order)]
            tail = [
                (entry[0][1], entry[1], entry[0][0])
                for entry in sort_pairs(pending, order)
            ]
            self.stats.spill_partitions = len(runs)
            self.stats.spill_bytes = sum(run.bytes_written for run in runs)
            streams = [iter(run) for run in runs]
            if tail:
                streams.append(iter(tail))
            merged = heapq.merge(
                *streams,
                key=lambda rec: _OrderKey(rec[1], rec[0], descs),
            )
            try:
                return [rec[2] for rec in merged]
            except TypeError:
                # incomparable keys: redo the sort in memory over the
                # input order so the error (or result) is byte-identical
                # to the serial path's
                everything: list = []
                for run in runs:
                    everything.extend(run)
                everything.extend(tail)
                everything.sort(key=lambda rec: rec[0])
                return sort_rows(
                    [(rec[2], rec[1]) for rec in everything], order
                )
        finally:
            for run in runs:
                run.close()


class StoreInto(PlanOp):
    """Materialize the finished rows as a named set of tuples
    (``retrieve ... into Name``), passing the rows through."""

    label = "StoreInto"

    def __init__(self, child: PlanOp, bound: BoundRetrieve) -> None:
        super().__init__([child])
        self.bound = bound
        #: human-readable outcome of the last store (result message)
        self.message = ""

    def describe(self) -> str:
        return f"StoreInto {self.bound.into}"

    def _run(self, ctx: PlanContext, env: Env) -> Iterator[tuple]:
        rows = list(self._pull(self.children[0], ctx, env))
        self.message = ctx.evaluator._store_rows(self.bound, rows)
        yield from rows

    def run_batches(self, ctx: PlanContext, env: Env, size: int) -> Iterator[list]:
        self.stats.opens += 1
        rows: list = []
        for batch in self._pull_batches(self.children[0], ctx, env, size):
            rows.extend(batch)
        self.message = ctx.evaluator._store_rows(self.bound, rows)
        for start in range(0, len(rows), size):
            yield rows[start : start + size]


# ---------------------------------------------------------------------------
# Exchange operators (parallel execution)
# ---------------------------------------------------------------------------


def _canonical_partition(value: Any) -> Any:
    """Collapse values that compare (and hash-bucket) equal in serial
    execution onto one representation: ``1``, ``1.0`` and ``True`` are
    the same dict key, so they must land in the same partition."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, tuple):
        return tuple(_canonical_partition(item) for item in value)
    return value


def partition_hash(key: Any) -> int:
    """A process-stable hash of a canonical join key.

    Python's ``hash()`` is randomized per process (PYTHONHASHSEED), so
    spawn-started workers would disagree about bucket assignment.
    CRC-32 over the repr of the canonicalized key is stable everywhere;
    collisions are harmless (partitioning only needs co-location, not
    injectivity).
    """
    text = repr(_canonical_partition(key))
    return zlib.crc32(text.encode("utf-8", "backslashreplace"))


class ExchangePartition(PlanOp):
    """Restrict the child's stream to the current worker's partition.

    With no shard descriptor on the context (serial execution, or the
    parent process running the plan itself), the operator is a pure
    passthrough — the same plan object executes serially and in
    parallel workers without rewriting.

    ``mode="range"`` takes a contiguous slice of the child's output (for
    a SeqScan child the member list is sliced *before* row dicts are
    built), so concatenating the parts in part order reproduces the
    serial stream exactly.  ``mode="hash"`` routes each row by
    ``partition_hash(join_key(key))`` so all rows of one key value land
    in one partition; ``tag_pos=True`` additionally stamps the row's
    global input position into ``"#pos"`` so the merge can restore
    serial order.
    """

    label = "ExchangePartition"

    def __init__(
        self,
        child: PlanOp,
        mode: str,
        dop: int,
        key: Optional[BoundExpr] = None,
        key_op: str = "=",
        tag_pos: bool = False,
    ) -> None:
        super().__init__([child])
        self.mode = mode
        self.dop = dop
        self.key = key
        self.key_op = key_op
        self.tag_pos = tag_pos
        self.est_rows = child.est_rows

    def describe(self) -> str:
        if self.mode == "hash":
            return f"ExchangePartition hash({describe_expr(self.key)})"
        return "ExchangePartition range"

    def exchange_note(self) -> Optional[str]:
        if self.mode == "hash":
            return f"[hash({describe_expr(self.key)}), dop={self.dop}]"
        return f"[range, dop={self.dop}]"

    def _compiled_key(self) -> tuple:
        cached = self.__dict__.get("_compiled")
        if cached is None:
            compiled = compile_expr(self.key)
            cached = (compiled.fn, compiled.full)
            self.__dict__["_compiled"] = cached
        return cached

    def compiled_note(self) -> Optional[str]:
        if self.mode != "hash":
            return None
        return compiled_label(self._compiled_key()[1])

    def _slice(self, n: int, shard: Any) -> tuple[int, int]:
        return (shard.part * n) // shard.dop, ((shard.part + 1) * n) // shard.dop

    def run_batches(self, ctx: PlanContext, env: Env, size: int) -> Iterator[list]:
        self.stats.opens += 1
        shard = ctx.exchange
        if shard is None:
            yield from self._pull_batches(self.children[0], ctx, env, size)
            return
        if self.mode == "range":
            yield from self._range_batches(ctx, env, size, shard)
        else:
            yield from self._hash_batches(ctx, env, size, shard)

    def _range_batches(
        self, ctx: PlanContext, env: Env, size: int, shard: Any
    ) -> Iterator[list]:
        child = self.children[0]
        child_stats = child.stats
        stats = self.stats
        if isinstance(child, SeqScan) and not env:
            # slice the member list before building row dicts: the whole
            # point of range partitioning is that each worker pays only
            # for its 1/dop share of the scan
            child_stats.opens += 1
            members = list(_scan_members(ctx.db, child.set_name))
            lo, hi = self._slice(len(members), shard)
            var = child.var
            batch: list = []
            for member in members[lo:hi]:
                batch.append({var: member})
                if len(batch) >= size:
                    child_stats.rows_out += len(batch)
                    stats.rows_in += len(batch)
                    yield batch
                    batch = []
            if batch:
                child_stats.rows_out += len(batch)
                stats.rows_in += len(batch)
                yield batch
            return
        rows: list = []
        for chunk in self._pull_batches(child, ctx, env, size):
            rows.extend(chunk)
        lo, hi = self._slice(len(rows), shard)
        for start in range(lo, hi, size):
            yield rows[start : min(start + size, hi)]

    def _hash_batches(
        self, ctx: PlanContext, env: Env, size: int, shard: Any
    ) -> Iterator[list]:
        part, dop = shard.part, shard.dop
        key_fn = self._compiled_key()[0] if ctx.compiled else None
        evaluate = ctx.eval
        key_expr = self.key
        key_op = self.key_op
        tag = self.tag_pos
        pos = -1
        out: list = []
        for chunk in self._pull_batches(self.children[0], ctx, env, size):
            for row in chunk:
                pos += 1
                try:
                    value = key_fn(row, ctx) if key_fn else evaluate(key_expr, row)
                    key = join_key(value, key_op)
                except EvaluationError:
                    # a partition-key failure is a placement decision,
                    # not an error: keep the row locally so the operator
                    # that evaluates this expression for real raises (or
                    # a filter in between drops the row, as serially)
                    key = None
                bucket = (partition_hash(key) if key is not None else pos) % dop
                if bucket != part:
                    continue
                if tag:
                    row["#pos"] = pos
                out.append(row)
                if len(out) >= size:
                    yield out
                    out = []
        if out:
            yield out

    def _run(self, ctx: PlanContext, env: Env) -> Iterator[Env]:
        if ctx.exchange is None:
            yield from self._pull(self.children[0], ctx, env)
            return
        # workers always execute fragments batch-at-a-time; the row-mode
        # path only ever runs serially (passthrough above)
        for batch in self.run_batches(ctx, env, ctx.batch_size):
            yield from batch


class ExchangeMerge(PlanOp):
    """Gather the partitioned pipeline below from the worker pool.

    When the executing evaluator carries a parallel runner (parent
    process, ``parallel_mode=process``), the merge hands its subtree to
    the runner, which ships it to the workers and returns the gathered
    rows — order-preserving for both modes (range parts concatenate in
    part order; hash parts carry ``"#pos"`` tags and are stably
    re-sorted).  Without a runner — or when the runner declines (MVCC
    snapshot active, pool failure) — the merge is a passthrough and the
    subtree runs serially in-process, bit-identically.
    """

    label = "ExchangeMerge"

    def __init__(
        self, child: PlanOp, dop: int, mode: str, ordered: bool = True
    ) -> None:
        super().__init__([child])
        self.dop = dop
        self.mode = mode
        self.ordered = ordered
        self.est_rows = child.est_rows

    def describe(self) -> str:
        return "ExchangeMerge"

    def exchange_note(self) -> Optional[str]:
        return f"[gather, dop={self.dop}]"

    def _gather(self, ctx: PlanContext, env: Env) -> Optional[list]:
        runner = ctx.parallel
        if runner is None or env:
            return None
        rows = runner.run_exchange(self, ctx)
        if rows is not None:
            self.stats.rows_in += len(rows)
        return rows

    def run_batches(self, ctx: PlanContext, env: Env, size: int) -> Iterator[list]:
        self.stats.opens += 1
        rows = self._gather(ctx, env)
        if rows is not None:
            for start in range(0, len(rows), size):
                yield rows[start : start + size]
            return
        yield from self._pull_batches(self.children[0], ctx, env, size)

    def _run(self, ctx: PlanContext, env: Env) -> Iterator[Any]:
        rows = self._gather(ctx, env)
        if rows is not None:
            yield from rows
            return
        yield from self._pull(self.children[0], ctx, env)


class ExchangeBroadcast(PlanOp):
    """Mark a subtree as replicated to every worker.

    Execution is a pure passthrough: each worker simply runs the subtree
    in full against its inherited snapshot (no rows cross processes), so
    the operator only exists to make the replication decision visible in
    EXPLAIN and auditable by tests.
    """

    label = "ExchangeBroadcast"

    def __init__(self, child: PlanOp, dop: int) -> None:
        super().__init__([child])
        self.dop = dop
        self.est_rows = child.est_rows

    def describe(self) -> str:
        return "ExchangeBroadcast"

    def exchange_note(self) -> Optional[str]:
        return f"[broadcast, dop={self.dop}]"

    def run_batches(self, ctx: PlanContext, env: Env, size: int) -> Iterator[list]:
        self.stats.opens += 1
        yield from self._pull_batches(self.children[0], ctx, env, size)

    def _run(self, ctx: PlanContext, env: Env) -> Iterator[Any]:
        yield from self._pull(self.children[0], ctx, env)


SCAN_OPS = (SeqScan, IndexScan, PathExpand, FunctionScan)


# ---------------------------------------------------------------------------
# Shared algorithms
# ---------------------------------------------------------------------------


def join_key(value: Any, op: str) -> Optional[Any]:
    """The hash key for one side of a join conjunct.

    Returns None when the row cannot match anything: a null value under
    ``=`` is unknown against every member (3VL), so it neither enters
    the build table nor probes.  Under ``is``, null keys *do* participate
    — ``null is null`` is true (both denote no object) — and non-objects
    raise exactly as nested-loop ``is`` would.
    """
    from repro.excess.evaluator import canonical_key

    if op == "is":
        if value is NULL:
            return ("null",)
        if isinstance(value, Ref):
            return ("ref", value.oid)
        if isinstance(value, TupleInstance) and value.oid is not None:
            return ("ref", value.oid)
        raise EvaluationError(
            f"'is'/'isnot' compares object references, got {value!r}"
        )
    if value is NULL:
        return None
    return canonical_key(value)


def sort_pairs(pairs: list, order: list) -> list:
    """Stable multi-key sort of ``(row, keys)`` pairs; nulls sort last
    regardless of direction. Returns the sorted pairs (keys kept — the
    external run-merge needs them for merging).

    Sorting is applied key by key, least significant first: Python's
    sort is stable (including under ``reverse=True``), so each more
    significant pass preserves the less significant ordering, and rows
    with equal keys keep their input order deterministically.
    """
    decorated = list(pairs)
    for position in reversed(range(len(order))):
        _expr, descending = order[position]
        nulls = [pair for pair in decorated if pair[1][position] is NULL]
        rest = [pair for pair in decorated if pair[1][position] is not NULL]

        def key_of(pair, position=position):
            value = pair[1][position]
            if isinstance(value, Ref):
                return value.oid
            if isinstance(value, bool):
                return int(value)
            return value

        try:
            rest.sort(key=key_of, reverse=descending)
        except TypeError as exc:
            raise EvaluationError(
                f"sort keys are not mutually comparable: {exc}"
            ) from exc
        decorated = rest + nulls
    return decorated


def sort_rows(pairs: list[tuple[tuple, tuple]], order: list) -> list[tuple]:
    """:func:`sort_pairs`, undecorated to just the rows."""
    return [row for row, _keys in sort_pairs(pairs, order)]


def _merge_key_value(value: Any) -> Any:
    """The comparison image of one sort-key value (``key_of`` above)."""
    if isinstance(value, Ref):
        return value.oid
    if isinstance(value, bool):
        return int(value)
    return value


class _OrderKey:
    """Total-order wrapper over ``(keys, seq)`` for merging sorted runs.

    Implements most-significant-key-first comparison with exactly the
    semantics :func:`sort_pairs` realizes through its stable
    least-significant-first passes — per position: nulls after every
    non-null in both directions, ``Ref`` by oid, bool as int, direction
    by reversal — with the global input sequence number as the final
    tiebreak, which is precisely what stability gives the in-memory
    sort. Merging runs under this order therefore reproduces the
    in-memory order row for row.
    """

    __slots__ = ("keys", "seq", "descs")

    def __init__(self, keys: tuple, seq: int, descs: list) -> None:
        self.keys = keys
        self.seq = seq
        self.descs = descs

    def __lt__(self, other: "_OrderKey") -> bool:
        for position, descending in enumerate(self.descs):
            a = self.keys[position]
            b = other.keys[position]
            a_null = a is NULL
            b_null = b is NULL
            if a_null or b_null:
                if a_null and b_null:
                    continue
                return b_null  # the non-null side sorts first
            a = _merge_key_value(a)
            b = _merge_key_value(b)
            if a == b:
                continue
            less = a < b  # may raise TypeError: caller falls back
            return (not less) if descending else less
        return self.seq < other.seq


# ---------------------------------------------------------------------------
# Lowering: annotated BoundQuery → operator tree
# ---------------------------------------------------------------------------


def _is_semi_membership(node: BoundExpr) -> bool:
    return (
        isinstance(node, Membership)
        and node.semi_join
        and node.collection.kind == "named"
    )


def _flatten_conjuncts(where: Optional[BoundExpr]) -> list[BoundExpr]:
    if where is None:
        return []
    if isinstance(where, Binary) and where.kind == "bool" and where.op == "and":
        return _flatten_conjuncts(where.left) + _flatten_conjuncts(where.right)
    return [where]


def _source_op(binding: RangeBinding, catalog: Any) -> PlanOp:
    """Lower one binding's source to its access-method operator.

    Estimates come from the optimizer's cost-model annotations when it
    ran (``est_base_rows``); the structural defaults below cover
    unoptimized lowering (optimizer off, function bodies) so every
    operator always carries a non-None ``est_rows``.
    """
    source = binding.source
    if isinstance(source, NamedSetSource):
        if binding.access == "index" and binding.index_descriptor is not None:
            op: PlanOp = IndexScan(binding)
            cardinality = catalog.cardinality(source.set_name)
            op.est_rows = (
                binding.est_base_rows
                if binding.est_base_rows is not None
                else (1 if binding.index_op == "=" else max(1, cardinality // 3))
            )
            return op
        op = SeqScan(source.set_name, binding.name)
        op.est_rows = (
            binding.est_base_rows
            if binding.est_base_rows is not None
            else catalog.cardinality(source.set_name)
        )
        return op
    if isinstance(source, PathSource):
        op = PathExpand(source, binding.name)
        # nested sets are small in this workload family
        op.est_rows = (
            binding.est_base_rows if binding.est_base_rows is not None else 4
        )
        return op
    if isinstance(source, IteratorSource):
        op = FunctionScan(source, binding.name)
        op.est_rows = (
            binding.est_base_rows if binding.est_base_rows is not None else 8
        )
        return op
    raise EvaluationError(f"unknown binding source {type(source).__name__}")


def _binding_subtree(binding: RangeBinding, catalog: Any) -> PlanOp:
    """Lower one binding: access method, then residual filters (semi-join
    memberships become probes against memoized key sets)."""
    op = _source_op(binding, catalog)
    residual = [r for r in binding.residual if not _is_semi_membership(r)]
    semis = [r for r in binding.residual if _is_semi_membership(r)]
    if residual:
        filtered = Filter(op, residual)
        filtered.est_rows = (
            binding.est_rows
            if binding.est_rows is not None
            else max(1, (op.est_rows or 1) // 3)
        )
        op = filtered
    for node in semis:
        probe = SemiJoinProbe(op, node)
        probe.est_rows = (
            binding.est_rows
            if binding.est_rows is not None
            else max(1, (op.est_rows or 1) // 2)
        )
        op = probe
    return op


def lower_query(query: BoundQuery, catalog: Any) -> PlanOp:
    """Lower a bound (and optimizer-annotated) query to its binding
    pipeline: the row source shared by retrieve and update statements.

    Lowering rules (absorbing the old interpreter's special cases):

    1. existential bindings become a left-deep join tree in optimizer
       order — hash-annotated bindings lower to :class:`HashJoin`,
       everything else to :class:`NestedLoopJoin` over the binding's
       access-method subtree;
    2. residual predicates lower to :class:`Filter`/:class:`SemiJoinProbe`
       inside the binding's subtree, so they fire as soon as the variable
       is bound;
    3. a remaining where clause lowers to semi-join probes plus one
       filter — unless universal bindings exist, in which case the whole
       clause moves into :class:`UniversalCheck` (∀ semantics);
    4. aggregates add an :class:`Aggregate` table-building operator at
       the top of the pipeline.
    """
    existential = [b for b in query.bindings if not b.universal]
    universal = [b for b in query.bindings if b.universal]
    root: PlanOp = Singleton()
    for binding in existential:
        if binding.join_strategy == "hash" and binding.hash_probe_key is not None:
            build = _binding_subtree(binding, catalog)
            cardinality = 0
            if isinstance(binding.source, NamedSetSource):
                cardinality = catalog.cardinality(binding.source.set_name)
            join: PlanOp = HashJoin(root, build, binding, cardinality)
            join.est_rows = (
                binding.est_cum_rows
                if binding.est_cum_rows is not None
                else max(root.est_rows or 1, build.est_rows or 1)
            )
            root = join
        else:
            inner = _binding_subtree(binding, catalog)
            if isinstance(root, Singleton):
                root = inner
            else:
                join = NestedLoopJoin(root, inner)
                join.est_rows = (
                    binding.est_cum_rows
                    if binding.est_cum_rows is not None
                    else (root.est_rows or 1) * (inner.est_rows or 1)
                )
                root = join
    if query.where is not None:
        if universal:
            checks = [(b, _source_op(b, catalog)) for b in universal]
            check = UniversalCheck(root, checks, query.where)
            check.est_rows = max(1, (root.est_rows or 1) // 2)
            root = check
        else:
            conjuncts = _flatten_conjuncts(query.where)
            semis = [c for c in conjuncts if _is_semi_membership(c)]
            rest = [c for c in conjuncts if not _is_semi_membership(c)]
            for node in semis:
                probe = SemiJoinProbe(root, node)
                probe.est_rows = max(1, (root.est_rows or 1) // 2)
                root = probe
            if rest:
                filtered = Filter(root, rest)
                filtered.est_rows = (
                    query.est_rows
                    if query.est_rows is not None
                    else max(1, (root.est_rows or 1) // 3)
                )
                root = filtered
    if query.aggregates:
        aggregate = Aggregate(root, query)
        aggregate.est_rows = root.est_rows
        root = aggregate
    return root


def lower_retrieve(bound: BoundRetrieve, catalog: Any) -> PlanOp:
    """Lower a retrieve to its full pipeline:
    ``StoreInto?(Sort?(Project(row source)))``."""
    root: PlanOp = Project(
        ensure_query_plan(bound.query, catalog),
        bound.targets,
        unique=bound.unique,
        order=bound.order,
    )
    root.est_rows = root.children[0].est_rows
    if bound.order:
        sort = Sort(root, bound.order)
        sort.est_rows = root.est_rows
        root = sort
    if bound.into:
        store = StoreInto(root, bound)
        store.est_rows = root.est_rows
        root = store
    return root


def ensure_query_plan(query: BoundQuery, catalog: Any) -> PlanOp:
    """The (lazily lowered, cached) binding pipeline of a bound query."""
    if query.plan is None:
        query.plan = lower_query(query, catalog)
    return query.plan


def ensure_retrieve_plan(bound: BoundRetrieve, catalog: Any) -> PlanOp:
    """The (lazily lowered, cached) full pipeline of a bound retrieve."""
    if bound.pipeline is None:
        bound.pipeline = lower_retrieve(bound, catalog)
    return bound.pipeline


# ---------------------------------------------------------------------------
# Parallelization: exchange insertion over a lowered pipeline
# ---------------------------------------------------------------------------

#: operators a parallel fragment may contain — everything here executes
#: correctly against a forked database snapshot with no cross-process
#: coordination (scans enumerate the snapshot, joins build local tables,
#: semi-probes memoize local key sets)
_PARALLEL_FRAGMENT_OPS = (
    SeqScan,
    IndexScan,
    Filter,
    SemiJoinProbe,
    NestedLoopJoin,
    HashJoin,
    PathExpand,
)


def _key_var(expr: Optional[BoundExpr]) -> Optional[str]:
    """The range variable a key expression is rooted at (``E.dept.name``
    → ``E``), or None for anything more exotic."""
    if isinstance(expr, VarRef):
        return expr.name
    if isinstance(expr, AttrStep):
        return _key_var(expr.base)
    if isinstance(expr, IndexStepB):
        return _key_var(expr.base)
    return None


def _fragment_shape(qroot: PlanOp) -> tuple[Optional[list], Optional[SeqScan]]:
    """``(spine, anchor)`` of a parallelizable binding pipeline, or
    ``(None, None)``.

    Eligible pipelines contain only :data:`_PARALLEL_FRAGMENT_OPS` and
    their outer spine (the ``children[0]`` descent) must bottom out at a
    :class:`SeqScan` — the partitionable row source.  ``spine`` is the
    descent path, qroot first, anchor excluded.
    """
    for op in walk_plan(qroot):
        if not isinstance(op, _PARALLEL_FRAGMENT_OPS):
            return None, None
    spine: list[PlanOp] = []
    current = qroot
    while not isinstance(current, SeqScan):
        if not current.children:
            return None, None
        spine.append(current)
        current = current.children[0]
    return spine, current


def _choose_dop(anchor: SeqScan, catalog: Any, workers: int) -> int:
    """Degree of parallelism from the anchor's estimated rows: one
    partition per :data:`~repro.core.statistics.
    PARALLEL_MIN_PARTITION_ROWS` estimated input rows, capped at the
    worker count — small inputs are not worth the dispatch overhead."""
    from repro.core.statistics import PARALLEL_MIN_PARTITION_ROWS

    base = anchor.est_rows
    if base is None:
        base = catalog.cardinality(anchor.set_name)
    return min(workers, max(1, int(base or 0) // PARALLEL_MIN_PARTITION_ROWS))


def parallelize_pipeline(
    root: PlanOp, catalog: Any, workers: int
) -> tuple[PlanOp, Optional[dict]]:
    """Insert exchange operators into a lowered retrieve pipeline.

    Returns ``(root, info)`` — the possibly rewritten pipeline plus an
    ``{"dop", "mode", "broadcasts"}`` summary — or ``(root, None)`` when
    the plan stays serial: too few estimated rows for ``workers``, or an
    ineligible shape (unique projection, object-valued targets or sort
    keys, aggregates, universal quantifiers, a non-SeqScan anchor).

    Strategy: the anchor scan is partitioned across ``dop`` workers —
    by contiguous **range** normally, or by **hash** of the probe key
    when the spine carries a hash join whose build side is too large to
    replicate (build estimate > :data:`~repro.core.statistics.
    PARALLEL_BROADCAST_MAX_ROWS`) and whose probe key is rooted at the
    anchor variable; that join's build side is then hash-partitioned on
    the build key so each worker builds only its bucket.  Every other
    hash-join build side is marked :class:`ExchangeBroadcast` (each
    worker builds the full, small table from its snapshot).  An
    :class:`ExchangeMerge` above the projection gathers the parts in
    serial order.

    The rewritten tree still executes serially — and bit-identically —
    when no worker pool drives it: every exchange operator degrades to a
    passthrough.
    """
    from repro.core.statistics import PARALLEL_BROADCAST_MAX_ROWS

    for op in walk_plan(root):
        if isinstance(op, ExchangeMerge):
            # already parallelized (cached pipeline re-lowered)
            broadcasts = sum(
                isinstance(o, ExchangeBroadcast) for o in walk_plan(root)
            )
            return root, {
                "dop": op.dop,
                "mode": op.mode,
                "broadcasts": broadcasts,
            }
    store = root if isinstance(root, StoreInto) else None
    below = store.children[0] if store is not None else root
    sort = below if isinstance(below, Sort) else None
    project = sort.children[0] if sort is not None else below
    if not isinstance(project, Project) or project.unique:
        return root, None
    if any(t.expression.is_object for t in project.targets):
        # object-valued results must be the parent's live instances, not
        # pickled worker copies
        return root, None
    if any(expr.is_object for expr, _desc in project.order):
        return root, None
    qroot = project.children[0]
    spine, anchor = _fragment_shape(qroot)
    if anchor is None:
        return root, None
    dop = _choose_dop(anchor, catalog, workers)
    if dop < 2:
        return root, None

    repartition: Optional[HashJoin] = None
    for op in spine:
        if not isinstance(op, HashJoin):
            continue
        build = op.children[1]
        build_est = (
            build.est_rows if build.est_rows is not None else op.build_cardinality
        )
        if (build_est or 0) > PARALLEL_BROADCAST_MAX_ROWS and _key_var(
            op.probe_key
        ) == anchor.var:
            repartition = op  # keep the deepest qualifying join

    if repartition is not None:
        mode = "hash"
        partition = ExchangePartition(
            anchor,
            "hash",
            dop,
            key=repartition.probe_key,
            key_op=repartition.join_op,
            tag_pos=True,
        )
        repartition.children[1] = ExchangePartition(
            repartition.children[1],
            "hash",
            dop,
            key=repartition.build_key,
            key_op=repartition.join_op,
        )
    else:
        mode = "range"
        partition = ExchangePartition(anchor, "range", dop)

    broadcasts = 0
    for op in walk_plan(qroot):
        if isinstance(op, HashJoin) and op is not repartition:
            op.children[1] = ExchangeBroadcast(op.children[1], dop)
            broadcasts += 1

    owner = spine[-1] if spine else project
    owner.children[0] = partition
    merge = ExchangeMerge(project, dop, mode)
    if sort is not None:
        sort.children[0] = merge
    elif store is not None:
        store.children[0] = merge
    else:
        root = merge
    for op in walk_plan(root):
        # the tree changed shape: drop any memoized walks/fusions
        op.__dict__.pop("_plan_ops", None)
        op.__dict__.pop("_fused", None)
    return root, {"dop": dop, "mode": mode, "broadcasts": broadcasts}


def parallelize_query_block(query: BoundQuery, catalog: Any, workers: int) -> int:
    """Range-partition a bound query's binding pipeline in place — the
    aggregate-inner-block analogue of :func:`parallelize_pipeline`
    (no projection above; the worker evaluates aggregate arguments over
    its slice of the pipeline's environments).

    Returns the chosen degree of parallelism (0 = stays serial).
    Idempotent: an already partitioned pipeline reports its dop.
    """
    qroot = ensure_query_plan(query, catalog)
    for op in walk_plan(qroot):
        if isinstance(op, ExchangePartition):
            return op.dop
    spine, anchor = _fragment_shape(qroot)
    if anchor is None:
        return 0
    dop = _choose_dop(anchor, catalog, workers)
    if dop < 2:
        return 0
    partition = ExchangePartition(anchor, "range", dop)
    if spine:
        spine[-1].children[0] = partition
    else:
        query.plan = partition
    for op in walk_plan(query.plan):
        op.__dict__.pop("_plan_ops", None)
        op.__dict__.pop("_fused", None)
    return dop


# ---------------------------------------------------------------------------
# Introspection: walking, stats, rendering
# ---------------------------------------------------------------------------


def walk_plan(root: PlanOp) -> Iterator[PlanOp]:
    """Every operator of the tree, pre-order."""
    yield root
    for child in root.children:
        yield from walk_plan(child)


def plan_ops(root: PlanOp) -> list[PlanOp]:
    """The tree's operators (pre-order), memoized on the root.

    The tree is immutable after lowering, and the per-statement hot path
    walks it three times (reset, metrics, snapshot) — a cached flat list
    beats re-running the recursive generator.
    """
    ops = root.__dict__.get("_plan_ops")
    if ops is None:
        ops = list(walk_plan(root))
        root.__dict__["_plan_ops"] = ops
    return ops


def reset_stats(root: PlanOp) -> None:
    """Zero every operator's counters (called before each execution)."""
    for op in plan_ops(root):
        op.stats.reset()


def fusable_ops(op: PlanOp) -> Optional[list[PlanOp]]:
    """The operator chain of the fusable region rooted at ``op`` (root
    first), or None when ``op`` does not root one.

    A fusable region is ``Project?(Filter*(Exchange?(SeqScan)|SeqScan|
    IndexScan))`` — the dominant pipeline shape — whose whole body the
    compiler can emit as one Python function: scan loop, predicate
    tests, and target/sort-key evaluation fused, with no per-operator
    handoff in between.  A range-mode :class:`ExchangePartition` over a
    SeqScan joins the region (the generated loop slices the member list
    when a worker shard is active); hash-mode partitions never fuse —
    they need the generic per-row routing path.
    """
    chain: list[PlanOp] = []
    current = op
    if isinstance(current, Project):
        chain.append(current)
        current = current.children[0]
    while isinstance(current, Filter):
        chain.append(current)
        current = current.children[0]
    if (
        isinstance(current, ExchangePartition)
        and current.mode == "range"
        and isinstance(current.children[0], SeqScan)
    ):
        chain.append(current)
        chain.append(current.children[0])
        return chain
    if isinstance(current, (SeqScan, IndexScan)):
        chain.append(current)
        return chain
    return None


def fused_regions(root: PlanOp) -> list[list[PlanOp]]:
    """Every fusable region of the tree (each a chain, root first),
    exactly as ``exec_mode="fused"`` would execute them.

    Mirrors the batch executor's dispatch: a region fires wherever
    ``batches()`` is invoked — at the tree root, at every child pull, at
    nested-loop inner and hash-join build boundaries.  UniversalCheck's
    ∀ subtrees always run row-at-a-time and are never fused.
    """
    regions: list[list[PlanOp]] = []

    def visit(op: PlanOp) -> None:
        chain = fusable_ops(op)
        if chain is not None:
            regions.append(chain)
            return
        if isinstance(op, UniversalCheck):
            visit(op.children[0])
            return
        for _role, child in op.child_roles():
            visit(child)

    visit(root)
    return regions


def _row_mode_ids(root: PlanOp) -> set[int]:
    """ids of operators that run row-at-a-time even in batch/fused modes
    (the ∀ check subtrees of UniversalCheck operators)."""
    ids: set[int] = set()

    def mark(op: PlanOp) -> None:
        ids.add(id(op))
        for _role, child in op.child_roles():
            mark(child)

    def visit(op: PlanOp) -> None:
        if isinstance(op, UniversalCheck):
            visit(op.children[0])
            for _binding, subtree in op.checks:
                mark(subtree)
            return
        for _role, child in op.child_roles():
            visit(child)

    visit(root)
    return ids


def pipeline_sources(root: PlanOp, compiled: bool = True) -> str:
    """The generated Python source of every fused region of the plan,
    for inspection (the ``Result.pipeline_source`` debug hook)."""
    from repro.excess.compile import fused_pipeline

    sources: list[str] = []
    for region in fused_regions(root):
        fused = fused_pipeline(region[0], compiled)
        if fused is not None:
            sources.append(fused.source)
    return "\n\n".join(sources)


def describe_expr(node: Optional[BoundExpr]) -> str:
    """A compact, human-readable rendering of a bound expression for
    operator descriptions (best effort — not a full unparser)."""
    if node is None:
        return "?"
    if isinstance(node, Const):
        if node.value is NULL:
            return "null"
        if isinstance(node.value, str):
            return f'"{node.value}"'
        return str(node.value)
    if isinstance(node, VarRef):
        return node.name.lstrip("@")
    if isinstance(node, NamedValue):
        return node.name
    if isinstance(node, AttrStep):
        return f"{describe_expr(node.base)}.{node.attribute}"
    if isinstance(node, IndexStepB):
        return f"{describe_expr(node.base)}[{describe_expr(node.index)}]"
    if isinstance(node, Binary):
        op = {"and": "and", "or": "or"}.get(node.op, node.op)
        return f"{describe_expr(node.left)} {op} {describe_expr(node.right)}"
    if isinstance(node, Unary):
        return f"{node.op} {describe_expr(node.operand)}"
    if isinstance(node, Membership):
        collection = node.collection
        name = (
            collection.name
            if collection.kind == "named"
            else describe_expr(collection.base)
            + ("." + ".".join(collection.steps) if collection.steps else "")
        )
        op = "not in" if node.negated else "in"
        return f"{describe_expr(node.element)} {op} {name}"
    if isinstance(node, AggregateRef):
        return f"$agg{node.aggregate_id}"
    if isinstance(node, AdtCall):
        args = ", ".join(describe_expr(a) for a in node.args)
        return f"{node.function.name}({args})"
    if isinstance(node, ExcessCall):
        args = ", ".join(describe_expr(a) for a in node.args)
        return f"{node.name}({args})"
    return type(node).__name__


def snapshot_stats(root: PlanOp) -> dict[int, tuple[int, str]]:
    """Capture per-operator actuals for deferred rendering.

    The live counters are reset by the next execution of a cached plan,
    so a :class:`Result` that renders its tree lazily must freeze them
    at execution time. Keyed by ``id(op)`` — valid as long as the plan
    tree is alive, which the snapshot's rendering closure guarantees.
    """
    return {
        id(op): (op.stats.rows_out, op.extra_counters())
        for op in plan_ops(root)
    }


def render_plan(
    root: PlanOp,
    actuals: bool = True,
    snapshot: Optional[dict] = None,
    compile_mode: Optional[str] = None,
    exec_mode: Optional[str] = None,
    batch_size: Optional[int] = None,
) -> str:
    """Pretty-print the operator tree, one operator per line, with the
    estimated and (when ``actuals``) last-execution row counts — from
    ``snapshot`` (see :func:`snapshot_stats`) when given, else live.

    With ``compile_mode`` given, expression-bearing operators carry a
    ``compiled=`` annotation: ``closure`` (every expression lowered to a
    direct closure), ``fallback`` (some expression runs through an
    interpreter callback), or ``off`` (ablation: interpretation forced).

    With ``exec_mode`` given, every operator carries an ``exec=``
    annotation: ``fused`` (the operator's work is folded into a
    generated whole-pipeline function), ``batch`` (operators exchange
    row batches of ``batch_size``), or ``row`` (tuple-at-a-time — the
    whole tree in the ``row`` ablation, and always the ∀ check subtrees
    of UniversalCheck).
    """
    lines: list[str] = []
    fused_ids: set[int] = set()
    row_ids: set[int] = set()
    if exec_mode == "fused":
        for region in fused_regions(root):
            fused_ids.update(id(op) for op in region)
    if exec_mode in ("fused", "batch"):
        row_ids = _row_mode_ids(root)

    def exec_label(op: PlanOp) -> str:
        if exec_mode == "row" or id(op) in row_ids:
            return "row"
        if id(op) in fused_ids:
            return "fused"
        return "batch"

    def emit(op: PlanOp, depth: int, role: str) -> None:
        prefix = "  " * depth
        tag = f"[{role}] " if role else ""
        est = "?" if op.est_rows is None else str(op.est_rows)
        counters = f"(est={est}"
        if actuals:
            if snapshot is not None:
                rows_out, extra = snapshot[id(op)]
            else:
                rows_out, extra = op.stats.rows_out, op.extra_counters()
            counters += f", rows={rows_out}{extra}"
        exchange = op.exchange_note()
        if exchange is not None:
            counters += f", exchange={exchange}"
        if compile_mode is not None:
            note = op.compiled_note()
            if note is not None:
                if compile_mode != "closure":
                    note = "off"
                counters += f", compiled={note}"
        if exec_mode is not None:
            label = exec_label(op)
            counters += f", exec={label}"
            if label != "row" and batch_size is not None:
                counters += f", batch_size={batch_size}"
        counters += ")"
        lines.append(f"{prefix}{tag}{op.describe()} {counters}")
        for child_role, child in op.child_roles():
            emit(child, depth + 1, child_role)

    emit(root, 0, "")
    return "\n".join(lines)
