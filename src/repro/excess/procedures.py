"""EXCESS procedures: generalized IDM stored commands (paper §4.2.2).

A procedure packages an update statement with parameters::

    define procedure Raise (E in Employee, amt: float8) as
        replace E (salary = E.salary + amt)

and is invoked with ``execute Raise (E, 100.0) from E in Employees where
E.dept.floor = 2``. The paper's generalization over IDM stored commands
is exactly the from/where clause: parameters are bound by the invocation
query and the body runs once for **all possible bindings** rather than
once with constant arguments.

Procedures run with *definer* rights, which is what makes the paper's
encapsulation-through-authorization story work: granting ``execute`` on
a procedure without granting access to the sets it touches exposes only
the procedure's behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import ProcedureError
from repro.excess import ast_nodes as ast
from repro.excess.binder import Binder, Scope, VarRef
from repro.excess.functions import FunctionParam
from repro.excess.result import Result

if TYPE_CHECKING:  # pragma: no cover
    from repro.excess.evaluator import Evaluator

__all__ = ["Procedure", "bind_procedure_body", "run_procedure"]


@dataclass
class Procedure:
    """A stored procedure: parameters plus one body statement."""

    name: str
    params: list[FunctionParam]
    body: ast.Statement
    #: user who defined the procedure (definer-rights execution)
    definer: str = "dba"
    #: cached bound body (rebuilt lazily, excluded from snapshots)
    bound: Any = field(default=None, repr=False, compare=False)

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["bound"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


def _parameter_scope(procedure: Procedure) -> Scope:
    scope = Scope()
    for param in procedure.params:
        scope.parameters[param.name] = VarRef(
            name=f"@{param.name}",
            type=param.spec.type,
            is_object=param.is_object,
        )
    return scope


def bind_procedure_body(procedure: Procedure, binder: Binder) -> Any:
    """Bind (and cache) the procedure's body statement."""
    if procedure.bound is not None:
        return procedure.bound
    scope = _parameter_scope(procedure)
    body = procedure.body
    if isinstance(body, ast.Replace):
        bound = ("replace", binder.bind_replace(body, outer_scope=scope))
    elif isinstance(body, ast.Append):
        bound = ("append", binder.bind_append(body, outer_scope=scope))
    elif isinstance(body, ast.Delete):
        bound = ("delete", binder.bind_delete(body, outer_scope=scope))
    elif isinstance(body, ast.SetStatement):
        bound = ("set", binder.bind_set(body, outer_scope=scope))
    elif isinstance(body, ast.Retrieve):
        bound = ("retrieve", binder.bind_retrieve(body, outer_scope=scope))
    else:
        raise ProcedureError(
            f"procedure {procedure.name!r}: unsupported body statement "
            f"{type(body).__name__}"
        )
    procedure.bound = bound
    return bound


def run_procedure(
    evaluator: "Evaluator",
    procedure: Procedure,
    bindings: list[dict],
    binder: Binder,
) -> Result:
    """Run the procedure body once per parameter binding.

    ``bindings`` is the list of parameter environments produced by the
    ``execute`` statement's from/where clauses (one entry per qualifying
    binding, each mapping ``@param`` to its value).
    """
    kind, bound = bind_procedure_body(procedure, binder)
    total = 0
    rows: list[tuple] = []
    columns: list[str] = []
    for env in bindings:
        if kind == "replace":
            result = evaluator.run_replace(bound, base_env=env)
        elif kind == "append":
            result = evaluator.run_append(bound, base_env=env)
        elif kind == "delete":
            result = evaluator.run_delete(bound, base_env=env)
        elif kind == "set":
            result = evaluator.run_set(bound, base_env=env)
        else:
            result = evaluator.run_retrieve(bound, base_env=env)
            columns = result.columns
            rows.extend(result.rows)
        total += result.count if kind != "retrieve" else len(result.rows)
    return Result(
        kind="execute",
        columns=columns,
        rows=rows,
        count=total,
        message=(
            f"executed {procedure.name!r} for {len(bindings)} binding(s), "
            f"{total} row(s) affected"
        ),
    )
