"""The EXCESS parser: recursive descent with precedence-climbing
expressions over an extensible operator table.

New ADT operators registered at runtime (paper §4.1.2 requires their
precedence and associativity to be specified at registration) flow into
the parser through :class:`OperatorTable`, so a statement using a fresh
operator parses correctly with no parser changes — the paper's
"dynamically extensible" requirement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ParseError
from repro.excess import ast_nodes as ast
from repro.excess.lexer import Lexer, Token, TokenType

__all__ = ["OperatorTable", "Parser", "parse_script", "parse_statement"]

#: identifiers that name predefined base types in type expressions
_BASE_TYPE_NAMES = {
    "int1", "int2", "int4", "int8", "float4", "float8", "boolean", "text",
    "char",
}

#: statement-starting keywords (used to delimit statements in scripts)
_STATEMENT_STARTERS = {
    "define", "create", "destroy", "drop", "range", "retrieve", "append",
    "delete", "replace", "set", "execute", "grant", "revoke",
}


@dataclass(frozen=True)
class _OpInfo:
    precedence: int
    associativity: str  # "left" | "right"
    fixity: str  # "infix" | "prefix"


class OperatorTable:
    """Parse-time operator properties: precedence, associativity, fixity.

    Pre-loaded with the built-in EXCESS operators; the interpreter adds
    rows for every operator registered through the ADT facility.
    """

    #: comparison precedence level (is/isnot/in/contains live here too)
    COMPARISON = 40

    def __init__(self) -> None:
        self._infix: dict[str, _OpInfo] = {
            "or": _OpInfo(10, "left", "infix"),
            "and": _OpInfo(20, "left", "infix"),
            "=": _OpInfo(40, "left", "infix"),
            "!=": _OpInfo(40, "left", "infix"),
            "<": _OpInfo(40, "left", "infix"),
            "<=": _OpInfo(40, "left", "infix"),
            ">": _OpInfo(40, "left", "infix"),
            ">=": _OpInfo(40, "left", "infix"),
            "+": _OpInfo(50, "left", "infix"),
            "-": _OpInfo(50, "left", "infix"),
            "||": _OpInfo(50, "left", "infix"),
            "*": _OpInfo(60, "left", "infix"),
            "/": _OpInfo(60, "left", "infix"),
            "%": _OpInfo(60, "left", "infix"),
        }
        self._prefix: dict[str, _OpInfo] = {
            "not": _OpInfo(30, "right", "prefix"),
            "-": _OpInfo(70, "right", "prefix"),
        }

    def add_operator(
        self,
        symbol: str,
        precedence: int,
        associativity: str = "left",
        fixity: str = "infix",
    ) -> None:
        """Register a user operator's parse-time properties.

        Overloading an existing symbol keeps the built-in properties (the
        paper overloads ``+`` for Complex without changing its parsing).
        """
        table = self._infix if fixity == "infix" else self._prefix
        if symbol not in table:
            table[symbol] = _OpInfo(precedence, associativity, fixity)

    def infix(self, symbol: str) -> Optional[_OpInfo]:
        """Infix properties of ``symbol`` (None when not infix)."""
        return self._infix.get(symbol)

    def prefix(self, symbol: str) -> Optional[_OpInfo]:
        """Prefix properties of ``symbol`` (None when not prefix)."""
        return self._prefix.get(symbol)

    def punctuation_symbols(self) -> list[str]:
        """All punctuation operator symbols (for the lexer)."""
        out = [s for s in self._infix if not s[0].isalpha()]
        out += [s for s in self._prefix if not s[0].isalpha() and s not in out]
        return out


class Parser:
    """Parses a token stream into EXCESS AST nodes."""

    def __init__(self, tokens: list[Token], operators: Optional[OperatorTable] = None):
        self._tokens = tokens
        self._pos = 0
        self._ops = operators if operators is not None else OperatorTable()

    # -- token plumbing ----------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._peek()
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _error(self, message: str, token: Optional[Token] = None) -> ParseError:
        token = token if token is not None else self._peek()
        return ParseError(message, token.line, token.column)

    def _expect(self, token_type: TokenType, what: str = "") -> Token:
        token = self._peek()
        if token.type is not token_type:
            raise self._error(
                f"expected {what or token_type.value}, found {token.text!r}"
            )
        return self._next()

    def _expect_keyword(self, *words: str) -> Token:
        token = self._peek()
        if not token.is_keyword(*words):
            raise self._error(
                f"expected {' or '.join(repr(w) for w in words)}, "
                f"found {token.text!r}"
            )
        return self._next()

    def _accept_keyword(self, *words: str) -> Optional[Token]:
        if self._peek().is_keyword(*words):
            return self._next()
        return None

    def _expect_ident(self, what: str = "identifier") -> Token:
        token = self._peek()
        if token.type is not TokenType.IDENT:
            raise self._error(f"expected {what}, found {token.text!r}")
        return self._next()

    def _accept(self, token_type: TokenType) -> Optional[Token]:
        if self._peek().type is token_type:
            return self._next()
        return None

    @staticmethod
    def _at(node: ast.Node, token: Token) -> ast.Node:
        node.line = token.line
        node.column = token.column
        return node

    # -- entry points --------------------------------------------------------------

    def parse_script(self) -> ast.Script:
        """Parse a whole script (statements separated by semicolons)."""
        statements: list[ast.Statement] = []
        while True:
            while self._accept(TokenType.SEMI):
                pass
            if self._peek().type is TokenType.EOF:
                break
            statements.append(self.parse_statement())
        return ast.Script(statements=statements)

    def parse_statement(self) -> ast.Statement:
        """Parse exactly one statement."""
        token = self._peek()
        if token.type is TokenType.IDENT and token.text.lower() == "add":
            # `add <member> to group <name>`; "add" is not reserved so the
            # paper's Add() ADT function stays usable in expressions.
            return self._parse_add_to_group()
        if token.type is TokenType.IDENT and token.text.lower() == "alter":
            return self._parse_alter_type()
        if token.type is TokenType.IDENT and token.text.lower() == "analyze":
            # `analyze [SetName]`; "analyze" is not reserved so it stays
            # usable as an ordinary identifier
            self._next()
            name: Optional[str] = None
            if self._peek().type is TokenType.IDENT:
                name = self._next().text
            return self._at(ast.Analyze(set_name=name), token)
        if token.type is TokenType.IDENT and token.text.lower() in (
            "begin", "commit", "abort"
        ):
            # transaction statements; the words are not reserved
            word = self._next().text.lower()
            if word == "begin":
                extra = self._peek()
                if (
                    extra.type is TokenType.IDENT
                    and extra.text.lower() in ("transaction", "work")
                ):
                    self._next()
                return self._at(ast.BeginTransaction(), token)
            if word == "commit":
                return self._at(ast.CommitTransaction(), token)
            return self._at(ast.AbortTransaction(), token)
        if token.type is not TokenType.KEYWORD:
            raise self._error(f"expected a statement, found {token.text!r}")
        word = token.text
        if word == "define":
            return self._parse_define()
        if word == "create":
            return self._parse_create()
        if word == "destroy":
            self._next()
            name = self._expect_ident("object name")
            return self._at(ast.DestroyNamed(name=name.text), token)
        if word == "drop":
            return self._parse_drop_index()
        if word == "range":
            return self._parse_range()
        if word == "retrieve":
            return self._parse_retrieve_or_setop()
        if word == "explain":
            start = self._next()
            inner = self.parse_statement()
            return self._at(ast.Explain(statement=inner), start)
        if word == "append":
            return self._parse_append()
        if word == "delete":
            return self._parse_delete()
        if word == "replace":
            return self._parse_replace()
        if word == "set":
            return self._parse_set()
        if word == "execute":
            return self._parse_execute()
        if word == "grant":
            return self._parse_grant()
        if word == "revoke":
            return self._parse_revoke()
        raise self._error(f"unexpected keyword {word!r} at statement start")

    # -- DDL -----------------------------------------------------------------------

    def _parse_define(self) -> ast.Statement:
        start = self._expect_keyword("define")
        if self._peek().is_keyword("type"):
            return self._parse_define_type(start)
        if self._peek().is_keyword("function", "fixed"):
            return self._parse_define_function(start)
        if self._peek().is_keyword("procedure"):
            return self._parse_define_procedure(start)
        raise self._error("expected 'type', 'function', or 'procedure'")

    def _parse_define_type(self, start: Token) -> ast.DefineType:
        self._expect_keyword("type")
        name = self._expect_ident("type name")
        self._expect_keyword("as")
        self._expect(TokenType.LPAREN, "'('")
        attributes: list[ast.AttributeDecl] = []
        if self._peek().type is not TokenType.RPAREN:
            while True:
                attributes.append(self._parse_attribute_decl())
                if not self._accept(TokenType.COMMA):
                    break
        self._expect(TokenType.RPAREN, "')'")
        parents: list[str] = []
        renames: list[ast.RenameClause] = []
        if self._accept_keyword("inherits"):
            while True:
                parents.append(self._expect_ident("parent type name").text)
                if not self._accept(TokenType.COMMA):
                    break
        if self._accept_keyword("with"):
            while True:
                rename_tok = self._expect_keyword("rename")
                parent = self._expect_ident("parent type").text
                self._expect(TokenType.DOT, "'.'")
                attribute = self._expect_ident("attribute").text
                self._expect_keyword("to")
                new_name = self._expect_ident("new attribute name").text
                renames.append(
                    self._at(
                        ast.RenameClause(
                            parent=parent, attribute=attribute, new_name=new_name
                        ),
                        rename_tok,
                    )
                )
                if not self._accept(TokenType.COMMA):
                    break
        return self._at(
            ast.DefineType(
                name=name.text,
                attributes=attributes,
                parents=parents,
                renames=renames,
            ),
            start,
        )

    def _parse_attribute_decl(self) -> ast.AttributeDecl:
        name = self._expect_ident("attribute name")
        self._expect(TokenType.COLON, "':'")
        component = self._parse_component()
        return self._at(
            ast.AttributeDecl(name=name.text, component=component), name
        )

    def _parse_component(self) -> ast.ComponentExpr:
        """``[own | ref | own ref] <type-expr>`` (default own)."""
        token = self._peek()
        semantics = "own"
        if self._accept_keyword("own"):
            semantics = "own ref" if self._accept_keyword("ref") else "own"
        elif self._accept_keyword("ref"):
            semantics = "ref"
        type_expr = self._parse_type_expr()
        return self._at(
            ast.ComponentExpr(semantics=semantics, type=type_expr), token
        )

    def _parse_type_expr(self) -> ast.TypeExpr:
        token = self._peek()
        if token.type is TokenType.LBRACE:
            self._next()
            element = self._parse_component()
            self._expect(TokenType.RBRACE, "'}'")
            return self._at(ast.SetTypeExpr(element=element), token)
        if token.type is TokenType.LBRACKET:
            self._next()
            length: Optional[int] = None
            if self._peek().type is TokenType.INT:
                length = int(self._next().value)
            self._expect(TokenType.RBRACKET, "']'")
            element = self._parse_component()
            return self._at(
                ast.ArrayTypeExpr(element=element, length=length), token
            )
        if token.type is TokenType.LPAREN:
            self._next()
            attributes: list[ast.AttributeDecl] = []
            if self._peek().type is not TokenType.RPAREN:
                while True:
                    attributes.append(self._parse_attribute_decl())
                    if not self._accept(TokenType.COMMA):
                        break
            self._expect(TokenType.RPAREN, "')'")
            return self._at(ast.TupleTypeExpr(attributes=attributes), token)
        if token.is_keyword("enum"):
            self._next()
            self._expect(TokenType.LPAREN, "'('")
            labels: list[str] = []
            while True:
                labels.append(self._expect_ident("enum label").text)
                if not self._accept(TokenType.COMMA):
                    break
            self._expect(TokenType.RPAREN, "')'")
            return self._at(ast.EnumTypeExpr(labels=labels), token)
        ident = self._expect_ident("type name")
        lowered = ident.text.lower()
        if lowered in _BASE_TYPE_NAMES:
            param: Optional[int] = None
            if lowered == "char":
                self._expect(TokenType.LPAREN, "'(' after char")
                param = int(self._expect(TokenType.INT, "char length").value)
                self._expect(TokenType.RPAREN, "')'")
            return self._at(ast.BaseTypeExpr(name=lowered, param=param), ident)
        return self._at(ast.NamedTypeExpr(name=ident.text), ident)

    def _parse_create(self) -> ast.Statement:
        start = self._expect_keyword("create")
        if self._peek().is_keyword("index"):
            self._next()
            self._expect_keyword("on")
            set_name = self._expect_ident("set name").text
            self._expect(TokenType.LPAREN, "'('")
            attribute = self._expect_ident("attribute").text
            self._expect(TokenType.RPAREN, "')'")
            kind = "btree"
            if self._accept_keyword("using"):
                kind_tok = self._expect_ident("index kind")
                kind = kind_tok.text.lower()
            return self._at(
                ast.CreateIndex(set_name=set_name, attribute=attribute, kind=kind),
                start,
            )
        if self._peek().is_keyword("user"):
            self._next()
            name = self._expect_ident("user name").text
            return self._at(ast.CreateUser(name=name), start)
        if self._peek().is_keyword("group"):
            self._next()
            name = self._expect_ident("group name").text
            return self._at(ast.CreateGroup(name=name), start)
        component = self._parse_component()
        name = self._expect_ident("object name").text
        key: list[str] = []
        if self._accept_keyword("key"):
            self._expect(TokenType.LPAREN, "'('")
            while True:
                key.append(self._expect_ident("key attribute").text)
                if not self._accept(TokenType.COMMA):
                    break
            self._expect(TokenType.RPAREN, "')'")
        return self._at(
            ast.CreateNamed(name=name, component=component, key=key), start
        )

    def _parse_drop_index(self) -> ast.DropIndex:
        start = self._expect_keyword("drop")
        self._expect_keyword("index")
        self._expect_keyword("on")
        set_name = self._expect_ident("set name").text
        self._expect(TokenType.LPAREN, "'('")
        attribute = self._expect_ident("attribute").text
        self._expect(TokenType.RPAREN, "')'")
        kind = "btree"
        if self._accept_keyword("using"):
            kind = self._expect_ident("index kind").text.lower()
        return self._at(
            ast.DropIndex(set_name=set_name, attribute=attribute, kind=kind), start
        )

    # -- range / from ------------------------------------------------------------------

    def _parse_range(self) -> ast.RangeDecl:
        start = self._expect_keyword("range")
        self._expect_keyword("of")
        variable = self._expect_ident("range variable").text
        self._expect_keyword("is")
        universal = bool(self._accept_keyword("every"))
        source = self._parse_range_source()
        return self._at(
            ast.RangeDecl(variable=variable, source=source, universal=universal),
            start,
        )

    def _parse_range_source(self) -> ast.Expression:
        """A range specification: a path or an iterator function call."""
        ident = self._expect_ident("range specification")
        if self._peek().type is TokenType.LPAREN:
            return self._parse_call(ident)
        return self._parse_path_from(ident)

    def _parse_from_clauses(self) -> list[ast.FromClause]:
        clauses: list[ast.FromClause] = []
        if not self._accept_keyword("from"):
            return clauses
        while True:
            token = self._peek()
            variable = self._expect_ident("range variable").text
            self._expect_keyword("in")
            universal = bool(self._accept_keyword("every"))
            source = self._parse_range_source()
            clauses.append(
                self._at(
                    ast.FromClause(
                        variable=variable, source=source, universal=universal
                    ),
                    token,
                )
            )
            if not self._accept(TokenType.COMMA):
                break
        return clauses

    def _parse_where(self) -> Optional[ast.Expression]:
        if self._accept_keyword("where"):
            return self.parse_expression()
        return None

    # -- DML ----------------------------------------------------------------------------

    def _parse_retrieve_or_setop(self) -> ast.Statement:
        """A retrieve, optionally followed by union/intersect/minus
        combinators (left-associative)."""
        first = self._parse_retrieve()
        terms: list[tuple] = []
        while self._peek().is_keyword("union", "intersect", "minus"):
            op = self._next().text
            terms.append((op, self._parse_retrieve()))
        if not terms:
            return first
        node = ast.SetOperation(left=first, terms=terms)
        node.line, node.column = first.line, first.column
        return node

    def _parse_retrieve(self) -> ast.Retrieve:
        start = self._expect_keyword("retrieve")
        unique = bool(self._accept_keyword("unique"))
        into: Optional[str] = None
        if self._accept_keyword("into"):
            into = self._expect_ident("result name").text
        self._expect(TokenType.LPAREN, "'(' before target list")
        targets: list[ast.TargetItem] = []
        while True:
            targets.append(self._parse_target_item())
            if not self._accept(TokenType.COMMA):
                break
        self._expect(TokenType.RPAREN, "')' after target list")
        from_clauses = self._parse_from_clauses()
        where = self._parse_where()
        order: list[ast.SortKey] = []
        if self._accept_keyword("sort"):
            self._expect_keyword("by")
            while True:
                key_token = self._peek()
                expression = self.parse_expression()
                descending = False
                if self._accept_keyword("desc"):
                    descending = True
                else:
                    self._accept_keyword("asc")
                order.append(
                    self._at(
                        ast.SortKey(
                            expression=expression, descending=descending
                        ),
                        key_token,
                    )
                )
                if not self._accept(TokenType.COMMA):
                    break
        return self._at(
            ast.Retrieve(
                targets=targets,
                into=into,
                from_clauses=from_clauses,
                where=where,
                unique=unique,
                order=order,
            ),
            start,
        )

    def _parse_target_item(self) -> ast.TargetItem:
        token = self._peek()
        label: Optional[str] = None
        if (
            token.type is TokenType.IDENT
            and self._peek(1).type is TokenType.OP
            and self._peek(1).text == "="
        ):
            label = self._next().text
            self._next()  # '='
        expression = self.parse_expression()
        return self._at(ast.TargetItem(expression=expression, label=label), token)

    def _parse_append(self) -> ast.Append:
        start = self._expect_keyword("append")
        self._accept_keyword("to")
        target = self._parse_path()
        self._expect(TokenType.LPAREN, "'('")
        assignments: list[ast.Assignment] = []
        expression: Optional[ast.Expression] = None
        if (
            self._peek().type is TokenType.IDENT
            and self._peek(1).type is TokenType.OP
            and self._peek(1).text == "="
        ):
            while True:
                attr = self._expect_ident("attribute").text
                eq = self._expect(TokenType.OP, "'='")
                if eq.text != "=":
                    raise self._error("expected '=' in assignment", eq)
                value = self.parse_expression()
                assignments.append(ast.Assignment(attribute=attr, expression=value))
                if not self._accept(TokenType.COMMA):
                    break
        else:
            expression = self.parse_expression()
        self._expect(TokenType.RPAREN, "')'")
        from_clauses = self._parse_from_clauses()
        where = self._parse_where()
        return self._at(
            ast.Append(
                target=target,
                assignments=assignments,
                expression=expression,
                from_clauses=from_clauses,
                where=where,
            ),
            start,
        )

    def _parse_delete(self) -> ast.Delete:
        start = self._expect_keyword("delete")
        variable = self._expect_ident("range variable").text
        from_clauses = self._parse_from_clauses()
        where = self._parse_where()
        return self._at(
            ast.Delete(variable=variable, from_clauses=from_clauses, where=where),
            start,
        )

    def _parse_replace(self) -> ast.Replace:
        start = self._expect_keyword("replace")
        target = self._parse_path()
        self._expect(TokenType.LPAREN, "'('")
        assignments: list[ast.Assignment] = []
        while True:
            attr = self._expect_ident("attribute").text
            eq = self._expect(TokenType.OP, "'='")
            if eq.text != "=":
                raise self._error("expected '=' in assignment", eq)
            value = self.parse_expression()
            assignments.append(ast.Assignment(attribute=attr, expression=value))
            if not self._accept(TokenType.COMMA):
                break
        self._expect(TokenType.RPAREN, "')'")
        from_clauses = self._parse_from_clauses()
        where = self._parse_where()
        return self._at(
            ast.Replace(
                target=target,
                assignments=assignments,
                from_clauses=from_clauses,
                where=where,
            ),
            start,
        )

    def _parse_set(self) -> ast.SetStatement:
        start = self._expect_keyword("set")
        target = self._parse_path()
        eq = self._expect(TokenType.OP, "'='")
        if eq.text != "=":
            raise self._error("expected '=' in set statement", eq)
        expression = self.parse_expression()
        from_clauses = self._parse_from_clauses()
        where = self._parse_where()
        return self._at(
            ast.SetStatement(
                target=target,
                expression=expression,
                from_clauses=from_clauses,
                where=where,
            ),
            start,
        )

    # -- functions / procedures ------------------------------------------------------------

    def _parse_param_list(self) -> list[ast.ParamDecl]:
        self._expect(TokenType.LPAREN, "'('")
        params: list[ast.ParamDecl] = []
        if self._peek().type is not TokenType.RPAREN:
            while True:
                token = self._expect_ident("parameter name")
                if self._accept_keyword("in"):
                    type_name = self._expect_ident("type name").text
                    params.append(
                        self._at(
                            ast.ParamDecl(name=token.text, type_name=type_name),
                            token,
                        )
                    )
                else:
                    self._expect(TokenType.COLON, "':' or 'in'")
                    component = self._parse_component()
                    params.append(
                        self._at(
                            ast.ParamDecl(name=token.text, component=component),
                            token,
                        )
                    )
                if not self._accept(TokenType.COMMA):
                    break
        self._expect(TokenType.RPAREN, "')'")
        return params

    def _parse_define_function(self, start: Token) -> ast.DefineFunction:
        fixed = bool(self._accept_keyword("fixed"))
        self._expect_keyword("function")
        name = self._expect_ident("function name").text
        params = self._parse_param_list()
        self._expect_keyword("returns")
        returns = self._parse_component()
        self._expect_keyword("as")
        body = self._parse_retrieve()
        return self._at(
            ast.DefineFunction(
                name=name, params=params, returns=returns, body=body, fixed=fixed
            ),
            start,
        )

    def _parse_define_procedure(self, start: Token) -> ast.DefineProcedure:
        self._expect_keyword("procedure")
        name = self._expect_ident("procedure name").text
        params = self._parse_param_list()
        self._expect_keyword("as")
        body = self.parse_statement()
        return self._at(
            ast.DefineProcedure(name=name, params=params, body=body), start
        )

    def _parse_execute(self) -> ast.ExecuteProcedure:
        start = self._expect_keyword("execute")
        name = self._expect_ident("procedure name").text
        self._expect(TokenType.LPAREN, "'('")
        args: list[ast.Expression] = []
        if self._peek().type is not TokenType.RPAREN:
            while True:
                args.append(self.parse_expression())
                if not self._accept(TokenType.COMMA):
                    break
        self._expect(TokenType.RPAREN, "')'")
        from_clauses = self._parse_from_clauses()
        where = self._parse_where()
        return self._at(
            ast.ExecuteProcedure(
                name=name, args=args, from_clauses=from_clauses, where=where
            ),
            start,
        )

    # -- authorization ---------------------------------------------------------------------

    def _parse_principal(self) -> str:
        token = self._peek()
        if token.is_keyword("group", "user"):
            self._next()
            return self._expect_ident("principal").text
        return self._expect_ident("principal").text

    def _parse_grant(self) -> ast.GrantStatement:
        start = self._expect_keyword("grant")
        priv_token = self._next()
        if priv_token.type not in (TokenType.IDENT, TokenType.KEYWORD):
            raise self._error("expected a privilege", priv_token)
        self._expect_keyword("on")
        object_name = self._expect_ident("object name").text
        self._expect_keyword("to")
        principal = self._parse_principal()
        return self._at(
            ast.GrantStatement(
                privilege=priv_token.text, object_name=object_name,
                principal=principal,
            ),
            start,
        )

    def _parse_revoke(self) -> ast.RevokeStatement:
        start = self._expect_keyword("revoke")
        priv_token = self._next()
        if priv_token.type not in (TokenType.IDENT, TokenType.KEYWORD):
            raise self._error("expected a privilege", priv_token)
        self._expect_keyword("on")
        object_name = self._expect_ident("object name").text
        self._expect_keyword("from")
        principal = self._parse_principal()
        return self._at(
            ast.RevokeStatement(
                privilege=priv_token.text, object_name=object_name,
                principal=principal,
            ),
            start,
        )

    def _parse_alter_type(self) -> ast.AlterType:
        start = self._expect_ident("'alter'")
        self._expect_keyword("type")
        name = self._expect_ident("type name").text
        adds: list[ast.AttributeDecl] = []
        drops: list[str] = []
        while True:
            token = self._peek()
            if token.type is TokenType.IDENT and token.text.lower() == "add":
                self._next()
                self._expect(TokenType.LPAREN, "'('")
                while True:
                    adds.append(self._parse_attribute_decl())
                    if not self._accept(TokenType.COMMA):
                        break
                self._expect(TokenType.RPAREN, "')'")
            elif token.is_keyword("drop"):
                self._next()
                self._expect(TokenType.LPAREN, "'('")
                while True:
                    drops.append(self._expect_ident("attribute").text)
                    if not self._accept(TokenType.COMMA):
                        break
                self._expect(TokenType.RPAREN, "')'")
            else:
                break
        if not adds and not drops:
            raise self._error("alter type requires an add or drop clause")
        return self._at(
            ast.AlterType(name=name, adds=adds, drops=drops), start
        )

    def _parse_add_to_group(self) -> ast.AddToGroup:
        start = self._expect_ident("'add'")
        member = self._expect_ident("user or group").text
        self._expect_keyword("to")
        self._expect_keyword("group")
        group = self._expect_ident("group name").text
        return self._at(ast.AddToGroup(member=member, group=group), start)

    # -- expressions -----------------------------------------------------------------------

    def parse_expression(self, min_precedence: int = 0) -> ast.Expression:
        """Precedence-climbing expression parser."""
        left = self._parse_unary()
        while True:
            token = self._peek()
            symbol = self._infix_symbol(token)
            if symbol is None:
                return left
            info = self._ops.infix(symbol)
            precedence = info.precedence if info else OperatorTable.COMPARISON
            if precedence < min_precedence:
                return left
            left = self._parse_infix(left, symbol, precedence, info)

    def _infix_symbol(self, token: Token) -> Optional[str]:
        """The infix operator symbol starting at ``token``, if any."""
        if token.type is TokenType.OP:
            return token.text if self._ops.infix(token.text) else token.text
        if token.is_keyword("and", "or", "is", "isnot", "contains", "in"):
            return token.text
        if token.is_keyword("not") and self._peek(1).is_keyword("in"):
            return "not-in"
        return None

    def _parse_infix(
        self,
        left: ast.Expression,
        symbol: str,
        precedence: int,
        info: Optional[_OpInfo],
    ) -> ast.Expression:
        token = self._next()
        if symbol == "not-in":
            self._next()  # consume 'in'
            collection = self._parse_path()
            return self._at(
                ast.SetMembership(element=left, collection=collection, negated=True),
                token,
            )
        if symbol == "in":
            collection = self._parse_path()
            return self._at(
                ast.SetMembership(element=left, collection=collection), token
            )
        if symbol == "contains":
            if not isinstance(left, ast.Path):
                raise self._error("'contains' requires a path on the left", token)
            element = self.parse_expression(OperatorTable.COMPARISON + 1)
            return self._at(
                ast.SetMembership(element=element, collection=left), token
            )
        if symbol in ("is", "isnot"):
            if self._accept_keyword("null"):
                right: ast.Expression = self._at(ast.NullLiteral(), token)
            else:
                right = self.parse_expression(OperatorTable.COMPARISON + 1)
            return self._at(ast.BinaryOp(op=symbol, left=left, right=right), token)
        if info is None:
            raise self._error(f"unknown operator {symbol!r}", token)
        next_min = precedence + 1 if info.associativity == "left" else precedence
        right = self.parse_expression(next_min)
        return self._at(ast.BinaryOp(op=symbol, left=left, right=right), token)

    def _parse_unary(self) -> ast.Expression:
        token = self._peek()
        if token.is_keyword("not"):
            self._next()
            operand = self.parse_expression(self._ops.prefix("not").precedence)
            return self._at(ast.UnaryOp(op="not", operand=operand), token)
        if token.type is TokenType.OP:
            info = self._ops.prefix(token.text)
            if info is not None:
                self._next()
                operand = self.parse_expression(info.precedence)
                return self._at(ast.UnaryOp(op=token.text, operand=operand), token)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self._peek()
        if token.type in (TokenType.INT, TokenType.FLOAT, TokenType.STRING):
            self._next()
            return self._at(ast.Literal(value=token.value), token)
        if token.is_keyword("true", "false"):
            self._next()
            return self._at(ast.Literal(value=token.value), token)
        if token.is_keyword("null"):
            self._next()
            return self._at(ast.NullLiteral(), token)
        if token.type is TokenType.LPAREN:
            self._next()
            inner = self.parse_expression()
            self._expect(TokenType.RPAREN, "')'")
            return inner
        if token.type is TokenType.IDENT:
            ident = self._next()
            if self._peek().type is TokenType.LPAREN:
                call = self._parse_call(ident)
                steps = self._parse_steps()
                if steps:
                    return self._at(
                        ast.SuffixPath(base=call, steps=steps), ident
                    )
                return call
            return self._parse_path_from(ident)
        raise self._error(f"expected an expression, found {token.text!r}")

    def _parse_call(self, name: Token) -> ast.Expression:
        """``Name(...)`` — a function call or aggregate; an ``over`` or a
        ``where`` inside the parentheses makes it an aggregate."""
        self._expect(TokenType.LPAREN, "'('")
        args: list[ast.Expression] = []
        over: Optional[ast.Path] = None
        where: Optional[ast.Expression] = None
        if self._peek().type is not TokenType.RPAREN:
            args.append(self.parse_expression())
            while self._accept(TokenType.COMMA):
                args.append(self.parse_expression())
            if self._accept_keyword("over"):
                over = self._parse_path()
            if self._accept_keyword("where"):
                where = self.parse_expression()
        self._expect(TokenType.RPAREN, "')'")
        if over is not None or where is not None:
            if len(args) != 1:
                raise self._error(
                    "aggregates take exactly one argument expression", name
                )
            return self._at(
                ast.Aggregate(
                    name=name.text, argument=args[0], over=over, where=where
                ),
                name,
            )
        return self._at(ast.FunctionCall(name=name.text, args=args), name)

    def _parse_path(self) -> ast.Path:
        root = self._expect_ident("path")
        return self._parse_path_from(root)

    def _parse_steps(self) -> list[ast.PathStep]:
        steps: list[ast.PathStep] = []
        while True:
            if self._accept(TokenType.DOT):
                attr = self._expect_ident("attribute name")
                steps.append(
                    self._at(ast.AttributeStep(name=attr.text), attr)
                )
            elif self._peek().type is TokenType.LBRACKET:
                bracket = self._next()
                index = self.parse_expression()
                self._expect(TokenType.RBRACKET, "']'")
                steps.append(self._at(ast.IndexStep(index=index), bracket))
            else:
                return steps

    def _parse_path_from(self, root: Token) -> ast.Path:
        steps = self._parse_steps()
        return self._at(ast.Path(root=root.text, steps=steps), root)


def parse_script(
    text: str, operators: Optional[OperatorTable] = None
) -> ast.Script:
    """Tokenize and parse a whole script."""
    table = operators if operators is not None else OperatorTable()
    lexer = Lexer(text, extra_symbols=table.punctuation_symbols())
    return Parser(lexer.tokens(), table).parse_script()


def parse_statement(
    text: str, operators: Optional[OperatorTable] = None
) -> ast.Statement:
    """Tokenize and parse exactly one statement."""
    table = operators if operators is not None else OperatorTable()
    lexer = Lexer(text, extra_symbols=table.punctuation_symbols())
    parser = Parser(lexer.tokens(), table)
    statement = parser.parse_statement()
    trailing = parser._peek()
    while trailing.type is TokenType.SEMI:
        parser._next()
        trailing = parser._peek()
    if trailing.type is not TokenType.EOF:
        raise ParseError(
            f"unexpected input after statement: {trailing.text!r}",
            trailing.line,
            trailing.column,
        )
    return statement
