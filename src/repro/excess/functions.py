"""EXCESS functions: derived data attached to schema types (paper §4.2.1).

A function is defined with an EXCESS retrieve body over its parameters
(``define function Pay (E in Employee) returns float8 as retrieve
(E.salary + E.bonus)``) and invoked either with call syntax ``Pay(E)`` or
— because the binder treats a function of one object the way it treats an
attribute — as a derived attribute. Functions are **side-effect free**
(bodies are retrieves only; updates through functions are not permitted),
are **inherited** through the type lattice, and may be **redefined** for
a subtype: dispatch is dynamic on the first argument's runtime type,
like C++ virtual member functions, unless the function was declared
``fixed`` (the paper's non-virtual case).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.core.schema import SchemaType
from repro.core.types import ComponentSpec, SetType, Type
from repro.core.values import NULL, SetInstance
from repro.errors import EvaluationError, FunctionError
from repro.excess import ast_nodes as ast
from repro.excess.binder import Binder, BoundRetrieve, Scope, VarRef

if TYPE_CHECKING:  # pragma: no cover
    from repro.excess.evaluator import Evaluator

__all__ = ["FunctionParam", "ExcessFunction", "bind_function_body", "call_function"]


@dataclass(frozen=True)
class FunctionParam:
    """One function parameter: its name, component spec, and whether it
    is an object parameter (``V in Type``) or a value parameter."""

    name: str
    spec: ComponentSpec

    @property
    def is_object(self) -> bool:
        """True for ``V in Type`` object parameters."""
        return self.spec.semantics.is_object


@dataclass
class ExcessFunction:
    """A registered EXCESS function."""

    name: str
    #: schema type the function attaches to (the first parameter's type)
    type_name: str
    params: list[FunctionParam]
    returns: ComponentSpec
    body: ast.Retrieve
    fixed: bool = False
    replace: bool = False
    #: cached bound body (rebuilt lazily, excluded from snapshots)
    bound: Optional[BoundRetrieve] = field(default=None, repr=False, compare=False)

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["bound"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    @property
    def result_type(self) -> Type:
        """The function's declared result type."""
        return self.returns.type

    @property
    def returns_object(self) -> bool:
        """True when the function returns an object reference."""
        return self.returns.semantics.is_object

    @property
    def returns_set(self) -> bool:
        """True when the function returns a set of values."""
        return isinstance(self.returns.type, SetType)


def parameter_scope(function: ExcessFunction) -> Scope:
    """Build the binding scope exposing the function's parameters."""
    scope = Scope()
    for param in function.params:
        scope.parameters[param.name] = VarRef(
            name=f"@{param.name}",
            type=param.spec.type,
            is_object=param.is_object,
        )
    return scope


def bind_function_body(function: ExcessFunction, binder: Binder) -> BoundRetrieve:
    """Bind (and cache) the function's retrieve body.

    The body binds in a scope that exposes only the parameters plus the
    catalog — session range variables are not visible inside function
    bodies, keeping them self-contained.
    """
    if function.bound is None:
        scope = parameter_scope(function)
        bound = binder.bind_retrieve(function.body, outer_scope=scope)
        if len(bound.targets) != 1:
            raise FunctionError(
                f"function {function.name!r}: the body must have exactly one "
                "target expression"
            )
        function.bound = bound
    return function.bound


def call_function(
    evaluator: "Evaluator",
    name: str,
    fixed_function: Optional[ExcessFunction],
    args: list,
) -> Any:
    """Invoke an EXCESS function with already-evaluated arguments.

    Dispatch is dynamic on the first argument's runtime type unless a
    ``fixed`` function was statically resolved. A null first argument
    yields null (a derived attribute of nothing is nothing).
    """
    catalog = evaluator.db.catalog
    first = args[0] if args else NULL
    if first is NULL:
        return NULL
    if fixed_function is not None:
        function = fixed_function
    else:
        instance = evaluator._resolve_instance(first)
        if instance is None:
            return NULL
        if not isinstance(instance.type, SchemaType):
            raise EvaluationError(
                f"function {name!r} requires a schema-typed object"
            )
        function = catalog.lookup_function(instance.type, name)
        if function is None:
            raise EvaluationError(
                f"no function {name!r} for type {instance.type.name!r}"
            )
    if len(args) != len(function.params):
        raise EvaluationError(
            f"function {function.name!r} takes {len(function.params)} "
            f"arguments, got {len(args)}"
        )
    # §4.2.3: functions are grantable units; the caller needs execute.
    # The body itself then runs with definer rights (no inner checks).
    if evaluator.db.authz.enabled:
        from repro.authz.grants import Privilege

        evaluator.db.authz.check(
            evaluator.user, Privilege.EXECUTE, function.name
        )
    binder = Binder(catalog)
    bound = bind_function_body(function, binder)
    env = {
        f"@{param.name}": value for param, value in zip(function.params, args)
    }
    result = evaluator.run_retrieve(bound, base_env=env)
    values = [row[0] for row in result.rows]
    if function.returns_set:
        out = SetInstance(function.returns.type)  # type: ignore[arg-type]
        for value in values:
            if value is not NULL:
                out.insert(value)
        return out
    if not values:
        return NULL
    if len(values) > 1:
        raise EvaluationError(
            f"function {function.name!r} returned {len(values)} values but "
            "is declared scalar"
        )
    return values[0]
