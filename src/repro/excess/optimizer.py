"""Rule-based query optimization.

The EXODUS optimizer was generated from rewrite rules ([Grae87]); EXCESS
feeds it tabular access-method applicability information so ADTs can be
added dynamically (paper §4.1.3). This module reproduces that
architecture at small scale with three rule families:

1. **Conjunct normalization** — the where clause is flattened into
   conjuncts; constant-on-left comparisons are flipped using the
   operator-properties table (``5 < E.age`` → ``E.age > 5``) so index
   selection can fire.
2. **Predicate pushdown** — conjuncts mentioning exactly one (existential)
   range variable become *residual* filters on that variable's binding,
   applied as soon as the binding produces a value instead of after the
   full cross product.
3. **Access-method selection** — for a residual of shape ``V.attr op
   constant`` over a named-set binding, the access-method table is
   consulted for index kinds able to evaluate ``op`` over the attribute's
   type; if a matching physical index exists, the binding's scan becomes
   an index scan (equality preferred over range).

Finally bindings are **reordered**. By default the order comes from a
cost-based search driven by catalog statistics
(:mod:`repro.core.statistics`): per-binding cardinalities are estimated
from predicate selectivities (equality via distinct counts, ranges via
equi-depth histogram interpolation, System R fallbacks when a set was
never analyzed), join selectivities from distinct counts, and the search
costs every dependency-valid order exhaustively up to
:data:`DP_CUTOFF` existential bindings (dynamic programming over order
prefixes), switching to greedy cheapest-next above. ``cost_based=False``
restores the older heuristic (indexed first, filtered next, bare scans
last). The optimizer is switchable (``enabled=False``) so benchmarks can
measure its effect (experiments P1, P8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.catalog import Catalog
from repro.core.statistics import (
    DEFAULT_EQ_SELECTIVITY,
    DEFAULT_NEQ_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
)
from repro.core.types import TupleType
from repro.excess.binder import (
    AggregateRef,
    AttrStep,
    Binary,
    BoundExpr,
    BoundQuery,
    Const,
    ExcessCall,
    AdtCall,
    IndexStepB,
    Membership,
    NamedSetSource,
    PathSource,
    RangeBinding,
    Unary,
    VarRef,
)

__all__ = ["OptimizerReport", "Optimizer", "CostModel", "DP_CUTOFF"]

#: up to this many existential bindings every dependency-valid order is
#: costed exhaustively; above it the search goes greedy cheapest-next
DP_CUTOFF = 4

#: row counts never estimate below this (zero would flatten all costs)
_MIN_ROWS = 1e-3


@dataclass
class OptimizerReport:
    """What the optimizer did to one query (for EXPLAIN-style output)."""

    pushed_down: int = 0
    index_scans: list[str] = field(default_factory=list)
    normalized: int = 0
    binding_order: list[str] = field(default_factory=list)
    enabled: bool = True
    #: equi-join conjuncts rewritten to hash joins ("probe*build:op")
    hash_joins: list[str] = field(default_factory=list)
    #: membership predicates rewritten to cached semi-join probes
    semi_joins: int = 0
    #: how the binding order was found: "dp" (exhaustive cost search),
    #: "greedy-cost" (above the DP cutoff), "heuristic" (rule ranks), or
    #: "" (reorder disabled / optimizer off)
    search: str = ""
    #: orders (dp) or candidate extensions (greedy-cost) the search costed
    considered_orders: int = 0
    #: estimated cost of the chosen order and of the best rejected
    #: alternative (``None`` when fewer than two orders were valid)
    chosen_cost: Optional[float] = None
    runner_up_cost: Optional[float] = None
    #: expression-execution mode the plan will run under ("closure" |
    #: "off"; "" when prepared outside the interpreter)
    compile_mode: str = ""
    #: plan-execution mode ("fused" | "batch" | "row"; "" when prepared
    #: outside the interpreter)
    exec_mode: str = ""
    #: fusable Scan→Filter…→Project regions the lowered plan contains
    #: (each runs as one generated function in fused mode)
    pipelines: int = 0
    #: parallel lowering outcome: "dop=N, range|hash" when exchange
    #: operators were inserted, "serial" when parallel mode considered
    #: the plan and declined, "" when parallel mode is off
    parallel: str = ""

    def describe(self) -> str:
        """One-line human-readable summary."""
        if not self.enabled:
            message = "optimizer disabled: nested-loop scan in declaration order"
            if self.compile_mode:
                message += f"; exprs={self.compile_mode}"
            if self.exec_mode:
                message += f"; exec={self.exec_mode}"
                if self.exec_mode == "fused":
                    message += f" (pipelines={self.pipelines})"
            if self.parallel:
                message += f"; parallel={self.parallel}"
            return message
        parts = [
            f"pushdown={self.pushed_down}",
            f"normalized={self.normalized}",
            "index=[" + ", ".join(self.index_scans) + "]",
            "hashjoin=[" + ", ".join(self.hash_joins) + "]",
            f"semijoin={self.semi_joins}",
            "order=[" + ", ".join(self.binding_order) + "]",
        ]
        if self.search in ("dp", "greedy-cost"):
            cost = f"{self.chosen_cost:.1f}" if self.chosen_cost is not None else "?"
            runner = (
                f", runner-up={self.runner_up_cost:.1f}"
                if self.runner_up_cost is not None
                else ""
            )
            parts.append(
                f"cost[{self.search}: considered={self.considered_orders}, "
                f"chosen={cost}{runner}]"
            )
        if self.compile_mode:
            parts.append(f"exprs={self.compile_mode}")
        if self.exec_mode:
            note = f"exec={self.exec_mode}"
            if self.exec_mode == "fused":
                note += f" (pipelines={self.pipelines})"
            parts.append(note)
        if self.parallel:
            parts.append(f"parallel={self.parallel}")
        return "; ".join(parts)


class CostModel:
    """Cardinality and selectivity estimation over catalog statistics.

    Falls back to the System R constants when a set was never analyzed
    (or its statistics went stale), so every estimate is always defined.
    """

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self.statistics = getattr(catalog, "statistics", None)

    def base_rows(self, binding: RangeBinding) -> float:
        """Rows the binding's source holds (before any predicate)."""
        source = binding.source
        if isinstance(source, NamedSetSource):
            return float(max(1, self.catalog.cardinality(source.set_name)))
        if isinstance(source, PathSource):
            return 4.0  # nested sets are small in this workload family
        return 8.0  # iterator functions

    def access_selectivity(self, binding: RangeBinding) -> float:
        """Selectivity of the index probe predicate (1.0 for scans)."""
        if binding.access != "index" or binding.index_descriptor is None:
            return 1.0
        value = (
            binding.index_key.value
            if isinstance(binding.index_key, Const)
            else None
        )
        return self._predicate_selectivity(
            binding, binding.index_descriptor.attribute, binding.index_op, value
        )

    def conjunct_selectivity(
        self, binding: RangeBinding, conjunct: BoundExpr
    ) -> float:
        """Selectivity of one residual conjunct on one binding."""
        if isinstance(conjunct, Binary) and conjunct.kind == "compare":
            probe = self._attr_probe(conjunct, binding.name)
            if probe is not None:
                attribute, op, value = probe
                return self._predicate_selectivity(binding, attribute, op, value)
            return self._default_selectivity(conjunct.op)
        return 0.5

    def filtered_rows(self, binding: RangeBinding) -> float:
        """Estimated rows out of the binding's subtree (access method
        plus residual filters)."""
        rows = self.base_rows(binding) * self.access_selectivity(binding)
        for conjunct in binding.residual:
            rows *= self.conjunct_selectivity(binding, conjunct)
        return max(rows, _MIN_ROWS)

    def touch_rows(self, binding: RangeBinding) -> float:
        """Rows one pass of the access method touches (its scan cost)."""
        if binding.access == "index":
            return max(
                1.0, self.base_rows(binding) * self.access_selectivity(binding)
            )
        return self.base_rows(binding)

    def join_selectivity(
        self,
        binding_a: RangeBinding,
        expr_a: BoundExpr,
        binding_b: RangeBinding,
        expr_b: BoundExpr,
    ) -> float:
        """System R join selectivity: ``1 / max(V(A), V(B))`` with
        distinct counts from statistics, cardinalities as fallback."""
        distinct_a = self._side_distinct(binding_a, expr_a)
        distinct_b = self._side_distinct(binding_b, expr_b)
        return 1.0 / max(distinct_a, distinct_b, 1.0)

    # -- internals ----------------------------------------------------------------

    def _side_distinct(self, binding: RangeBinding, expr: BoundExpr) -> float:
        if isinstance(expr, VarRef):
            # joining on the object itself: every member is distinct
            return self.base_rows(binding)
        if (
            self.statistics is not None
            and isinstance(expr, AttrStep)
            and isinstance(expr.base, VarRef)
            and isinstance(binding.source, NamedSetSource)
        ):
            distinct = self.statistics.distinct(
                binding.source.set_name, expr.attribute
            )
            if distinct:
                return float(distinct)
        return self.base_rows(binding)

    def _predicate_selectivity(
        self, binding: RangeBinding, attribute: str, op: str, value: Any
    ) -> float:
        if (
            self.statistics is not None
            and value is not None
            and isinstance(binding.source, NamedSetSource)
        ):
            set_name = binding.source.set_name
            if op == "=":
                return self.statistics.eq_selectivity(set_name, attribute, value)
            if op in ("<", "<=", ">", ">="):
                return self.statistics.range_selectivity(
                    set_name, attribute, op, value
                )
        return self._default_selectivity(op)

    @staticmethod
    def _default_selectivity(op: str) -> float:
        if op == "=":
            return DEFAULT_EQ_SELECTIVITY
        if op in ("<", "<=", ">", ">="):
            return DEFAULT_RANGE_SELECTIVITY
        if op == "!=":
            return DEFAULT_NEQ_SELECTIVITY
        return 0.5

    @staticmethod
    def _attr_probe(
        conjunct: Binary, variable: str
    ) -> Optional[tuple[str, str, Any]]:
        """Match ``V.attr op <literal>`` and extract the literal value."""
        left, right = conjunct.left, conjunct.right
        if (
            isinstance(left, AttrStep)
            and isinstance(left.base, VarRef)
            and left.base.name == variable
            and isinstance(right, Const)
        ):
            return left.attribute, conjunct.op, right.value
        return None


class Optimizer:
    """Optimizes a bound query in place and returns a report.

    The rule families can be toggled individually (``normalize``,
    ``pushdown``, ``index_selection``, ``reorder``) for ablation
    experiments; ``enabled=False`` disables everything.
    """

    def __init__(
        self,
        catalog: Catalog,
        enabled: bool = True,
        normalize: bool = True,
        pushdown: bool = True,
        index_selection: bool = True,
        reorder: bool = True,
        hash_joins: bool = True,
        cost_based: bool = True,
        compile_mode: str = "",
        exec_mode: str = "",
        parallel_mode: str = "",
        workers: int = 0,
    ):
        self.catalog = catalog
        self.enabled = enabled
        self.normalize_rule = normalize
        self.pushdown_rule = pushdown
        self.index_rule = index_selection
        self.reorder_rule = reorder
        self.hash_join_rule = hash_joins
        #: cost-based join-order search (False = the older greedy ranks)
        self.cost_based = cost_based
        #: recorded on the report for EXPLAIN (execution-layer flags; the
        #: optimizer itself is mode-independent)
        self.compile_mode = compile_mode
        self.exec_mode = exec_mode
        #: exchange-operator insertion during lowering ("process" = on;
        #: anything else leaves plans serial and byte-identical)
        self.parallel_mode = parallel_mode
        self.workers = workers

    def optimize(self, query: BoundQuery) -> OptimizerReport:
        """Apply the rule families to ``query`` (mutating it)."""
        report = OptimizerReport(
            enabled=self.enabled,
            compile_mode=self.compile_mode,
            exec_mode=self.exec_mode,
        )
        # annotations are about to change; any previously lowered plan
        # for this bound query is stale
        query.plan = None
        if not self.enabled:
            report.binding_order = [b.name for b in query.bindings]
            return report
        conjuncts = self._flatten_conjuncts(query.where)
        if self.normalize_rule:
            conjuncts = [self._normalize(c, report) for c in conjuncts]
        remaining: list[BoundExpr] = []
        for conjunct in conjuncts:
            variables = self._variables_of(conjunct)
            target = (
                self._pushdown_target(conjunct, variables, query)
                if self.pushdown_rule
                else None
            )
            if target is not None:
                target.residual.append(conjunct)
                report.pushed_down += 1
            else:
                remaining.append(conjunct)
        consumed: dict[str, BoundExpr] = {}
        if self.index_rule:
            for binding in query.bindings:
                taken = self._select_access(binding, report)
                if taken is not None:
                    consumed[binding.name] = taken
        cost = CostModel(self.catalog)
        edges = self._join_edges(query, remaining, cost)
        if self.cost_based and self.hash_join_rule:
            self._demote_weak_indexes(query, edges, consumed, cost, report)
        if self.reorder_rule:
            if self.cost_based:
                self._order_bindings_cost(query, edges, cost, report)
            else:
                self._order_bindings(query)
                report.search = "heuristic"
        self._annotate_binding_estimates(query, cost)
        if self.hash_join_rule:
            remaining = self._select_hash_joins(query, remaining, report)
        self._annotate_cumulative(query, edges, remaining, cost)
        self._mark_semi_joins(query, remaining, report)
        query.where = self._rebuild_conjunction(remaining)
        report.binding_order = [b.name for b in query.bindings]
        # Optimize aggregate inner iterations the same way.
        for aggregate in query.aggregates:
            inner = BoundQuery(
                bindings=aggregate.inner_bindings, where=aggregate.where
            )
            self.optimize(inner)
            aggregate.inner_bindings = inner.bindings
            aggregate.where = inner.where
            aggregate.inner_query = None
        return report

    def lower(self, bound: Any, report: Optional[OptimizerReport] = None) -> Any:
        """Lower an optimized bound statement to its physical plan.

        Retrieves lower to their full pipeline
        (``StoreInto?(Sort?(Project(...)))``); update statements lower
        their query block to the shared binding pipeline. The plan is
        cached on the bound objects, so cached statements skip lowering.
        With ``report`` given, the lowered tree's fusable pipeline
        regions are counted onto it (EXPLAIN's ``pipelines=``).
        """
        from repro.excess.binder import BoundRetrieve
        from repro.excess.plan import (
            ensure_query_plan,
            ensure_retrieve_plan,
            fused_regions,
            parallelize_pipeline,
        )

        if isinstance(bound, BoundRetrieve):
            root = ensure_retrieve_plan(bound, self.catalog)
            if self.parallel_mode == "process" and self.workers >= 2:
                root, info = parallelize_pipeline(
                    root, self.catalog, self.workers
                )
                bound.pipeline = root
                if report is not None:
                    report.parallel = (
                        f"dop={info['dop']}, {info['mode']}"
                        if info is not None
                        else "serial"
                    )
        else:
            query = getattr(bound, "query", None)
            if isinstance(query, BoundQuery):
                root = ensure_query_plan(query, self.catalog)
            else:
                root = None
        if report is not None and root is not None:
            report.pipelines = len(fused_regions(root))
        return root

    # -- conjunct handling -------------------------------------------------------

    def _flatten_conjuncts(self, where: Optional[BoundExpr]) -> list[BoundExpr]:
        if where is None:
            return []
        if isinstance(where, Binary) and where.kind == "bool" and where.op == "and":
            return self._flatten_conjuncts(where.left) + self._flatten_conjuncts(
                where.right
            )
        return [where]

    def _rebuild_conjunction(
        self, conjuncts: list[BoundExpr]
    ) -> Optional[BoundExpr]:
        if not conjuncts:
            return None
        out = conjuncts[0]
        from repro.core.types import BOOLEAN

        for conjunct in conjuncts[1:]:
            out = Binary(
                op="and", left=out, right=conjunct, kind="bool", type=BOOLEAN
            )
        return out

    def _normalize(self, conjunct: BoundExpr, report: OptimizerReport) -> BoundExpr:
        """Flip constant-on-left comparisons using the converse table."""
        if (
            isinstance(conjunct, Binary)
            and conjunct.kind == "compare"
            and isinstance(conjunct.left, Const)
            and not isinstance(conjunct.right, Const)
        ):
            properties = self.catalog.access_table.operator_properties(conjunct.op)
            converse = properties.converse
            if converse:
                report.normalized += 1
                return Binary(
                    op=converse,
                    left=conjunct.right,
                    right=conjunct.left,
                    kind="compare",
                    type=conjunct.type,
                    enum_labels=conjunct.enum_labels,
                )
        return conjunct

    # -- pushdown ------------------------------------------------------------------

    def _variables_of(self, expression: BoundExpr) -> set[str]:
        out: set[str] = set()
        stack = [expression]
        while stack:
            node = stack.pop()
            if isinstance(node, VarRef):
                out.add(node.name)
            elif isinstance(node, AttrStep):
                stack.append(node.base)
            elif isinstance(node, IndexStepB):
                stack.extend([node.base, node.index])
            elif isinstance(node, Binary):
                stack.extend([node.left, node.right])
            elif isinstance(node, Unary):
                stack.append(node.operand)
            elif isinstance(node, (AdtCall, ExcessCall)):
                stack.extend(node.args)
            elif isinstance(node, Membership):
                stack.append(node.element)
                if node.collection.base is not None:
                    stack.append(node.collection.base)
            elif isinstance(node, AggregateRef):
                # aggregate values are only available after their tables are
                # built; treat as multi-variable (never pushed down)
                out.add("$aggregate")
                if node.outer_key is not None:
                    stack.append(node.outer_key)
        return out

    def _pushdown_target(
        self,
        conjunct: BoundExpr,
        variables: set[str],
        query: BoundQuery,
    ) -> Optional[RangeBinding]:
        if "$aggregate" in variables:
            return None
        if len(variables) != 1:
            return None
        name = next(iter(variables))
        for binding in query.bindings:
            if binding.name == name:
                if binding.universal:
                    return None  # ∀-variables keep the full predicate
                # A residual on a nested binding still only fires once the
                # parent produced a value, which the evaluator guarantees.
                return binding
        return None

    # -- access selection ------------------------------------------------------------

    def _select_access(
        self, binding: RangeBinding, report: OptimizerReport
    ) -> Optional[BoundExpr]:
        """Pick an index access method; returns the conjunct the index
        probe absorbed (so cost-based search can undo the choice)."""
        if not isinstance(binding.source, NamedSetSource):
            return None
        set_name = binding.source.set_name
        element = binding.element_type
        if not isinstance(element, TupleType):
            return None
        best: Optional[tuple[int, BoundExpr, str, str, Any, BoundExpr]] = None
        for conjunct in binding.residual:
            probe = self._indexable_probe(conjunct, binding.name, element)
            if probe is None:
                continue
            attribute, op, key_expr = probe
            attr_type = element.attribute(attribute).type
            kinds = self.catalog.access_table.applicable(attr_type.tag, op)
            if not kinds:
                continue
            descriptor = self.catalog.indexes.find(set_name, attribute, kinds)
            if descriptor is None:
                continue
            rank = 0 if op == "=" else 1
            if descriptor.kind == "hash" and op != "=":
                continue
            candidate = (rank, conjunct, attribute, op, descriptor, key_expr)
            if best is None or candidate[0] < best[0]:
                best = candidate
        if best is None:
            return None
        _rank, conjunct, attribute, op, descriptor, key_expr = best
        binding.access = "index"
        binding.index_descriptor = descriptor
        binding.index_op = op
        binding.index_key = key_expr
        binding.residual.remove(conjunct)
        report.index_scans.append(
            f"{binding.name}:{descriptor.set_name}.{attribute}:{descriptor.kind}:{op}"
        )
        return conjunct

    def _indexable_probe(
        self, conjunct: BoundExpr, variable: str, element: TupleType
    ) -> Optional[tuple[str, str, BoundExpr]]:
        """Match ``V.attr op <constant expression>`` patterns.

        The probe key may be any variable-free expression — a literal or
        e.g. an ADT constructor call like ``Date("1/1/1930")`` — since it
        can be evaluated once before the scan.
        """
        if not isinstance(conjunct, Binary) or conjunct.kind != "compare":
            return None
        left, right = conjunct.left, conjunct.right
        if self._variables_of(right):
            return None
        if not isinstance(left, AttrStep):
            return None
        if not isinstance(left.base, VarRef) or left.base.name != variable:
            return None
        if not element.has_attribute(left.attribute):
            return None
        if conjunct.op not in ("=", "<", "<=", ">", ">="):
            return None
        return left.attribute, conjunct.op, right

    # -- ordering ----------------------------------------------------------------------

    def _order_bindings(self, query: BoundQuery) -> None:
        """Greedy order: indexed < filtered < bare scans, dependencies and
        universality respected (∀ bindings stay last)."""

        def score(binding: RangeBinding) -> tuple[int, int]:
            if binding.universal:
                return (3, 0)
            if binding.access == "index":
                return (0, -len(binding.residual))
            if binding.residual:
                return (1, -len(binding.residual))
            return (2, 0)

        ordered: list[RangeBinding] = []
        placed: set[str] = set()
        pending = list(query.bindings)
        while pending:
            candidates = [
                b for b in pending
                if not isinstance(b.source, PathSource)
                or b.source.parent in placed
                or all(p.name != b.source.parent for p in pending)
            ]
            candidates.sort(key=score)
            chosen = candidates[0]
            ordered.append(chosen)
            placed.add(chosen.name)
            pending.remove(chosen)
        query.bindings = ordered

    # -- cost-based ordering ------------------------------------------------------------

    def _join_edges(
        self, query: BoundQuery, remaining: list[BoundExpr], cost: CostModel
    ) -> dict:
        """Pairwise join-predicate info for the cost search:
        ``frozenset({a, b}) → {"sel": float, "equi": bool}`` (selectivities
        of multiple conjuncts over the same pair multiply)."""
        by_name = {b.name: b for b in query.bindings}
        edges: dict = {}
        for conjunct in remaining:
            pair = self._equi_join_pair(conjunct, by_name)
            if pair is not None:
                (name_a, expr_a), (name_b, expr_b) = pair
                sel = cost.join_selectivity(
                    by_name[name_a], expr_a, by_name[name_b], expr_b
                )
                equi = True
            else:
                if not isinstance(conjunct, Binary):
                    continue
                variables = self._variables_of(conjunct)
                if len(variables) != 2 or "$aggregate" in variables:
                    continue
                name_a, name_b = sorted(variables)
                if name_a not in by_name or name_b not in by_name:
                    continue
                sel = (
                    CostModel._default_selectivity(conjunct.op)
                    if conjunct.kind == "compare"
                    else 0.5
                )
                equi = False
            key = frozenset((name_a, name_b))
            info = edges.setdefault(key, {"sel": 1.0, "equi": False})
            info["sel"] *= sel
            info["equi"] = info["equi"] or equi
        return edges

    def _demote_weak_indexes(
        self,
        query: BoundQuery,
        edges: dict,
        consumed: dict[str, BoundExpr],
        cost: CostModel,
        report: OptimizerReport,
    ) -> None:
        """SeqScan vs IndexScan, by cost: an index probe that barely
        filters (estimated selectivity > 0.5) blocks the hash-join
        rewrite (build sides must be plain scans), so when the binding
        has an equi-join edge, scanning and hashing is cheaper — revert
        the index choice and push the conjunct back to the residuals."""
        for binding in query.bindings:
            if binding.access != "index" or binding.name not in consumed:
                continue
            if binding.universal or not isinstance(
                binding.source, NamedSetSource
            ):
                continue
            has_equi = any(
                binding.name in pair and info["equi"]
                for pair, info in edges.items()
            )
            if not has_equi:
                continue
            if cost.access_selectivity(binding) <= 0.5:
                continue
            binding.residual.append(consumed.pop(binding.name))
            binding.access = "scan"
            binding.index_descriptor = None
            binding.index_op = ""
            binding.index_key = None
            report.index_scans = [
                entry
                for entry in report.index_scans
                if not entry.startswith(binding.name + ":")
            ]

    def _order_bindings_cost(
        self,
        query: BoundQuery,
        edges: dict,
        cost: CostModel,
        report: OptimizerReport,
    ) -> None:
        """Cost-based binding order: exhaustive up to :data:`DP_CUTOFF`
        existential bindings, greedy cheapest-next above. Universal
        bindings stay last (they lower to :class:`UniversalCheck`)."""
        existential = [b for b in query.bindings if not b.universal]
        universal = [b for b in query.bindings if b.universal]
        if len(existential) <= 1:
            report.search = "dp"
            report.considered_orders = 1
            report.chosen_cost = (
                cost.touch_rows(existential[0]) if existential else 0.0
            )
            query.bindings = existential + universal
            return
        names = {b.name for b in existential}

        def dependency(binding: RangeBinding) -> Optional[str]:
            source = binding.source
            if isinstance(source, PathSource) and source.parent in names:
                return source.parent
            return None

        if len(existential) <= DP_CUTOFF:
            ordered = self._exhaustive_order(
                existential, dependency, edges, cost, report
            )
        else:
            ordered = self._greedy_cost_order(
                existential, dependency, edges, cost, report
            )
        query.bindings = ordered + universal

    def _exhaustive_order(
        self, bindings, dependency, edges: dict, cost: CostModel, report
    ) -> list:
        """Cost every dependency-valid order (dynamic programming over
        order prefixes — at most 4! = 24 full orders below the cutoff)."""
        declaration = {b.name: i for i, b in enumerate(bindings)}
        totals: list[tuple[float, tuple, list]] = []

        def extend(order, placed, so_far, rows):
            if len(order) == len(bindings):
                totals.append(
                    (so_far, tuple(declaration[b.name] for b in order), order)
                )
                return
            for binding in bindings:
                if binding.name in placed:
                    continue
                parent = dependency(binding)
                if parent is not None and parent not in placed:
                    continue
                step, out = self._step_cost(binding, placed, rows, edges, cost)
                extend(
                    order + [binding],
                    placed | {binding.name},
                    so_far + step,
                    out,
                )

        extend([], frozenset(), 0.0, None)
        totals.sort(key=lambda entry: (entry[0], entry[1]))
        report.search = "dp"
        report.considered_orders = len(totals)
        report.chosen_cost = totals[0][0]
        if len(totals) > 1:
            report.runner_up_cost = totals[1][0]
        return totals[0][2]

    def _greedy_cost_order(
        self, bindings, dependency, edges: dict, cost: CostModel, report
    ) -> list:
        """Above the cutoff: repeatedly append the cheapest valid next
        binding (ties broken by declaration order)."""
        declaration = {b.name: i for i, b in enumerate(bindings)}
        pending = list(bindings)
        order: list = []
        placed: set = set()
        rows: Optional[float] = None
        total = 0.0
        considered = 0
        while pending:
            best = None
            for binding in pending:
                parent = dependency(binding)
                if parent is not None and parent not in placed:
                    continue
                step, out = self._step_cost(binding, placed, rows, edges, cost)
                considered += 1
                key = (step, declaration[binding.name])
                if best is None or key < best[0]:
                    best = (key, binding, step, out)
            assert best is not None  # dependencies are acyclic
            _key, binding, step, out = best
            order.append(binding)
            placed.add(binding.name)
            pending.remove(binding)
            total += step
            rows = out
        report.search = "greedy-cost"
        report.considered_orders = considered
        report.chosen_cost = total
        return order

    def _step_cost(
        self,
        binding: RangeBinding,
        placed,
        rows: Optional[float],
        edges: dict,
        cost: CostModel,
    ) -> tuple[float, float]:
        """Incremental cost and output rows of appending ``binding`` to a
        partial order producing ``rows`` rows.

        The first binding costs one pass of its access method. A later
        binding with an equi-join edge to the prefix and a hashable scan
        costs one build pass plus one probe per outer row; anything else
        nested-loops: one access pass per outer row. Output rows shrink
        by join selectivity only at hash joins — leftover join predicates
        filter above the joins, exactly as the lowered pipeline does.
        """
        touch = cost.touch_rows(binding)
        out = cost.filtered_rows(binding)
        if rows is None:
            return touch, out
        selectivity = 1.0
        equi = False
        for other in placed:
            info = edges.get(frozenset((binding.name, other)))
            if info is not None:
                selectivity *= info["sel"]
                equi = equi or info["equi"]
        if equi and self._hashable_build(binding):
            return touch + rows, max(rows * out * selectivity, _MIN_ROWS)
        return rows * touch, max(rows * out, _MIN_ROWS)

    # -- estimate annotations -----------------------------------------------------------

    def _annotate_binding_estimates(
        self, query: BoundQuery, cost: CostModel
    ) -> None:
        """Stamp per-binding row estimates for lowering and the
        build-side swap (universal bindings lower to checks, not rows)."""
        for binding in query.bindings:
            if binding.universal:
                continue
            access = cost.base_rows(binding) * cost.access_selectivity(binding)
            binding.est_base_rows = max(1, round(access))
            binding.est_rows = max(1, round(cost.filtered_rows(binding)))

    def _annotate_cumulative(
        self,
        query: BoundQuery,
        edges: dict,
        remaining: list[BoundExpr],
        cost: CostModel,
    ) -> None:
        """Walk the final order stamping cumulative row estimates on each
        join step, then estimate the pipeline's output after the leftover
        where-clause predicates."""
        rows: Optional[float] = None
        placed: list[str] = []
        absorbed: set = set()
        for binding in query.bindings:
            if binding.universal:
                continue
            out = float(binding.est_rows or 1)
            if rows is None:
                rows = out
            elif binding.join_strategy == "hash":
                selectivity = 1.0
                for other in placed:
                    key = frozenset((binding.name, other))
                    info = edges.get(key)
                    if info is not None and info["equi"]:
                        selectivity *= info["sel"]
                        absorbed.add(key)
                rows = rows * out * selectivity
            else:
                rows = rows * out
            rows = max(rows, _MIN_ROWS)
            binding.est_cum_rows = max(1, round(rows))
            placed.append(binding.name)
        if rows is None:
            rows = 1.0
        leftover = 1.0
        for key, info in edges.items():
            if key not in absorbed:
                leftover *= info["sel"]
        for conjunct in remaining:
            variables = self._variables_of(conjunct)
            if len(variables) == 2 and frozenset(variables) in edges:
                continue  # counted as an edge above
            leftover *= 0.5
        query.est_rows = max(1, round(max(rows * leftover, _MIN_ROWS)))

    def _estimated_rows(self, binding: RangeBinding) -> float:
        """The binding's post-filter row estimate (build-side swaps
        compare these, not declared cardinalities)."""
        if binding.est_rows is not None:
            return float(binding.est_rows)
        if isinstance(binding.source, NamedSetSource):
            return float(self.catalog.cardinality(binding.source.set_name))
        return 4.0

    # -- hash joins ---------------------------------------------------------------------

    def _select_hash_joins(
        self,
        query: BoundQuery,
        remaining: list[BoundExpr],
        report: OptimizerReport,
    ) -> list[BoundExpr]:
        """Rewrite equi-join conjuncts spanning two existential bindings.

        The later-ordered binding of the pair becomes the *build* side: its
        named set is loaded once into a hash table keyed by its side of the
        conjunct, and each outer (probe) row looks up matches instead of
        rescanning. When both sides are plain adjacent scans the pair is
        swapped so the smaller side — by *estimated* post-filter rows, not
        declared cardinality — is built.
        """
        kept: list[BoundExpr] = []
        positions = {b.name: i for i, b in enumerate(query.bindings)}
        by_name = {b.name: b for b in query.bindings}
        for conjunct in remaining:
            pair = self._equi_join_pair(conjunct, by_name)
            if pair is None:
                kept.append(conjunct)
                continue
            (name_a, expr_a), (name_b, expr_b) = pair
            if positions[name_a] < positions[name_b]:
                probe_name, probe_key = name_a, expr_a
                build_name, build_key = name_b, expr_b
            else:
                probe_name, probe_key = name_b, expr_b
                build_name, build_key = name_a, expr_a
            build = by_name[build_name]
            probe = by_name[probe_name]
            if not self._hashable_build(build):
                kept.append(conjunct)
                continue
            if (
                self._hashable_build(probe)
                and positions[build_name] - positions[probe_name] == 1
                and self._estimated_rows(probe) < self._estimated_rows(build)
            ):
                i, j = positions[probe_name], positions[build_name]
                query.bindings[i], query.bindings[j] = (
                    query.bindings[j],
                    query.bindings[i],
                )
                positions[probe_name], positions[build_name] = j, i
                probe_name, build_name = build_name, probe_name
                probe_key, build_key = build_key, probe_key
                probe, build = build, probe
            build.join_strategy = "hash"
            build.hash_build_key = build_key
            build.hash_probe_key = probe_key
            build.hash_join_op = conjunct.op
            build.join_detail = (
                f"hash(build={build_name}"
                f"~{int(self._estimated_rows(build))}"
                f", probe={probe_name})"
            )
            report.hash_joins.append(f"{probe_name}*{build_name}:{conjunct.op}")
        return kept

    def _equi_join_pair(
        self, conjunct: BoundExpr, bindings: dict[str, RangeBinding]
    ) -> Optional[tuple[tuple[str, BoundExpr], tuple[str, BoundExpr]]]:
        """Match ``f(A) = g(B)`` / ``f(A) is g(B)`` over two existential
        range variables of this query block."""
        if not isinstance(conjunct, Binary):
            return None
        is_value_join = conjunct.kind == "compare" and conjunct.op == "="
        is_object_join = conjunct.kind == "object" and conjunct.op == "is"
        if not (is_value_join or is_object_join):
            return None
        left_vars = self._variables_of(conjunct.left)
        right_vars = self._variables_of(conjunct.right)
        if len(left_vars) != 1 or len(right_vars) != 1:
            return None
        name_a = next(iter(left_vars))
        name_b = next(iter(right_vars))
        if name_a == name_b or "$aggregate" in (name_a, name_b):
            return None
        binding_a = bindings.get(name_a)
        binding_b = bindings.get(name_b)
        if binding_a is None or binding_b is None:
            return None
        if binding_a.universal or binding_b.universal:
            return None
        return (name_a, conjunct.left), (name_b, conjunct.right)

    def _hashable_build(self, binding: RangeBinding) -> bool:
        """Build sides must be env-independent full scans of a named set
        (so the table can be built once) not already claimed by a join."""
        return (
            not binding.universal
            and binding.join_strategy == "loop"
            and binding.access == "scan"
            and isinstance(binding.source, NamedSetSource)
        )

    # -- semi-joins ---------------------------------------------------------------------

    def _mark_semi_joins(
        self,
        query: BoundQuery,
        remaining: list[BoundExpr],
        report: OptimizerReport,
    ) -> None:
        """Flag membership predicates over named sets so the evaluator
        materializes the member-key set once per execution (semi-join)
        instead of rescanning the collection per candidate row."""

        def walk(root: BoundExpr) -> None:
            stack = [root]
            while stack:
                node = stack.pop()
                if isinstance(node, Membership):
                    if node.collection.kind == "named" and not node.semi_join:
                        node.semi_join = True
                        report.semi_joins += 1
                    stack.append(node.element)
                    if node.collection.base is not None:
                        stack.append(node.collection.base)
                elif isinstance(node, Binary):
                    stack.extend([node.left, node.right])
                elif isinstance(node, Unary):
                    stack.append(node.operand)
                elif isinstance(node, (AdtCall, ExcessCall)):
                    stack.extend(node.args)
                elif isinstance(node, AttrStep):
                    stack.append(node.base)
                elif isinstance(node, IndexStepB):
                    stack.extend([node.base, node.index])

        for conjunct in remaining:
            walk(conjunct)
        for binding in query.bindings:
            for residual in binding.residual:
                walk(residual)
