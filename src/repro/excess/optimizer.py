"""Rule-based query optimization.

The EXODUS optimizer was generated from rewrite rules ([Grae87]); EXCESS
feeds it tabular access-method applicability information so ADTs can be
added dynamically (paper §4.1.3). This module reproduces that
architecture at small scale with three rule families:

1. **Conjunct normalization** — the where clause is flattened into
   conjuncts; constant-on-left comparisons are flipped using the
   operator-properties table (``5 < E.age`` → ``E.age > 5``) so index
   selection can fire.
2. **Predicate pushdown** — conjuncts mentioning exactly one (existential)
   range variable become *residual* filters on that variable's binding,
   applied as soon as the binding produces a value instead of after the
   full cross product.
3. **Access-method selection** — for a residual of shape ``V.attr op
   constant`` over a named-set binding, the access-method table is
   consulted for index kinds able to evaluate ``op`` over the attribute's
   type; if a matching physical index exists, the binding's scan becomes
   an index scan (equality preferred over range).

Finally bindings are **reordered** greedily: indexed bindings first, then
filtered scans, then bare scans — respecting nested-path dependencies.
The optimizer is switchable (``enabled=False``) so benchmarks can measure
its effect (experiment P1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.catalog import Catalog
from repro.core.types import TupleType
from repro.excess.binder import (
    AggregateRef,
    AttrStep,
    Binary,
    BoundExpr,
    BoundQuery,
    Const,
    ExcessCall,
    AdtCall,
    IndexStepB,
    Membership,
    NamedSetSource,
    PathSource,
    RangeBinding,
    Unary,
    VarRef,
)

__all__ = ["OptimizerReport", "Optimizer"]


@dataclass
class OptimizerReport:
    """What the optimizer did to one query (for EXPLAIN-style output)."""

    pushed_down: int = 0
    index_scans: list[str] = field(default_factory=list)
    normalized: int = 0
    binding_order: list[str] = field(default_factory=list)
    enabled: bool = True
    #: equi-join conjuncts rewritten to hash joins ("probe*build:op")
    hash_joins: list[str] = field(default_factory=list)
    #: membership predicates rewritten to cached semi-join probes
    semi_joins: int = 0

    def describe(self) -> str:
        """One-line human-readable summary."""
        if not self.enabled:
            return "optimizer disabled: nested-loop scan in declaration order"
        parts = [
            f"pushdown={self.pushed_down}",
            f"normalized={self.normalized}",
            "index=[" + ", ".join(self.index_scans) + "]",
            "hashjoin=[" + ", ".join(self.hash_joins) + "]",
            f"semijoin={self.semi_joins}",
            "order=[" + ", ".join(self.binding_order) + "]",
        ]
        return "; ".join(parts)


class Optimizer:
    """Optimizes a bound query in place and returns a report.

    The rule families can be toggled individually (``normalize``,
    ``pushdown``, ``index_selection``, ``reorder``) for ablation
    experiments; ``enabled=False`` disables everything.
    """

    def __init__(
        self,
        catalog: Catalog,
        enabled: bool = True,
        normalize: bool = True,
        pushdown: bool = True,
        index_selection: bool = True,
        reorder: bool = True,
        hash_joins: bool = True,
    ):
        self.catalog = catalog
        self.enabled = enabled
        self.normalize_rule = normalize
        self.pushdown_rule = pushdown
        self.index_rule = index_selection
        self.reorder_rule = reorder
        self.hash_join_rule = hash_joins

    def optimize(self, query: BoundQuery) -> OptimizerReport:
        """Apply the rule families to ``query`` (mutating it)."""
        report = OptimizerReport(enabled=self.enabled)
        # annotations are about to change; any previously lowered plan
        # for this bound query is stale
        query.plan = None
        if not self.enabled:
            report.binding_order = [b.name for b in query.bindings]
            return report
        conjuncts = self._flatten_conjuncts(query.where)
        if self.normalize_rule:
            conjuncts = [self._normalize(c, report) for c in conjuncts]
        remaining: list[BoundExpr] = []
        for conjunct in conjuncts:
            variables = self._variables_of(conjunct)
            target = (
                self._pushdown_target(conjunct, variables, query)
                if self.pushdown_rule
                else None
            )
            if target is not None:
                target.residual.append(conjunct)
                report.pushed_down += 1
            else:
                remaining.append(conjunct)
        if self.index_rule:
            for binding in query.bindings:
                self._select_access(binding, report)
        if self.reorder_rule:
            self._order_bindings(query)
        if self.hash_join_rule:
            remaining = self._select_hash_joins(query, remaining, report)
        self._mark_semi_joins(query, remaining, report)
        query.where = self._rebuild_conjunction(remaining)
        report.binding_order = [b.name for b in query.bindings]
        # Optimize aggregate inner iterations the same way.
        for aggregate in query.aggregates:
            inner = BoundQuery(
                bindings=aggregate.inner_bindings, where=aggregate.where
            )
            self.optimize(inner)
            aggregate.inner_bindings = inner.bindings
            aggregate.where = inner.where
            aggregate.inner_query = None
        return report

    def lower(self, bound: Any) -> Any:
        """Lower an optimized bound statement to its physical plan.

        Retrieves lower to their full pipeline
        (``StoreInto?(Sort?(Project(...)))``); update statements lower
        their query block to the shared binding pipeline. The plan is
        cached on the bound objects, so cached statements skip lowering.
        """
        from repro.excess.binder import BoundRetrieve
        from repro.excess.plan import ensure_query_plan, ensure_retrieve_plan

        if isinstance(bound, BoundRetrieve):
            return ensure_retrieve_plan(bound, self.catalog)
        query = getattr(bound, "query", None)
        if isinstance(query, BoundQuery):
            return ensure_query_plan(query, self.catalog)
        return None

    # -- conjunct handling -------------------------------------------------------

    def _flatten_conjuncts(self, where: Optional[BoundExpr]) -> list[BoundExpr]:
        if where is None:
            return []
        if isinstance(where, Binary) and where.kind == "bool" and where.op == "and":
            return self._flatten_conjuncts(where.left) + self._flatten_conjuncts(
                where.right
            )
        return [where]

    def _rebuild_conjunction(
        self, conjuncts: list[BoundExpr]
    ) -> Optional[BoundExpr]:
        if not conjuncts:
            return None
        out = conjuncts[0]
        from repro.core.types import BOOLEAN

        for conjunct in conjuncts[1:]:
            out = Binary(
                op="and", left=out, right=conjunct, kind="bool", type=BOOLEAN
            )
        return out

    def _normalize(self, conjunct: BoundExpr, report: OptimizerReport) -> BoundExpr:
        """Flip constant-on-left comparisons using the converse table."""
        if (
            isinstance(conjunct, Binary)
            and conjunct.kind == "compare"
            and isinstance(conjunct.left, Const)
            and not isinstance(conjunct.right, Const)
        ):
            properties = self.catalog.access_table.operator_properties(conjunct.op)
            converse = properties.converse
            if converse:
                report.normalized += 1
                return Binary(
                    op=converse,
                    left=conjunct.right,
                    right=conjunct.left,
                    kind="compare",
                    type=conjunct.type,
                    enum_labels=conjunct.enum_labels,
                )
        return conjunct

    # -- pushdown ------------------------------------------------------------------

    def _variables_of(self, expression: BoundExpr) -> set[str]:
        out: set[str] = set()
        stack = [expression]
        while stack:
            node = stack.pop()
            if isinstance(node, VarRef):
                out.add(node.name)
            elif isinstance(node, AttrStep):
                stack.append(node.base)
            elif isinstance(node, IndexStepB):
                stack.extend([node.base, node.index])
            elif isinstance(node, Binary):
                stack.extend([node.left, node.right])
            elif isinstance(node, Unary):
                stack.append(node.operand)
            elif isinstance(node, (AdtCall, ExcessCall)):
                stack.extend(node.args)
            elif isinstance(node, Membership):
                stack.append(node.element)
                if node.collection.base is not None:
                    stack.append(node.collection.base)
            elif isinstance(node, AggregateRef):
                # aggregate values are only available after their tables are
                # built; treat as multi-variable (never pushed down)
                out.add("$aggregate")
                if node.outer_key is not None:
                    stack.append(node.outer_key)
        return out

    def _pushdown_target(
        self,
        conjunct: BoundExpr,
        variables: set[str],
        query: BoundQuery,
    ) -> Optional[RangeBinding]:
        if "$aggregate" in variables:
            return None
        if len(variables) != 1:
            return None
        name = next(iter(variables))
        for binding in query.bindings:
            if binding.name == name:
                if binding.universal:
                    return None  # ∀-variables keep the full predicate
                # A residual on a nested binding still only fires once the
                # parent produced a value, which the evaluator guarantees.
                return binding
        return None

    # -- access selection ------------------------------------------------------------

    def _select_access(self, binding: RangeBinding, report: OptimizerReport) -> None:
        if not isinstance(binding.source, NamedSetSource):
            return
        set_name = binding.source.set_name
        element = binding.element_type
        if not isinstance(element, TupleType):
            return
        best: Optional[tuple[int, BoundExpr, str, str, Any, BoundExpr]] = None
        for conjunct in binding.residual:
            probe = self._indexable_probe(conjunct, binding.name, element)
            if probe is None:
                continue
            attribute, op, key_expr = probe
            attr_type = element.attribute(attribute).type
            kinds = self.catalog.access_table.applicable(attr_type.tag, op)
            if not kinds:
                continue
            descriptor = self.catalog.indexes.find(set_name, attribute, kinds)
            if descriptor is None:
                continue
            rank = 0 if op == "=" else 1
            if descriptor.kind == "hash" and op != "=":
                continue
            candidate = (rank, conjunct, attribute, op, descriptor, key_expr)
            if best is None or candidate[0] < best[0]:
                best = candidate
        if best is None:
            return
        _rank, conjunct, attribute, op, descriptor, key_expr = best
        binding.access = "index"
        binding.index_descriptor = descriptor
        binding.index_op = op
        binding.index_key = key_expr
        binding.residual.remove(conjunct)
        report.index_scans.append(
            f"{binding.name}:{descriptor.set_name}.{attribute}:{descriptor.kind}:{op}"
        )

    def _indexable_probe(
        self, conjunct: BoundExpr, variable: str, element: TupleType
    ) -> Optional[tuple[str, str, BoundExpr]]:
        """Match ``V.attr op <constant expression>`` patterns.

        The probe key may be any variable-free expression — a literal or
        e.g. an ADT constructor call like ``Date("1/1/1930")`` — since it
        can be evaluated once before the scan.
        """
        if not isinstance(conjunct, Binary) or conjunct.kind != "compare":
            return None
        left, right = conjunct.left, conjunct.right
        if self._variables_of(right):
            return None
        if not isinstance(left, AttrStep):
            return None
        if not isinstance(left.base, VarRef) or left.base.name != variable:
            return None
        if not element.has_attribute(left.attribute):
            return None
        if conjunct.op not in ("=", "<", "<=", ">", ">="):
            return None
        return left.attribute, conjunct.op, right

    # -- ordering ----------------------------------------------------------------------

    def _order_bindings(self, query: BoundQuery) -> None:
        """Greedy order: indexed < filtered < bare scans, dependencies and
        universality respected (∀ bindings stay last)."""

        def score(binding: RangeBinding) -> tuple[int, int]:
            if binding.universal:
                return (3, 0)
            if binding.access == "index":
                return (0, -len(binding.residual))
            if binding.residual:
                return (1, -len(binding.residual))
            return (2, 0)

        ordered: list[RangeBinding] = []
        placed: set[str] = set()
        pending = list(query.bindings)
        while pending:
            candidates = [
                b for b in pending
                if not isinstance(b.source, PathSource)
                or b.source.parent in placed
                or all(p.name != b.source.parent for p in pending)
            ]
            candidates.sort(key=score)
            chosen = candidates[0]
            ordered.append(chosen)
            placed.add(chosen.name)
            pending.remove(chosen)
        query.bindings = ordered

    # -- hash joins ---------------------------------------------------------------------

    def _select_hash_joins(
        self,
        query: BoundQuery,
        remaining: list[BoundExpr],
        report: OptimizerReport,
    ) -> list[BoundExpr]:
        """Rewrite equi-join conjuncts spanning two existential bindings.

        The later-ordered binding of the pair becomes the *build* side: its
        named set is loaded once into a hash table keyed by its side of the
        conjunct, and each outer (probe) row looks up matches instead of
        rescanning. When both sides are plain adjacent scans the pair is
        swapped so the smaller set (by tracked cardinality) is built.
        """
        kept: list[BoundExpr] = []
        positions = {b.name: i for i, b in enumerate(query.bindings)}
        by_name = {b.name: b for b in query.bindings}
        for conjunct in remaining:
            pair = self._equi_join_pair(conjunct, by_name)
            if pair is None:
                kept.append(conjunct)
                continue
            (name_a, expr_a), (name_b, expr_b) = pair
            if positions[name_a] < positions[name_b]:
                probe_name, probe_key = name_a, expr_a
                build_name, build_key = name_b, expr_b
            else:
                probe_name, probe_key = name_b, expr_b
                build_name, build_key = name_a, expr_a
            build = by_name[build_name]
            probe = by_name[probe_name]
            if not self._hashable_build(build):
                kept.append(conjunct)
                continue
            if (
                self._hashable_build(probe)
                and positions[build_name] - positions[probe_name] == 1
                and self.catalog.cardinality(probe.source.set_name)
                < self.catalog.cardinality(build.source.set_name)
            ):
                i, j = positions[probe_name], positions[build_name]
                query.bindings[i], query.bindings[j] = (
                    query.bindings[j],
                    query.bindings[i],
                )
                positions[probe_name], positions[build_name] = j, i
                probe_name, build_name = build_name, probe_name
                probe_key, build_key = build_key, probe_key
                probe, build = build, probe
            build.join_strategy = "hash"
            build.hash_build_key = build_key
            build.hash_probe_key = probe_key
            build.hash_join_op = conjunct.op
            build.join_detail = (
                f"hash(build={build_name}"
                f"~{self.catalog.cardinality(build.source.set_name)}"
                f", probe={probe_name})"
            )
            report.hash_joins.append(f"{probe_name}*{build_name}:{conjunct.op}")
        return kept

    def _equi_join_pair(
        self, conjunct: BoundExpr, bindings: dict[str, RangeBinding]
    ) -> Optional[tuple[tuple[str, BoundExpr], tuple[str, BoundExpr]]]:
        """Match ``f(A) = g(B)`` / ``f(A) is g(B)`` over two existential
        range variables of this query block."""
        if not isinstance(conjunct, Binary):
            return None
        is_value_join = conjunct.kind == "compare" and conjunct.op == "="
        is_object_join = conjunct.kind == "object" and conjunct.op == "is"
        if not (is_value_join or is_object_join):
            return None
        left_vars = self._variables_of(conjunct.left)
        right_vars = self._variables_of(conjunct.right)
        if len(left_vars) != 1 or len(right_vars) != 1:
            return None
        name_a = next(iter(left_vars))
        name_b = next(iter(right_vars))
        if name_a == name_b or "$aggregate" in (name_a, name_b):
            return None
        binding_a = bindings.get(name_a)
        binding_b = bindings.get(name_b)
        if binding_a is None or binding_b is None:
            return None
        if binding_a.universal or binding_b.universal:
            return None
        return (name_a, conjunct.left), (name_b, conjunct.right)

    def _hashable_build(self, binding: RangeBinding) -> bool:
        """Build sides must be env-independent full scans of a named set
        (so the table can be built once) not already claimed by a join."""
        return (
            not binding.universal
            and binding.join_strategy == "loop"
            and binding.access == "scan"
            and isinstance(binding.source, NamedSetSource)
        )

    # -- semi-joins ---------------------------------------------------------------------

    def _mark_semi_joins(
        self,
        query: BoundQuery,
        remaining: list[BoundExpr],
        report: OptimizerReport,
    ) -> None:
        """Flag membership predicates over named sets so the evaluator
        materializes the member-key set once per execution (semi-join)
        instead of rescanning the collection per candidate row."""

        def walk(root: BoundExpr) -> None:
            stack = [root]
            while stack:
                node = stack.pop()
                if isinstance(node, Membership):
                    if node.collection.kind == "named" and not node.semi_join:
                        node.semi_join = True
                        report.semi_joins += 1
                    stack.append(node.element)
                    if node.collection.base is not None:
                        stack.append(node.collection.base)
                elif isinstance(node, Binary):
                    stack.extend([node.left, node.right])
                elif isinstance(node, Unary):
                    stack.append(node.operand)
                elif isinstance(node, (AdtCall, ExcessCall)):
                    stack.extend(node.args)
                elif isinstance(node, AttrStep):
                    stack.append(node.base)
                elif isinstance(node, IndexStepB):
                    stack.extend([node.base, node.index])

        for conjunct in remaining:
            walk(conjunct)
        for binding in query.bindings:
            for residual in binding.residual:
                walk(residual)
