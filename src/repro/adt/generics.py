"""Generic set functions and iterator functions.

Paper §4.1.4: POSTGRES could add a ``median`` aggregate for *sets of
integers* but not one "that works for any totally ordered type"; EXCESS
bases such extensions on E's generic functions, which constrain the
generic type (e.g. "any type that has boolean less_than and equals member
functions"). Here a :class:`GenericSetFunction` declares its constraint
(``requires`` = "ordered" / "numeric" / "any") and the registry checks
the element type at bind time, so one ``median`` really does serve every
ordered type — integers, floats, strings, and ordered ADTs like ``Date``.

E iterator functions ("a construct, called an iterator function, for
returning sequences of values of a given type") are modelled by
:class:`IteratorFunction`: a registered generator usable as an EXCESS
range specification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Optional

from repro.core.types import (
    FLOAT8,
    INT4,
    AdtType,
    CharType,
    EnumType,
    FloatType,
    IntegerType,
    TextType,
    Type,
)
from repro.errors import CatalogError, FunctionError

__all__ = [
    "GenericSetFunction",
    "IteratorFunction",
    "SetFunctionRegistry",
    "element_is_ordered",
    "element_is_numeric",
]

#: ADTs known to be totally ordered (extended via SetFunctionRegistry).
_ORDERED_ADTS = {"Date"}


def element_is_numeric(element_type: Type) -> bool:
    """True when the element type supports arithmetic aggregation."""
    return isinstance(element_type, (IntegerType, FloatType))


def element_is_ordered(element_type: Type, extra_ordered: Iterable[str] = ()) -> bool:
    """True when the element type is totally ordered (has less_than and
    equals, in the paper's E-constraint phrasing)."""
    if isinstance(element_type, (IntegerType, FloatType, CharType, TextType, EnumType)):
        return True
    if isinstance(element_type, AdtType):
        return element_type.name in _ORDERED_ADTS or element_type.name in set(
            extra_ordered
        )
    return False


@dataclass(frozen=True)
class GenericSetFunction:
    """A set function applicable to any element type meeting a constraint.

    ``impl`` receives the list of (non-null) element values; ``requires``
    is one of ``"any"``, ``"ordered"``, ``"numeric"``. ``result_type``
    maps the element type to the function's result type (e.g. identity
    for ``median``, ``FLOAT8`` for ``avg``).
    """

    name: str
    impl: Callable[[list], Any] = field(compare=False)
    requires: str = "any"
    result_type: Callable[[Type], Type] = field(
        default=None, compare=False  # type: ignore[assignment]
    )
    #: value returned for an empty input (None means "null")
    empty_value: Any = None

    def check_applicable(self, element_type: Type, ordered_adts: Iterable[str]) -> None:
        """Raise :class:`FunctionError` when the constraint fails."""
        if self.requires == "numeric" and not element_is_numeric(element_type):
            raise FunctionError(
                f"set function {self.name!r} requires a numeric element type, "
                f"got {element_type}"
            )
        if self.requires == "ordered" and not element_is_ordered(
            element_type, ordered_adts
        ):
            raise FunctionError(
                f"set function {self.name!r} requires a totally ordered element "
                f"type, got {element_type}"
            )


@dataclass(frozen=True)
class IteratorFunction:
    """A registered iterator function usable as a range specification.

    ``impl(*args)`` must return an iterable of values of ``element_type``.
    """

    name: str
    impl: Callable[..., Iterable[Any]] = field(compare=False)
    element_type: Type = INT4
    arity: int = 0


# -- built-in set function implementations ------------------------------------


def _agg_count(values: list) -> int:
    return len(values)


def _agg_sum(values: list) -> Any:
    return sum(values) if values else 0


def _agg_avg(values: list) -> Any:
    return sum(values) / len(values) if values else None


def _agg_min(values: list) -> Any:
    return min(values) if values else None


def _agg_max(values: list) -> Any:
    return max(values) if values else None


def _agg_median(values: list) -> Any:
    """Median for any totally ordered type: the lower-middle element (so
    the result is always an actual element value, which keeps the result
    type equal to the element type for non-numeric ordered types)."""
    if not values:
        return None
    ordered = sorted(values)
    return ordered[(len(ordered) - 1) // 2]


def _agg_stddev(values: list) -> Any:
    if len(values) < 2:
        return 0.0 if values else None
    mean = sum(values) / len(values)
    return (sum((v - mean) ** 2 for v in values) / (len(values) - 1)) ** 0.5


def _identity_result(element: Type) -> Type:
    """Result type = element type (used by min/max/median/sum)."""
    return element


def _int_result(_element: Type) -> Type:
    """Result type is always int4 (used by count)."""
    return INT4


def _float_result(_element: Type) -> Type:
    """Result type is always float8 (used by avg/stddev)."""
    return FLOAT8


def _iter_interval(low: int, high: int) -> Iterator[int]:
    """Built-in iterator function: integers low..high inclusive."""
    return iter(range(low, high + 1))


class SetFunctionRegistry:
    """Registry of generic set functions and iterator functions.

    Pre-populated with the QUEL aggregates (count, sum, avg, min, max)
    plus the paper's motivating generic example, ``median``, and a
    ``stddev`` extension. ``count`` is special-cased by the binder to
    accept any element type; the rest carry constraints.
    """

    def __init__(self) -> None:
        self._functions: dict[str, GenericSetFunction] = {}
        self._iterators: dict[str, IteratorFunction] = {}
        self._ordered_adts: set[str] = set(_ORDERED_ADTS)
        self._install_builtins()

    def _install_builtins(self) -> None:
        self.register(
            GenericSetFunction(
                "count", _agg_count, requires="any",
                result_type=_int_result, empty_value=0,
            )
        )
        self.register(
            GenericSetFunction(
                "sum", _agg_sum, requires="numeric",
                result_type=_identity_result, empty_value=0,
            )
        )
        self.register(
            GenericSetFunction(
                "avg", _agg_avg, requires="numeric",
                result_type=_float_result,
            )
        )
        self.register(
            GenericSetFunction("min", _agg_min, requires="ordered",
                               result_type=_identity_result)
        )
        self.register(
            GenericSetFunction("max", _agg_max, requires="ordered",
                               result_type=_identity_result)
        )
        self.register(
            GenericSetFunction("median", _agg_median, requires="ordered",
                               result_type=_identity_result)
        )
        self.register(
            GenericSetFunction(
                "stddev", _agg_stddev, requires="numeric",
                result_type=_float_result,
            )
        )
        self.register_iterator(
            IteratorFunction("Interval", _iter_interval, element_type=INT4, arity=2)
        )

    # -- set functions -----------------------------------------------------------

    def register(self, function: GenericSetFunction) -> None:
        """Add a generic set function; duplicate names are rejected."""
        if function.result_type is None:
            function = GenericSetFunction(
                name=function.name,
                impl=function.impl,
                requires=function.requires,
                result_type=_identity_result,
                empty_value=function.empty_value,
            )
        if function.name in self._functions:
            raise CatalogError(f"set function {function.name!r} already defined")
        self._functions[function.name] = function

    def lookup(self, name: str) -> Optional[GenericSetFunction]:
        """The set function named ``name`` (case-insensitive), or None."""
        return self._functions.get(name.lower())

    def names(self) -> list[str]:
        """All registered set-function names, sorted."""
        return sorted(self._functions)

    def declare_ordered_adt(self, adt_name: str) -> None:
        """Declare that an ADT is totally ordered so that ordered generic
        functions (min/max/median) apply to sets of it."""
        self._ordered_adts.add(adt_name)

    @property
    def ordered_adts(self) -> frozenset[str]:
        """ADTs declared totally ordered."""
        return frozenset(self._ordered_adts)

    # -- iterator functions --------------------------------------------------------

    def register_iterator(self, function: IteratorFunction) -> None:
        """Add an iterator function; duplicate names are rejected."""
        if function.name in self._iterators:
            raise CatalogError(
                f"iterator function {function.name!r} already defined"
            )
        self._iterators[function.name] = function

    def lookup_iterator(self, name: str) -> Optional[IteratorFunction]:
        """The iterator function named ``name``, or None."""
        return self._iterators.get(name)
