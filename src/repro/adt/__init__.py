"""The EXTRA abstract-data-type facility (paper §4.1).

In EXODUS, new base types are written in the E language and registered
with the system together with their functions, operators (with precedence
and associativity), and tabular optimizer information. Here Python stands
in for E:

* :mod:`repro.adt.registry` — ADT, function, and operator registration;
* :mod:`repro.adt.builtin` — the paper's example ADTs: ``Date``
  (Figure 1) and ``Complex`` (Figure 7);
* :mod:`repro.adt.generics` — generic set functions (the E generic
  function facility: e.g. a ``median`` that works for *any* totally
  ordered type, which the paper contrasts with POSTGRES's per-type
  aggregates) and iterator functions.
"""

from repro.adt.builtin import Complex, Date, register_builtin_adts
from repro.adt.generics import GenericSetFunction, SetFunctionRegistry
from repro.adt.registry import AdtFunction, AdtRegistry, OperatorDef

__all__ = [
    "AdtFunction",
    "AdtRegistry",
    "OperatorDef",
    "Date",
    "Complex",
    "register_builtin_adts",
    "GenericSetFunction",
    "SetFunctionRegistry",
]
